// Batch == scalar equivalence suite: the AccessBatch contract in
// core/policy.h promises that a batched replay makes bit-identical
// per-request hit/miss decisions to sequential Access() calls, for
// every policy, any batch size, and any window phase. These tests pin
// that for the whole zoo over a randomized trace, for CLIC across its
// option space (trackers, decay, outqueue, generalization — the
// incremental window close has to reproduce the eager analysis
// exactly), and for the one case that is easy to get wrong: a CLIC
// window boundary falling in the middle of a batch.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/clic.h"
#include "sim/policy_factory.h"
#include "sim/simulator.h"

namespace clic {
namespace {

Trace RandomTrace(std::uint64_t seed, std::size_t n) {
  Trace trace;
  trace.name = "batch_equivalence";
  Rng rng(seed);
  ZipfGenerator zipf(300, 0.8);
  std::vector<HintSetId> hints;
  for (std::uint32_t i = 0; i < 8; ++i) {
    // Two informative positions plus one noise position so the
    // generalization tree has something to split on.
    hints.push_back(trace.hints->Intern(HintVector{
        static_cast<ClientId>(i % 3), {i % 2, i / 2, 7 - i}}));
  }
  trace.requests.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Request r;
    r.page = zipf(rng);
    r.hint_set = hints[r.page % hints.size()];
    r.client = static_cast<ClientId>(r.page % 3);
    if (rng.Chance(0.3)) {
      r.op = OpType::kWrite;
      r.write_kind =
          rng.Chance(0.5) ? WriteKind::kReplacement : WriteKind::kRecovery;
    }
    trace.requests.push_back(r);
  }
  trace.CacheMaxClient();
  return trace;
}

std::vector<std::uint8_t> ScalarDecisions(Policy& policy,
                                          const Trace& trace) {
  std::vector<std::uint8_t> out;
  out.reserve(trace.size());
  SeqNum seq = 0;
  for (const Request& r : trace.requests) {
    out.push_back(policy.Access(r, seq++) ? 1 : 0);
  }
  return out;
}

/// Replays via AccessBatch using the sizes in `pattern` round-robin
/// (a single-element pattern is a fixed batch size), so both uneven
/// tails and seq continuity across differently-sized batches are
/// exercised.
std::vector<std::uint8_t> BatchedDecisions(
    Policy& policy, const Trace& trace,
    const std::vector<std::size_t>& pattern) {
  std::vector<std::uint8_t> out(trace.size());
  std::size_t pos = 0, which = 0;
  while (pos < trace.size()) {
    std::size_t want = pattern[which++ % pattern.size()];
    if (want == 0) want = 1;
    const std::size_t count = std::min(want, trace.size() - pos);
    policy.AccessBatch(trace.requests.data() + pos, pos, count,
                       out.data() + pos);
    pos += count;
  }
  return out;
}

/// First index where the two decision vectors differ, or -1.
long FirstDivergence(const std::vector<std::uint8_t>& a,
                     const std::vector<std::uint8_t>& b) {
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    if (a[i] != b[i]) return static_cast<long>(i);
  }
  return a.size() == b.size() ? -1 : static_cast<long>(std::min(a.size(),
                                                                b.size()));
}

ClicOptions SmallWindowOptions() {
  ClicOptions options;
  options.window = 1'000;  // several windows inside the 5k-request trace
  return options;
}

TEST(BatchEquivalenceTest, EveryPolicyEveryBatchSize) {
  const Trace trace = RandomTrace(0xA11CE, 5'000);
  const std::size_t n = trace.size();
  // 1 and 7: degenerate and prime; 256: typical; n: one whole-trace
  // batch; 999: leaves an odd tail (5000 % 999 = 5).
  const std::vector<std::size_t> batch_sizes = {1, 7, 256, n, 999};
  for (PolicyKind kind : AllPolicies()) {
    auto scalar_policy =
        MakePolicy(kind, 64, &trace, SmallWindowOptions());
    const std::vector<std::uint8_t> expected =
        ScalarDecisions(*scalar_policy, trace);
    for (std::size_t batch : batch_sizes) {
      auto batched_policy =
          MakePolicy(kind, 64, &trace, SmallWindowOptions());
      const std::vector<std::uint8_t> got =
          BatchedDecisions(*batched_policy, trace, {batch});
      EXPECT_EQ(FirstDivergence(expected, got), -1)
          << PolicyName(kind) << " diverged at request "
          << FirstDivergence(expected, got) << " with batch size " << batch;
    }
  }
}

TEST(BatchEquivalenceTest, MixedBatchSizesKeepSeqContinuity) {
  const Trace trace = RandomTrace(0xB0B, 5'000);
  for (PolicyKind kind : AllPolicies()) {
    auto scalar_policy =
        MakePolicy(kind, 64, &trace, SmallWindowOptions());
    const std::vector<std::uint8_t> expected =
        ScalarDecisions(*scalar_policy, trace);
    auto batched_policy =
        MakePolicy(kind, 64, &trace, SmallWindowOptions());
    const std::vector<std::uint8_t> got =
        BatchedDecisions(*batched_policy, trace, {1, 7, 33, 256});
    EXPECT_EQ(FirstDivergence(expected, got), -1) << PolicyName(kind);
  }
}

TEST(BatchEquivalenceTest, ClicAcrossOptionSpace) {
  const Trace trace = RandomTrace(0xC11C, 6'000);
  std::vector<ClicOptions> configs;
  {
    ClicOptions o = SmallWindowOptions();
    configs.push_back(o);  // exact tracker, full history
    o.decay = 0.5;
    configs.push_back(o);  // lazy decay folding
    o.decay = 0.0;
    configs.push_back(o);  // history discarded each window
    o = SmallWindowOptions();
    o.outqueue_per_page = 0.0;
    configs.push_back(o);  // no outqueue
    o = SmallWindowOptions();
    o.tracker = TrackerKind::kSpaceSaving;
    o.top_k = 3;
    configs.push_back(o);  // untouched hints must lose eligibility
    o.tracker = TrackerKind::kLossyCounting;
    configs.push_back(o);
    o = SmallWindowOptions();
    o.generalize = true;
    o.hint_space = trace.hints;
    configs.push_back(o);  // decision-tree pooling over the candidates
    o.tracker = TrackerKind::kSpaceSaving;
    o.top_k = 2;
    configs.push_back(o);  // generalize + class-level top-k
  }
  for (std::size_t c = 0; c < configs.size(); ++c) {
    ClicPolicy scalar_policy(48, configs[c]);
    const std::vector<std::uint8_t> expected =
        ScalarDecisions(scalar_policy, trace);
    for (std::size_t batch : {std::size_t{7}, std::size_t{256}}) {
      ClicPolicy batched_policy(48, configs[c]);
      const std::vector<std::uint8_t> got =
          BatchedDecisions(batched_policy, trace, {batch});
      EXPECT_EQ(FirstDivergence(expected, got), -1)
          << "CLIC config " << c << " diverged at request "
          << FirstDivergence(expected, got) << " with batch size " << batch;
    }
    EXPECT_GT(scalar_policy.windows_completed(), 2u)
        << "config " << c << " never exercised a window close";
  }
}

TEST(BatchEquivalenceTest, ClicWindowBoundaryMidBatch) {
  // Window 100 with batch 64: the second batch spans seqs [64, 128),
  // so the first window close (at seq 100) lands mid-batch, and later
  // closes land at every possible phase (100 and 64 are not multiples).
  const Trace trace = RandomTrace(0xD00D, 4'000);
  ClicOptions options;
  options.window = 100;
  ClicPolicy scalar_policy(32, options);
  const std::vector<std::uint8_t> expected =
      ScalarDecisions(scalar_policy, trace);
  ClicPolicy batched_policy(32, options);
  const std::vector<std::uint8_t> got =
      BatchedDecisions(batched_policy, trace, {64});
  EXPECT_EQ(FirstDivergence(expected, got), -1)
      << "diverged at request " << FirstDivergence(expected, got);
  EXPECT_EQ(batched_policy.windows_completed(),
            scalar_policy.windows_completed());
  EXPECT_GE(batched_policy.windows_completed(), 39u);
}

TEST(BatchEquivalenceTest, SimulateMatchesManualScalarReplay) {
  // The shipping batched Simulate() — stats folded per batch — must
  // agree with a hand-rolled per-request replay on every counter.
  const Trace trace = RandomTrace(0xE4E4, 5'000);
  for (PolicyKind kind : {PolicyKind::kLru, PolicyKind::kClic}) {
    auto manual_policy =
        MakePolicy(kind, 64, &trace, SmallWindowOptions());
    SimResult manual;
    std::map<ClientId, CacheStats> per_client;
    SeqNum seq = 0;
    for (const Request& r : trace.requests) {
      const bool hit = manual_policy->Access(r, seq++);
      manual.total.Record(r, hit);
      per_client[r.client].Record(r, hit);
    }
    auto policy = MakePolicy(kind, 64, &trace, SmallWindowOptions());
    const SimResult batched = Simulate(trace, *policy);
    EXPECT_EQ(batched.total.reads, manual.total.reads) << PolicyName(kind);
    EXPECT_EQ(batched.total.writes, manual.total.writes) << PolicyName(kind);
    EXPECT_EQ(batched.total.read_hits, manual.total.read_hits)
        << PolicyName(kind);
    EXPECT_EQ(batched.total.write_hits, manual.total.write_hits)
        << PolicyName(kind);
    ASSERT_EQ(batched.per_client.size(), per_client.size())
        << PolicyName(kind);
    for (const auto& [client, stats] : per_client) {
      const CacheStats& b = batched.per_client.at(client);
      EXPECT_EQ(b.reads, stats.reads) << PolicyName(kind) << client;
      EXPECT_EQ(b.read_hits, stats.read_hits) << PolicyName(kind) << client;
      EXPECT_EQ(b.writes, stats.writes) << PolicyName(kind) << client;
      EXPECT_EQ(b.write_hits, stats.write_hits) << PolicyName(kind) << client;
    }
  }
}

}  // namespace
}  // namespace clic
