// Workload scenario engine: spec parsing, preset integrity, seed
// determinism, phase-shift boundary placement, tenant-mix client-id
// density, and the scan-pollution policy ordering the scenarios exist
// to demonstrate.
#include "workload/scenario.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>

#include "sim/policy_factory.h"
#include "sim/simulator.h"

namespace clic {
namespace {

bool SameTrace(const Trace& a, const Trace& b) {
  if (a.requests.size() != b.requests.size()) return false;
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    const Request& x = a.requests[i];
    const Request& y = b.requests[i];
    if (x.page != y.page || x.hint_set != y.hint_set ||
        x.client != y.client || x.op != y.op ||
        x.write_kind != y.write_kind) {
      return false;
    }
  }
  if (a.hints->size() != b.hints->size()) return false;
  for (HintSetId h = 0; h < a.hints->size(); ++h) {
    if (!(a.hints->Get(h) == b.hints->Get(h))) return false;
  }
  return true;
}

TEST(ScenarioSpecTest, ParsesKindsAndKeys) {
  std::string error;
  const auto spec = ParseWorkloadSpec(
      "scan-mix:pages=50000,theta=0.8,scan-every=1000,scan-len=2000,"
      "buffer=500,write=0.2,n=10000,seed=7",
      &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->kind, ScenarioKind::kScanMix);
  EXPECT_EQ(spec->pages, 50'000u);
  EXPECT_DOUBLE_EQ(spec->theta, 0.8);
  EXPECT_EQ(spec->scan_every, 1'000u);
  EXPECT_EQ(spec->scan_len, 2'000u);
  EXPECT_EQ(spec->buffer, 500u);
  EXPECT_DOUBLE_EQ(spec->write, 0.2);
  EXPECT_EQ(spec->requests, 10'000u);
  EXPECT_EQ(spec->seed, 7u);
  // A bare kind parses with defaults.
  EXPECT_TRUE(ParseWorkloadSpec("zipf").has_value());
}

TEST(ScenarioSpecTest, RejectsMalformedSpecs) {
  std::string error;
  EXPECT_FALSE(ParseWorkloadSpec("fifo:pages=100", &error));
  EXPECT_NE(error.find("unknown scenario kind"), std::string::npos) << error;
  EXPECT_FALSE(ParseWorkloadSpec("zipf:bogus=1", &error));
  EXPECT_NE(error.find("unknown key"), std::string::npos) << error;
  EXPECT_FALSE(ParseWorkloadSpec("zipf:theta=banana", &error));
  EXPECT_NE(error.find("theta"), std::string::npos) << error;
  EXPECT_FALSE(ParseWorkloadSpec("zipf:pages=4", &error));  // below minimum
  EXPECT_FALSE(ParseWorkloadSpec("zipf:theta=7", &error));  // above range
  // A client buffer covering the whole domain would starve generation.
  EXPECT_FALSE(
      ParseWorkloadSpec("zipf:pages=1000,buffer=1000", &error));
  EXPECT_NE(error.find("buffer"), std::string::npos) << error;
  // ... and for tenants the domain is the per-tenant share.
  EXPECT_FALSE(
      ParseWorkloadSpec("tenants:pages=4000,tenants=4,buffer=1000", &error));
}

TEST(ScenarioSpecTest, PresetsResolveAndParseTheirOwnSpecs) {
  std::set<std::string> names;
  for (const ScenarioPreset& preset : ScenarioPresets()) {
    std::string error;
    const auto by_name = ResolveWorkload(preset.name, &error);
    ASSERT_TRUE(by_name.has_value()) << preset.name << ": " << error;
    // The resolved text is the preset token, so trace names and cache
    // stems round-trip through the user-facing name.
    EXPECT_EQ(by_name->text, preset.name);
    EXPECT_TRUE(names.insert(preset.name).second)
        << "duplicate preset " << preset.name;
    // Preset names must be filename-safe as cache stems.
    EXPECT_EQ(ScenarioCacheStem(preset.name), preset.name);
  }
  // Inline specs hash into a safe stem.
  const std::string stem = ScenarioCacheStem("zipf:pages=120000,theta=0.9");
  EXPECT_EQ(stem.rfind("scn", 0), 0u);
  EXPECT_EQ(stem.size(), 19u);
}

TEST(ScenarioDeterminismTest, SameSpecSameBytesDifferentSeedDiffers) {
  for (const char* text :
       {"zipf:pages=20000,buffer=200,n=8000",
        "scan:pages=20000,buffer=200,n=8000",
        "scan-mix:pages=20000,buffer=200,scan-every=500,scan-len=700,n=8000",
        "phase:pages=20000,hot-pages=2000,phase-len=1500,buffer=200,n=8000",
        "phase:pages=20000,hot-pages=2000,phase-len=1500,gradual=1,"
        "buffer=200,n=8000",
        "tenants:pages=20000,tenants=3,buffer=200,n=8000"}) {
    const auto spec = ParseWorkloadSpec(text);
    ASSERT_TRUE(spec.has_value()) << text;
    const Trace a = MakeScenarioTrace(*spec);
    const Trace b = MakeScenarioTrace(*spec);
    ASSERT_EQ(a.requests.size(), spec->requests) << text;
    EXPECT_TRUE(SameTrace(a, b)) << text;

    auto reseeded = *spec;
    reseeded.seed += 1;
    const Trace c = MakeScenarioTrace(reseeded);
    if (spec->kind == ScenarioKind::kScan) {
      // The pure scan draws nothing from the RNG; its stream is the
      // same for every seed by construction.
      EXPECT_TRUE(SameTrace(a, c)) << text;
    } else {
      EXPECT_FALSE(SameTrace(a, c)) << text;
    }
  }
}

TEST(ScenarioDeterminismTest, TargetCapIsAPrefix) {
  const auto spec = ParseWorkloadSpec("zipf:pages=20000,buffer=200,n=8000");
  ASSERT_TRUE(spec.has_value());
  const Trace full = MakeScenarioTrace(*spec);
  const Trace capped = MakeScenarioTrace(*spec, 2'000);
  ASSERT_EQ(capped.requests.size(), 2'000u);
  for (std::size_t i = 0; i < capped.requests.size(); ++i) {
    EXPECT_EQ(capped.requests[i].page, full.requests[i].page) << i;
    EXPECT_EQ(capped.requests[i].hint_set, full.requests[i].hint_set) << i;
    if (HasFailure()) break;
  }
}

TEST(ScenarioPhaseTest, AbruptBoundariesLandExactly) {
  // buffer=16 (the minimum-size domain allows no smaller) still lets a
  // few re-hits slip through, so instead of a 1:1 logical->request
  // mapping we use write=0 + a tiny buffer and check *pages*: every
  // emitted request must lie inside the working-set window its logical
  // position dictates, and the first request after each boundary must
  // come from the next window.
  const auto spec = ParseWorkloadSpec(
      "phase:pages=32000,hot-pages=4000,phase-len=3000,buffer=16,write=0,"
      "n=11000");
  ASSERT_TRUE(spec.has_value());
  const Trace trace = MakeScenarioTrace(*spec);
  ASSERT_EQ(trace.requests.size(), 11'000u);
  // With a 16-page buffer against a 4000-page Zipf working set, almost
  // every logical access misses; request i corresponds to a logical
  // access no earlier than i, so a request emitted while logical < 3000
  // must be in window 0, etc. Track the boundary via page membership:
  // every page must belong to one of the 8 disjoint windows, and the
  // window index must follow the (monotone modulo wrap) phase schedule.
  int last_window = 0;
  int jumps = 0;
  for (const Request& r : trace.requests) {
    ASSERT_LT(r.page, 32'000u);
    const int window = static_cast<int>(r.page / 4'000);
    if (window != last_window) {
      ++jumps;
      // Abrupt schedule: windows advance 0 -> 1 -> ... -> 7 -> 0.
      EXPECT_EQ(window, (last_window + 1) % 8)
          << "request into window " << window << " after " << last_window;
      last_window = window;
    }
  }
  // 11000 requests at >= 3000 logical accesses per phase: at least two
  // boundaries must have been crossed, and phases never revisit a
  // window out of schedule.
  EXPECT_GE(jumps, 2);
}

TEST(ScenarioPhaseTest, GradualOffsetSlidesMonotonically) {
  const auto spec = ParseWorkloadSpec(
      "phase:pages=32000,hot-pages=2000,phase-len=2000,gradual=1,buffer=16,"
      "write=0,n=10000");
  ASSERT_TRUE(spec.has_value());
  const Trace trace = MakeScenarioTrace(*spec);
  // The sliding window's low edge never moves backwards (no wrap is
  // reachable here: 10000 accesses slide the offset by at most
  // 10000/(2000/2000) = 10000 < 32000-2000). Pages may scatter within
  // the 2000-page window, so track the running minimum allowed page:
  // request i's page must be >= slide_offset(i) and < offset + window,
  // where offset after L logical accesses is L / step_every = L.
  // Conservative check: pages never exceed offset_max + window and the
  // observed minimum page of late requests grows.
  std::uint32_t early_min = 0xFFFFFFFFu;
  std::uint32_t late_min = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    const std::uint32_t page = trace.requests[i].page;
    if (i < 1'000) early_min = std::min(early_min, page);
    if (i >= trace.requests.size() - 1'000) {
      late_min = std::min(late_min, page);
    }
  }
  EXPECT_LT(early_min, 200u);  // starts at offset 0
  EXPECT_GT(late_min, early_min + 2'000u);  // window has slid well past
}

TEST(ScenarioTenantTest, ClientIdsAreDenseAndHintsPerTenant) {
  const auto spec =
      ParseWorkloadSpec("tenants:pages=40000,tenants=5,buffer=200,n=20000");
  ASSERT_TRUE(spec.has_value());
  const Trace trace = MakeScenarioTrace(*spec);
  const TraceStats stats = ComputeStats(trace);
  EXPECT_EQ(stats.distinct_clients, 5u);
  EXPECT_EQ(trace.MaxClient(), 4u);
  EXPECT_EQ(trace.client_bound, 5u);  // cached, not a per-run scan
  // Tenant t owns pages [t*8000, (t+1)*8000) and its hints carry its
  // client id — the per-client separation Figure 11 requires.
  for (const Request& r : trace.requests) {
    ASSERT_EQ(r.page / 8'000, r.client);
    ASSERT_EQ(trace.hints->Get(r.hint_set).client, r.client);
  }
  // The dense per-client accumulator path must see all five tenants
  // (the sparse-ClientId fallback from PR 3 keys the same map shape).
  auto policy = MakePolicy(PolicyKind::kLru, 2'000, &trace, ClicOptions{});
  const SimResult result = Simulate(trace, *policy);
  ASSERT_EQ(result.per_client.size(), 5u);
  CacheStats sum;
  for (const auto& [client, stats_c] : result.per_client) {
    EXPECT_LT(client, 5u);
    EXPECT_GT(stats_c.reads + stats_c.writes, 0u) << client;
    sum += stats_c;
  }
  EXPECT_EQ(sum.reads, result.total.reads);
  EXPECT_EQ(sum.read_hits, result.total.read_hits);
  EXPECT_EQ(sum.writes, result.total.writes);
  EXPECT_EQ(sum.write_hits, result.total.write_hits);
}

TEST(ScenarioOrderingTest, ClicBeatsLruUnderScanPollution) {
  // The acceptance inequality, shrunk to test scale: a small window so
  // several CLIC evaluation windows complete inside 200k requests. The
  // client tells CLIC which accesses are scans; LRU gets flushed by
  // every burst.
  const auto spec = ParseWorkloadSpec(
      "scan-mix:pages=60000,theta=0.9,scan-every=20000,scan-len=30000,"
      "buffer=1000,n=200000");
  ASSERT_TRUE(spec.has_value());
  const Trace trace = MakeScenarioTrace(*spec);
  ClicOptions options;
  options.window = 20'000;
  for (std::size_t cache_pages : {3'000u, 12'000u}) {
    auto lru = MakePolicy(PolicyKind::kLru, cache_pages, &trace, options);
    auto clic = MakePolicy(PolicyKind::kClic, cache_pages, &trace, options);
    const double lru_ratio = Simulate(trace, *lru).total.ReadHitRatio();
    const double clic_ratio = Simulate(trace, *clic).total.ReadHitRatio();
    EXPECT_GE(clic_ratio, lru_ratio) << "cache " << cache_pages;
  }
}

}  // namespace
}  // namespace clic
