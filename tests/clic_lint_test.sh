#!/bin/sh
# Lint-of-the-lint regression test, run by CTest:
#   clic_lint_test.sh <repo_root>
#
# Contract under test: tools/clic_lint.py must never go silently green.
# Every rule's failing fixture must exit 1 naming that rule, every
# passing counterpart must exit 0, malformed pragmas must be usage
# errors (exit 2), and the repo itself must lint clean.
set -u

ROOT="$1"
LINT="$ROOT/tools/clic_lint.py"
FIXTURES="$ROOT/tests/lint_fixtures"
failures=0

# expect_rule <fixture-basename> <rule-that-must-appear>
expect_rule() {
  fixture="$1"; rule="$2"
  out=$(python3 "$LINT" --root "$ROOT" "$FIXTURES/$fixture" 2>&1)
  status=$?
  if [ "$status" -ne 1 ]; then
    echo "FAIL: $fixture: expected exit 1 (violations), got $status" >&2
    echo "$out" >&2
    failures=$((failures + 1))
    return
  fi
  case "$out" in
    *"[$rule]"*) echo "ok: $fixture fires $rule" ;;
    *) echo "FAIL: $fixture: output does not name rule '$rule':" >&2
       echo "$out" >&2
       failures=$((failures + 1)) ;;
  esac
}

# expect_clean <fixture-basename>
expect_clean() {
  fixture="$1"
  out=$(python3 "$LINT" --root "$ROOT" "$FIXTURES/$fixture" 2>&1)
  status=$?
  if [ "$status" -ne 0 ]; then
    echo "FAIL: $fixture: expected exit 0 (clean), got $status" >&2
    echo "$out" >&2
    failures=$((failures + 1))
    return
  fi
  echo "ok: $fixture is clean"
}

# expect_usage_error <description> <snippet-file-content>
expect_usage_error() {
  desc="$1"; content="$2"
  tmp=$(mktemp "${TMPDIR:-/tmp}/clic_lint_test.XXXXXX.cc")
  printf '%s\n' "$content" > "$tmp"
  out=$(python3 "$LINT" --root "$ROOT" "$tmp" 2>&1)
  status=$?
  rm -f "$tmp"
  if [ "$status" -ne 2 ]; then
    echo "FAIL: $desc: expected exit 2 (usage error), got $status" >&2
    echo "$out" >&2
    failures=$((failures + 1))
    return
  fi
  echo "ok: $desc"
}

expect_rule fail_no_mutex_data_path.cc no-mutex-data-path
expect_rule fail_no_mutex_in_ring.cc no-mutex-data-path
expect_rule fail_no_wallclock_deterministic.cc no-wallclock-deterministic
expect_rule fail_no_bare_atomic_order.cc no-bare-atomic-order
expect_rule fail_no_alloc_hot_path.cc no-alloc-hot-path

expect_clean pass_no_mutex_data_path.cc
expect_clean pass_no_wallclock_deterministic.cc
expect_clean pass_no_bare_atomic_order.cc
expect_clean pass_no_alloc_hot_path.cc

expect_usage_error "unknown rule name in pragma" \
  "// clic-lint: allow(no-such-rule) reason=x"
expect_usage_error "allow without a reason" \
  "// clic-lint-fixture: server/example.cc
// clic-lint: begin-allow(no-mutex-data-path)
// clic-lint: end-allow(no-mutex-data-path)"
expect_usage_error "unclosed begin-allow region" \
  "// clic-lint-fixture: server/example.cc
// clic-lint: begin-allow(no-mutex-data-path) reason=never closed"

# The repo itself must be clean — this is the same gate CI runs.
if ! python3 "$LINT" --root "$ROOT" > /dev/null 2>&1; then
  echo "FAIL: tools/clic_lint.py reports violations in the repo itself" >&2
  python3 "$LINT" --root "$ROOT" >&2
  failures=$((failures + 1))
else
  echo "ok: repo lints clean"
fi

if [ "$failures" -ne 0 ]; then
  echo "$failures clic_lint check(s) failed" >&2
  exit 1
fi
echo "all clic_lint checks passed"
