#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/trace.h"
#include "sim/policy_factory.h"
#include "sim/simulator.h"
#include "policies/lru.h"
#include "policies/mq.h"
#include "policies/tq.h"

namespace clic {
namespace {

Trace ReadTrace(std::initializer_list<PageId> pages) {
  Trace trace;
  const HintSetId h = trace.hints->Intern(HintVector{0, {0}});
  for (PageId p : pages) {
    trace.requests.push_back(Request{p, h, 0, OpType::kRead,
                                     WriteKind::kNone});
  }
  return trace;
}

TEST(LruTest, HandCheckedHitSequence) {
  // Cache of 2 pages. Accesses: 1 2 1 3 2 3 1
  //   1 -> miss {1}
  //   2 -> miss {2,1}
  //   1 -> hit  {1,2}
  //   3 -> miss {3,1}  (2 evicted)
  //   2 -> miss {2,3}  (1 evicted)
  //   3 -> hit  {3,2}
  //   1 -> miss {1,3}  (2 evicted)
  const Trace trace = ReadTrace({1, 2, 1, 3, 2, 3, 1});
  LruPolicy lru(2);
  const SimResult result = Simulate(trace, lru);
  EXPECT_EQ(result.total.reads, 7u);
  EXPECT_EQ(result.total.read_hits, 2u);
}

TEST(LruTest, SingleSlotCacheNeverHitsOnAlternation) {
  const Trace trace = ReadTrace({1, 2, 1, 2, 1, 2});
  LruPolicy lru(1);
  const SimResult result = Simulate(trace, lru);
  EXPECT_EQ(result.total.read_hits, 0u);
}

TEST(LruTest, RepeatsAlwaysHitWhenCacheFits) {
  const Trace trace = ReadTrace({1, 2, 3, 1, 2, 3, 1, 2, 3});
  LruPolicy lru(3);
  const SimResult result = Simulate(trace, lru);
  EXPECT_EQ(result.total.read_hits, 6u);
}

TEST(TqTest, ReplacementWritesAreProtected) {
  // Cache of 2. A replacement-written page survives a scan of plain
  // reads that would evict it under pure LRU.
  Trace trace;
  const HintSetId h = trace.hints->Intern(HintVector{0, {0}});
  auto read = [&](PageId p) {
    trace.requests.push_back(Request{p, h, 0, OpType::kRead,
                                     WriteKind::kNone});
  };
  auto rwrite = [&](PageId p) {
    trace.requests.push_back(Request{p, h, 0, OpType::kWrite,
                                     WriteKind::kReplacement});
  };
  rwrite(1);  // page 1 protected
  read(2);
  read(3);
  read(4);    // plain queue churns, page 1 stays
  read(1);    // hit under TQ, miss under LRU
  const Trace& t = trace;

  TqPolicy tq(2, /*write_bonus=*/1.0);
  const SimResult tq_result = Simulate(t, tq);
  EXPECT_EQ(tq_result.total.read_hits, 1u);

  LruPolicy lru(2);
  const SimResult lru_result = Simulate(t, lru);
  EXPECT_EQ(lru_result.total.read_hits, 0u);
}

TEST(OptTest, HandCheckedBelady) {
  // Cache of 2. Accesses: 1 2 3 1 2 3
  // Belady: after {1,2}, page 3 evicts page 2 (2's next use at t=4 is
  // sooner than 1's at t=3? No: 1 recurs at t=3, 2 at t=4 -> evict the
  // farther one, which is 2... keep checking: OPT achieves 2 hits here:
  //   1 miss {1}, 2 miss {1,2}, 3 miss evict 2 {1,3},
  //   1 hit, 2 miss evict 1 or 3 (neither recurs; 1 recurs never, 3 at
  //   t=5) -> evict 1 {2,3}, 3 hit.
  const Trace trace = ReadTrace({1, 2, 3, 1, 2, 3});
  auto opt = MakePolicy(PolicyKind::kOpt, 2, &trace, ClicOptions{});
  const SimResult result = Simulate(trace, *opt);
  EXPECT_EQ(result.total.read_hits, 2u);
}

TEST(PolicyZooTest, OptDominatesAndAllStayConsistent) {
  // A mixed synthetic workload; every policy must produce hits within
  // [0, OPT] and identical read/write accounting.
  Trace trace;
  Rng rng(123);
  ZipfGenerator zipf(500, 0.8);
  const HintSetId h = trace.hints->Intern(HintVector{0, {0}});
  for (int i = 0; i < 20'000; ++i) {
    Request r;
    r.page = zipf(rng);
    r.hint_set = h;
    if (rng.Chance(0.25)) {
      r.op = OpType::kWrite;
      r.write_kind =
          rng.Chance(0.5) ? WriteKind::kReplacement : WriteKind::kRecovery;
    }
    trace.requests.push_back(r);
  }

  ClicOptions options;
  options.window = 2'000;
  auto opt = MakePolicy(PolicyKind::kOpt, 64, &trace, options);
  const SimResult opt_result = Simulate(trace, *opt);
  ASSERT_GT(opt_result.total.read_hits, 0u);

  for (PolicyKind kind :
       {PolicyKind::kLru, PolicyKind::kClock, PolicyKind::kTwoQ,
        PolicyKind::kMq, PolicyKind::kArc, PolicyKind::kTq,
        PolicyKind::kClic}) {
    auto policy = MakePolicy(kind, 64, &trace, options);
    const SimResult result = Simulate(trace, *policy);
    EXPECT_EQ(result.total.reads, opt_result.total.reads)
        << PolicyName(kind);
    EXPECT_EQ(result.total.writes, opt_result.total.writes)
        << PolicyName(kind);
    EXPECT_LE(result.total.read_hits + result.total.write_hits,
              opt_result.total.read_hits + opt_result.total.write_hits)
        << PolicyName(kind) << " beat OPT, which cannot happen";
    EXPECT_GT(result.total.read_hits, 0u) << PolicyName(kind);
  }
}

TEST(PolicyZooTest, TinyCachesDoNotCrash) {
  const Trace trace = ReadTrace({1, 2, 3, 4, 1, 2, 3, 4, 1});
  for (PolicyKind kind :
       {PolicyKind::kOpt, PolicyKind::kTq, PolicyKind::kLru,
        PolicyKind::kArc, PolicyKind::kClic, PolicyKind::kClock,
        PolicyKind::kTwoQ, PolicyKind::kMq}) {
    auto policy = MakePolicy(kind, 1, &trace, ClicOptions{});
    const SimResult result = Simulate(trace, *policy);
    EXPECT_EQ(result.total.reads, trace.size()) << PolicyName(kind);
  }
}

// MQ demotes the tail of a higher queue only when its lifetime has
// *strictly* expired (expire < now, not <=). The two runs below differ
// only in whether the insertion burst happens at the boundary seq
// (expire == now: no demotion) or one past it (expire < now: demotion),
// and end with opposite residents.
//
// Shared prefix, cache of 3 pages, lifetime 10:
//   seq0 A miss (q0, expire 10), seq1 A hit (freq 2 -> q1, expire 11)
//   seq2 B miss (q0, expire 12), seq3 B hit (freq 2 -> q1, expire 13)
//   seq4 D miss (q0, expire 14)          queues: q1=[B,A] q0=[D]
TEST(MqTest, LifetimeExpirationBoundaryIsStrict) {
  const HintSetId h = 0;
  auto prefix = [&](MqPolicy& mq) {
    SeqNum seq = 0;
    for (PageId p : {1u, 1u, 2u, 2u, 3u}) {  // A=1 B=2 D=3
      mq.Access(Request{p, h, 0, OpType::kRead, WriteKind::kNone}, seq++);
    }
  };
  auto access = [&](MqPolicy& mq, PageId p, SeqNum seq) {
    return mq.Access(Request{p, h, 0, OpType::kRead, WriteKind::kNone}, seq);
  };

  {
    // Boundary run: inserts at seq 11, where A's expire (11) is NOT
    // strictly older. No demotion: the two misses evict q0's D then the
    // freshly inserted C, leaving A resident.
    MqPolicy mq(3, /*lifetime=*/10);
    prefix(mq);
    EXPECT_FALSE(access(mq, 4, 11));  // C: evicts D (q0 tail)
    EXPECT_FALSE(access(mq, 5, 11));  // E: evicts C, not the q1 pages
    EXPECT_TRUE(access(mq, 1, 11)) << "A must survive at the boundary";
    EXPECT_FALSE(access(mq, 4, 12)) << "C was the second victim";
  }
  {
    // One past the boundary: at seq 12, A's expire (11) < now, so
    // Adjust demotes A to q0 (MRU side). The first miss still evicts
    // D, but the second now takes A — the demoted page — and C stays.
    MqPolicy mq(3, /*lifetime=*/10);
    prefix(mq);
    EXPECT_FALSE(access(mq, 4, 12));  // C: demotes A, evicts D
    EXPECT_FALSE(access(mq, 5, 13));  // E: evicts the demoted A
    EXPECT_TRUE(access(mq, 4, 13)) << "C must survive past the boundary";
    EXPECT_FALSE(access(mq, 1, 14)) << "A was demoted and evicted";
  }
}

TEST(SimulatorTest, PerClientAccounting) {
  Trace trace;
  const HintSetId h = trace.hints->Intern(HintVector{0, {0}});
  // Client 0: pages 1,1 (one hit). Client 1: pages 2,3 (no hits).
  trace.requests = {
      {1, h, 0, OpType::kRead, WriteKind::kNone},
      {1, h, 0, OpType::kRead, WriteKind::kNone},
      {2, h, 1, OpType::kRead, WriteKind::kNone},
      {3, h, 1, OpType::kRead, WriteKind::kNone},
  };
  LruPolicy lru(10);
  const SimResult result = Simulate(trace, lru);
  ASSERT_EQ(result.per_client.size(), 2u);
  EXPECT_DOUBLE_EQ(result.per_client.at(0).ReadHitRatio(), 0.5);
  EXPECT_DOUBLE_EQ(result.per_client.at(1).ReadHitRatio(), 0.0);
  EXPECT_EQ(result.total.reads, 4u);
  EXPECT_EQ(result.total.read_hits, 1u);
}

}  // namespace
}  // namespace clic
