#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/trace.h"
#include "sim/policy_factory.h"
#include "sim/simulator.h"
#include "policies/lru.h"
#include "policies/tq.h"

namespace clic {
namespace {

Trace ReadTrace(std::initializer_list<PageId> pages) {
  Trace trace;
  const HintSetId h = trace.hints->Intern(HintVector{0, {0}});
  for (PageId p : pages) {
    trace.requests.push_back(Request{p, h, 0, OpType::kRead,
                                     WriteKind::kNone});
  }
  return trace;
}

TEST(LruTest, HandCheckedHitSequence) {
  // Cache of 2 pages. Accesses: 1 2 1 3 2 3 1
  //   1 -> miss {1}
  //   2 -> miss {2,1}
  //   1 -> hit  {1,2}
  //   3 -> miss {3,1}  (2 evicted)
  //   2 -> miss {2,3}  (1 evicted)
  //   3 -> hit  {3,2}
  //   1 -> miss {1,3}  (2 evicted)
  const Trace trace = ReadTrace({1, 2, 1, 3, 2, 3, 1});
  LruPolicy lru(2);
  const SimResult result = Simulate(trace, lru);
  EXPECT_EQ(result.total.reads, 7u);
  EXPECT_EQ(result.total.read_hits, 2u);
}

TEST(LruTest, SingleSlotCacheNeverHitsOnAlternation) {
  const Trace trace = ReadTrace({1, 2, 1, 2, 1, 2});
  LruPolicy lru(1);
  const SimResult result = Simulate(trace, lru);
  EXPECT_EQ(result.total.read_hits, 0u);
}

TEST(LruTest, RepeatsAlwaysHitWhenCacheFits) {
  const Trace trace = ReadTrace({1, 2, 3, 1, 2, 3, 1, 2, 3});
  LruPolicy lru(3);
  const SimResult result = Simulate(trace, lru);
  EXPECT_EQ(result.total.read_hits, 6u);
}

TEST(TqTest, ReplacementWritesAreProtected) {
  // Cache of 2. A replacement-written page survives a scan of plain
  // reads that would evict it under pure LRU.
  Trace trace;
  const HintSetId h = trace.hints->Intern(HintVector{0, {0}});
  auto read = [&](PageId p) {
    trace.requests.push_back(Request{p, h, 0, OpType::kRead,
                                     WriteKind::kNone});
  };
  auto rwrite = [&](PageId p) {
    trace.requests.push_back(Request{p, h, 0, OpType::kWrite,
                                     WriteKind::kReplacement});
  };
  rwrite(1);  // page 1 protected
  read(2);
  read(3);
  read(4);    // plain queue churns, page 1 stays
  read(1);    // hit under TQ, miss under LRU
  const Trace& t = trace;

  TqPolicy tq(2, /*write_bonus=*/1.0);
  const SimResult tq_result = Simulate(t, tq);
  EXPECT_EQ(tq_result.total.read_hits, 1u);

  LruPolicy lru(2);
  const SimResult lru_result = Simulate(t, lru);
  EXPECT_EQ(lru_result.total.read_hits, 0u);
}

TEST(OptTest, HandCheckedBelady) {
  // Cache of 2. Accesses: 1 2 3 1 2 3
  // Belady: after {1,2}, page 3 evicts page 2 (2's next use at t=4 is
  // sooner than 1's at t=3? No: 1 recurs at t=3, 2 at t=4 -> evict the
  // farther one, which is 2... keep checking: OPT achieves 2 hits here:
  //   1 miss {1}, 2 miss {1,2}, 3 miss evict 2 {1,3},
  //   1 hit, 2 miss evict 1 or 3 (neither recurs; 1 recurs never, 3 at
  //   t=5) -> evict 1 {2,3}, 3 hit.
  const Trace trace = ReadTrace({1, 2, 3, 1, 2, 3});
  auto opt = MakePolicy(PolicyKind::kOpt, 2, &trace, ClicOptions{});
  const SimResult result = Simulate(trace, *opt);
  EXPECT_EQ(result.total.read_hits, 2u);
}

TEST(PolicyZooTest, OptDominatesAndAllStayConsistent) {
  // A mixed synthetic workload; every policy must produce hits within
  // [0, OPT] and identical read/write accounting.
  Trace trace;
  Rng rng(123);
  ZipfGenerator zipf(500, 0.8);
  const HintSetId h = trace.hints->Intern(HintVector{0, {0}});
  for (int i = 0; i < 20'000; ++i) {
    Request r;
    r.page = zipf(rng);
    r.hint_set = h;
    if (rng.Chance(0.25)) {
      r.op = OpType::kWrite;
      r.write_kind =
          rng.Chance(0.5) ? WriteKind::kReplacement : WriteKind::kRecovery;
    }
    trace.requests.push_back(r);
  }

  ClicOptions options;
  options.window = 2'000;
  auto opt = MakePolicy(PolicyKind::kOpt, 64, &trace, options);
  const SimResult opt_result = Simulate(trace, *opt);
  ASSERT_GT(opt_result.total.read_hits, 0u);

  for (PolicyKind kind :
       {PolicyKind::kLru, PolicyKind::kClock, PolicyKind::kTwoQ,
        PolicyKind::kMq, PolicyKind::kArc, PolicyKind::kTq,
        PolicyKind::kClic}) {
    auto policy = MakePolicy(kind, 64, &trace, options);
    const SimResult result = Simulate(trace, *policy);
    EXPECT_EQ(result.total.reads, opt_result.total.reads)
        << PolicyName(kind);
    EXPECT_EQ(result.total.writes, opt_result.total.writes)
        << PolicyName(kind);
    EXPECT_LE(result.total.read_hits + result.total.write_hits,
              opt_result.total.read_hits + opt_result.total.write_hits)
        << PolicyName(kind) << " beat OPT, which cannot happen";
    EXPECT_GT(result.total.read_hits, 0u) << PolicyName(kind);
  }
}

TEST(PolicyZooTest, TinyCachesDoNotCrash) {
  const Trace trace = ReadTrace({1, 2, 3, 4, 1, 2, 3, 4, 1});
  for (PolicyKind kind :
       {PolicyKind::kOpt, PolicyKind::kTq, PolicyKind::kLru,
        PolicyKind::kArc, PolicyKind::kClic, PolicyKind::kClock,
        PolicyKind::kTwoQ, PolicyKind::kMq}) {
    auto policy = MakePolicy(kind, 1, &trace, ClicOptions{});
    const SimResult result = Simulate(trace, *policy);
    EXPECT_EQ(result.total.reads, trace.size()) << PolicyName(kind);
  }
}

TEST(SimulatorTest, PerClientAccounting) {
  Trace trace;
  const HintSetId h = trace.hints->Intern(HintVector{0, {0}});
  // Client 0: pages 1,1 (one hit). Client 1: pages 2,3 (no hits).
  trace.requests = {
      {1, h, 0, OpType::kRead, WriteKind::kNone},
      {1, h, 0, OpType::kRead, WriteKind::kNone},
      {2, h, 1, OpType::kRead, WriteKind::kNone},
      {3, h, 1, OpType::kRead, WriteKind::kNone},
  };
  LruPolicy lru(10);
  const SimResult result = Simulate(trace, lru);
  ASSERT_EQ(result.per_client.size(), 2u);
  EXPECT_DOUBLE_EQ(result.per_client.at(0).ReadHitRatio(), 0.5);
  EXPECT_DOUBLE_EQ(result.per_client.at(1).ReadHitRatio(), 0.0);
  EXPECT_EQ(result.total.reads, 4u);
  EXPECT_EQ(result.total.read_hits, 1u);
}

}  // namespace
}  // namespace clic
