#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.h"
#include "stream/lossy_counting.h"
#include "stream/space_saving.h"

namespace clic {
namespace {

TEST(SpaceSavingTest, ExactWhenCapacityCoversDistinctItems) {
  SpaceSaving<int> ss(8);
  std::map<int, std::uint64_t> truth;
  Rng rng(42);
  for (int i = 0; i < 10'000; ++i) {
    const int item = static_cast<int>(rng.Below(8));
    ss.Offer(item);
    ++truth[item];
  }
  for (const auto& [item, count] : truth) {
    EXPECT_EQ(ss.Count(item), count) << "item " << item;
    EXPECT_EQ(ss.Error(item), 0u) << "item " << item;
  }
  EXPECT_EQ(ss.size(), truth.size());
}

TEST(SpaceSavingTest, BoundsHoldUnderReplacement) {
  // Zipf stream over many more items than counters.
  SpaceSaving<std::uint32_t> ss(10);
  std::map<std::uint32_t, std::uint64_t> truth;
  Rng rng(7);
  ZipfGenerator zipf(1'000, 1.2);
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    const std::uint32_t item = zipf(rng);
    ss.Offer(item);
    ++truth[item];
  }
  // Per-item guarantee: true <= Count, Count - Error <= true.
  for (const auto& entry : ss.Items()) {
    const std::uint64_t true_count = truth[entry.item];
    EXPECT_GE(entry.count, true_count);
    EXPECT_LE(entry.count - entry.error, true_count);
  }
  // Any item with true count > n/k must be monitored.
  for (const auto& [item, count] : truth) {
    if (count > static_cast<std::uint64_t>(n) / 10) {
      EXPECT_TRUE(ss.Contains(item)) << "item " << item;
    }
  }
  // The heaviest item of Zipf(1.2) is unambiguous: it must be on top.
  ASSERT_FALSE(ss.Items().empty());
  EXPECT_EQ(ss.Items().front().item, 0u);
}

TEST(SpaceSavingTest, ItemsSortedByCount) {
  SpaceSaving<int> ss(16);
  for (int i = 0; i < 10; ++i) {
    for (int rep = 0; rep <= i; ++rep) ss.Offer(i);
  }
  const auto items = ss.Items();
  for (std::size_t i = 1; i < items.size(); ++i) {
    EXPECT_GE(items[i - 1].count, items[i].count);
  }
}

TEST(LossyCountingTest, UndercountBoundedByEpsilonN) {
  const double epsilon = 0.001;
  LossyCounting<std::uint32_t> lc(epsilon);
  std::map<std::uint32_t, std::uint64_t> truth;
  Rng rng(11);
  ZipfGenerator zipf(2'000, 1.0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const std::uint32_t item = zipf(rng);
    lc.Offer(item);
    ++truth[item];
  }
  const auto bound = static_cast<std::uint64_t>(epsilon * n);
  for (const auto& [item, count] : truth) {
    // Estimated counts never exceed the truth and undercount by <= eps*N.
    EXPECT_LE(lc.Count(item), count);
    if (count > bound) {
      EXPECT_TRUE(lc.Contains(item)) << "item " << item;
      EXPECT_GE(lc.Count(item) + bound, count);
    }
  }
}

TEST(LossyCountingTest, PrunesInfrequentItems) {
  LossyCounting<int> lc(0.01);  // bucket width 100
  // 10k distinct singletons must not all survive.
  for (int i = 0; i < 10'000; ++i) lc.Offer(i);
  EXPECT_LT(lc.size(), 1'000u);
}

}  // namespace
}  // namespace clic
