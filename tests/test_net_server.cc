// Network front-end contract tests over real loopback sockets: frames
// apply through the ClientPort path with exact wire + admission
// ledgers, malformed input fails closed with a typed error and a
// connection close, the connection table sheds at accept time, the
// slowloris deadline evicts stuck partial frames, graceful drain
// flushes in-flight frames into the `stopped` bucket, and the
// deterministic wire mode is bit-identical to per-shard sequential
// Simulate().
#include "server/net/net_server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/trace.h"
#include "server/cache_server.h"
#include "server/net/wire_client.h"
#include "sim/simulator.h"

namespace clic::server::net {
namespace {

Trace MakeSynthetic(const std::string& name, std::uint32_t salt,
                    std::size_t n, std::size_t num_clients = 2) {
  Trace trace;
  trace.name = name;
  std::vector<HintSetId> hints;
  for (std::uint32_t c = 0; c < num_clients; ++c) {
    hints.push_back(trace.hints->Intern(
        HintVector{static_cast<ClientId>(c), {c + 1, 100 + salt + c}}));
  }
  trace.requests.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Request r;
    r.page = static_cast<PageId>(
        i % 3 == 0 ? (i * 7919 + salt) % 61 : (i * 104729 + salt) % 509);
    r.client = static_cast<ClientId>(i % num_clients);
    r.hint_set = hints[r.client];
    if (i % 5 == 0) {
      r.op = OpType::kWrite;
      r.write_kind =
          i % 10 == 0 ? WriteKind::kRecovery : WriteKind::kReplacement;
    }
    trace.requests.push_back(r);
  }
  return trace;
}

NetServerOptions SmallServer() {
  NetServerOptions opts;
  opts.server.shards = 2;
  opts.server.cache_pages = 64;
  opts.conn_limit = 4;
  return opts;
}

int ConnectRaw(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Reads until one reply frame parses (or EOF/timeout); returns the
/// wire code, or -1 on EOF before a frame.
int ReadReplyCode(int fd) {
  FrameParser parser(kWireMaxBatch);
  ParsedFrame frame;
  std::uint8_t buf[256];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r <= 0) return -1;
    const std::uint8_t* p = buf;
    std::size_t len = static_cast<std::size_t>(r);
    const ParseStatus st = parser.Consume(&p, &len, &frame);
    if (st == ParseStatus::kFrame) return frame.code;
    if (st == ParseStatus::kError) return -2;
  }
}

bool ReadEof(int fd) {
  std::uint8_t buf[64];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r == 0) return true;
    if (r < 0) return false;
  }
}

TEST(NetServerTest, AppliesBatchesWithExactLedgers) {
  const Trace trace = MakeSynthetic("net_apply", 1, 4000);
  NetServer server(SmallServer());
  WireClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port())) << client.error();
  std::uint64_t sent = 0;
  for (std::size_t off = 0; off < trace.requests.size(); off += 64) {
    const std::size_t n = std::min<std::size_t>(64, trace.size() - off);
    ASSERT_EQ(client.Call(&trace.requests[off], n), kWireApplied)
        << client.error();
    sent += n;
  }
  client.Close();
  server.Drain();
  const NetStats net = server.Stats();
  EXPECT_EQ(net.accepted, 1u);
  EXPECT_EQ(net.frame_requests, sent);
  EXPECT_EQ(net.rejected_frames, 0u);
  const AdmissionStats adm = server.cache().TotalAdmission();
  EXPECT_EQ(adm.submitted_requests, sent);
  EXPECT_EQ(adm.applied_requests, sent);
  EXPECT_EQ(server.cache().requests_applied(), sent);
}

TEST(NetServerTest, MalformedFrameGetsTypedErrorThenClose) {
  NetServer server(SmallServer());
  const int fd = ConnectRaw(server.port());
  ASSERT_GE(fd, 0);
  // 32 bytes of garbage: bad magic at header time.
  const std::string garbage(32, '\x5A');
  ASSERT_EQ(::write(fd, garbage.data(), garbage.size()),
            static_cast<ssize_t>(garbage.size()));
  EXPECT_EQ(ReadReplyCode(fd), kWireBadMagic);
  EXPECT_TRUE(ReadEof(fd));  // fail closed: the connection dies
  ::close(fd);
  server.Drain();
  EXPECT_EQ(server.Stats().rejected_frames, 1u);
  EXPECT_EQ(server.cache().requests_applied(), 0u);
}

TEST(NetServerTest, PatchedGiantLengthRejectedBeforePayload) {
  NetServerOptions opts = SmallServer();
  opts.max_batch = 16;
  NetServer server(opts);
  const int fd = ConnectRaw(server.port());
  ASSERT_GE(fd, 0);
  // A consistent header claiming 0xFFFF requests (786KB payload): the
  // server must reject from the header alone — we never send a payload
  // byte, so anything other than header-time rejection would hang here.
  Request r;
  std::string frame;
  AppendBatchFrame(&r, 1, 1, &frame);
  frame[6] = static_cast<char>(0xFF);
  frame[7] = static_cast<char>(0xFF);
  const std::uint32_t giant = 0xFFFFu * 12u;
  for (int i = 0; i < 4; ++i) {
    frame[8 + i] = static_cast<char>((giant >> (8 * i)) & 0xFF);
  }
  ASSERT_EQ(::write(fd, frame.data(), kFrameHeaderBytes),
            static_cast<ssize_t>(kFrameHeaderBytes));
  EXPECT_EQ(ReadReplyCode(fd), kWireBadCount);
  EXPECT_TRUE(ReadEof(fd));
  ::close(fd);
  server.Drain();
  EXPECT_EQ(server.Stats().rejected_frames, 1u);
}

TEST(NetServerTest, FullConnectionTableShedsAtAccept) {
  NetServerOptions opts = SmallServer();
  opts.conn_limit = 1;
  NetServer server(opts);
  WireClient first;
  ASSERT_TRUE(first.Connect("127.0.0.1", server.port()));
  // Prove the first connection is actually registered before racing a
  // second one against it.
  Request r;
  ASSERT_EQ(first.Call(&r, 1), kWireApplied);
  const int fd = ConnectRaw(server.port());
  ASSERT_GE(fd, 0);
  EXPECT_EQ(ReadReplyCode(fd), kWireServerBusy);
  EXPECT_TRUE(ReadEof(fd));
  ::close(fd);
  first.Close();
  server.Drain();
  EXPECT_EQ(server.Stats().accept_shed, 1u);
  EXPECT_EQ(server.Stats().accepted, 1u);
}

TEST(NetServerTest, SlowlorisPartialFrameEvicted) {
  NetServerOptions opts = SmallServer();
  opts.read_timeout_ms = 40.0;
  NetServer server(opts);
  const int fd = ConnectRaw(server.port());
  ASSERT_GE(fd, 0);
  // Send half a header and then stall: the slowloris case.
  Request r;
  std::string frame;
  AppendBatchFrame(&r, 1, 1, &frame);
  ASSERT_EQ(::write(fd, frame.data(), 10), 10);
  EXPECT_EQ(ReadReplyCode(fd), kWireReadTimeout);
  EXPECT_TRUE(ReadEof(fd));
  ::close(fd);
  server.Drain();
  EXPECT_EQ(server.Stats().evicted_read, 1u);
}

TEST(NetServerTest, HealthyConnectionUnaffectedByDeadline) {
  // A connection that always completes its frames must never trip the
  // partial-frame timer, even when it pauses BETWEEN frames far longer
  // than the read deadline.
  NetServerOptions opts = SmallServer();
  opts.read_timeout_ms = 30.0;
  NetServer server(opts);
  WireClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  Request r;
  ASSERT_EQ(client.Call(&r, 1), kWireApplied);
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  ASSERT_EQ(client.Call(&r, 1), kWireApplied) << client.error();
  client.Close();
  server.Drain();
  EXPECT_EQ(server.Stats().evicted_read, 0u);
}

TEST(NetServerTest, DrainFlushesInFlightFramesToStopped) {
  NetServer server(SmallServer());
  const int fd = ConnectRaw(server.port());
  ASSERT_GE(fd, 0);
  // Complete one frame so the connection is live, then write another
  // whole frame and drain before reading its reply: the drain pass must
  // answer it `stopped` (or have applied it just before the stop), and
  // the admission ledger must stay exact either way.
  Request r;
  std::string frame;
  AppendBatchFrame(&r, 1, 1, &frame);
  ASSERT_EQ(::write(fd, frame.data(), frame.size()),
            static_cast<ssize_t>(frame.size()));
  EXPECT_EQ(ReadReplyCode(fd), kWireApplied);
  std::string second;
  AppendBatchFrame(&r, 1, 2, &second);
  ASSERT_EQ(::write(fd, second.data(), second.size()),
            static_cast<ssize_t>(second.size()));
  server.Drain();
  const AdmissionStats adm = server.cache().TotalAdmission();
  EXPECT_EQ(adm.submitted_requests,
            adm.applied_requests + adm.shed_requests +
                adm.timed_out_requests + adm.expired_requests +
                adm.stopped_requests);
  const NetStats net = server.Stats();
  // The second frame was either applied before the stop or flushed by
  // the drain pass — never lost.
  EXPECT_EQ(net.frames, adm.submitted_batches);
  ::close(fd);
}

TEST(NetServerTest, DeterministicWireMatchesPartitionedSimulate) {
  const Trace trace = MakeSynthetic("net_determinism", 7, 6000, 3);
  ServerOptions sopts;
  sopts.shards = 4;
  sopts.cache_pages = 96;
  sopts.deterministic = true;

  NetServerOptions nopts;
  nopts.server = sopts;
  nopts.conn_limit = 3;
  nopts.io_threads = 1;
  NetServer server(nopts);

  WireLoadOptions wopts;
  wopts.port = server.port();
  wopts.clients = 3;
  wopts.batch_size = 32;
  wopts.deterministic = true;
  const WireLoadResult wire = RunWireLoad(trace, wopts);
  server.Drain();
  EXPECT_EQ(wire.applied_requests, trace.requests.size());
  EXPECT_EQ(wire.conn_lost_batches, 0u);

  const SimResult expected = PartitionedSimulate(trace, sopts);
  const CacheStats served = server.cache().TotalStats();
  EXPECT_EQ(served.reads, expected.total.reads);
  EXPECT_EQ(served.writes, expected.total.writes);
  EXPECT_EQ(served.read_hits, expected.total.read_hits);
  EXPECT_EQ(served.write_hits, expected.total.write_hits);
  const auto per_client = server.cache().PerClientStats();
  ASSERT_EQ(per_client.size(), expected.per_client.size());
  for (const auto& [client, stats] : expected.per_client) {
    const auto it = per_client.find(client);
    ASSERT_NE(it, per_client.end()) << "client " << client;
    EXPECT_EQ(it->second.read_hits, stats.read_hits) << "client " << client;
    EXPECT_EQ(it->second.write_hits, stats.write_hits)
        << "client " << client;
  }
}

TEST(NetServerTest, DeterministicModeRejectsMultipleIoThreads) {
  NetServerOptions opts = SmallServer();
  opts.server.deterministic = true;
  opts.io_threads = 2;
  EXPECT_THROW(NetServer{opts}, std::invalid_argument);
}

TEST(NetServerTest, NetFaultsPreserveDecisionsAndCount) {
  const Trace trace = MakeSynthetic("net_chaos", 3, 5000, 2);
  fault::FaultPlan plan;
  std::string error;
  ASSERT_TRUE(fault::ParseFaultPlan(
      "net:torn-write=3,partial-read=4,accept-stall=2,stall-ms=1", &plan,
      &error))
      << error;

  ServerOptions sopts;
  sopts.shards = 2;
  sopts.cache_pages = 64;
  sopts.deterministic = true;

  NetServerOptions nopts;
  nopts.server = sopts;
  nopts.server.fault = &plan;
  nopts.conn_limit = 2;
  NetServer server(nopts);

  WireLoadOptions wopts;
  wopts.port = server.port();
  wopts.clients = 2;
  wopts.batch_size = 32;
  wopts.deterministic = true;
  const WireLoadResult wire = RunWireLoad(trace, wopts);
  server.Drain();

  // Torn writes / partial reads / accept stalls re-chunk or delay
  // bytes; every decision must match the fault-free baseline exactly.
  EXPECT_EQ(wire.applied_requests, trace.requests.size());
  const NetStats net = server.Stats();
  EXPECT_GT(net.torn_writes, 0u);
  EXPECT_GT(net.partial_reads, 0u);
  EXPECT_GT(net.accept_stalls, 0u);
  const SimResult expected = PartitionedSimulate(trace, sopts);
  const CacheStats served = server.cache().TotalStats();
  EXPECT_EQ(served.read_hits, expected.total.read_hits);
  EXPECT_EQ(served.write_hits, expected.total.write_hits);
}

}  // namespace
}  // namespace clic::server::net
