#include "sweep/sweep.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/cli_util.h"
#include "core/trace.h"
#include "sim/simulator.h"
#include "workload/scenario.h"
#include "workload/trace_factory.h"

namespace clic::sweep {
namespace {

// Deterministic in-memory workload: two clients, two hint sets, a
// skewed page pattern with ~20% writes. No disk, no generation cost.
Trace MakeSynthetic(const std::string& name, std::uint32_t salt,
                    std::size_t n) {
  Trace trace;
  trace.name = name;
  const HintSetId h0 = trace.hints->Intern(HintVector{0, {1, 100 + salt}});
  const HintSetId h1 = trace.hints->Intern(HintVector{1, {2, 200 + salt}});
  trace.requests.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Request r;
    // Mix of a hot set (mod 61) and a cold sweep (mod 509).
    r.page = static_cast<PageId>(
        i % 3 == 0 ? (i * 7919 + salt) % 61 : (i * 104729 + salt) % 509);
    r.client = static_cast<ClientId>(i % 2);
    r.hint_set = r.client == 0 ? h0 : h1;
    if (i % 5 == 0) {
      r.op = OpType::kWrite;
      r.write_kind = i % 10 == 0 ? WriteKind::kRecovery
                                 : WriteKind::kReplacement;
    }
    trace.requests.push_back(r);
  }
  return trace;
}

class FixtureProvider {
 public:
  FixtureProvider() {
    traces_.emplace("synthA",
                    std::make_unique<Trace>(MakeSynthetic("synthA", 3, 4000)));
    traces_.emplace("synthB",
                    std::make_unique<Trace>(MakeSynthetic("synthB", 17, 2500)));
  }

  SweepRunner::TraceProvider Get() {
    return [this](const std::string& name) -> const Trace& {
      return *traces_.at(name);
    };
  }

  const Trace& Trace_(const std::string& name) const {
    return *traces_.at(name);
  }

 private:
  std::map<std::string, std::unique_ptr<Trace>> traces_;
};

SweepSpec TestSpec() {
  SweepSpec spec;
  spec.traces = {"synthA", "synthB"};
  spec.policies = {PolicyKind::kLru, PolicyKind::kArc, PolicyKind::kOpt,
                   PolicyKind::kClic};
  spec.cache_sizes = {32, 96};
  spec.clic.window = 500;  // several windows complete within 2500 requests
  spec.clic.outqueue_per_page = 2.0;
  return spec;
}

void ExpectSameStats(const CacheStats& a, const CacheStats& b) {
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.read_hits, b.read_hits);
  EXPECT_EQ(a.write_hits, b.write_hits);
}

void ExpectSameResult(const SimResult& a, const SimResult& b) {
  ExpectSameStats(a.total, b.total);
  ASSERT_EQ(a.per_client.size(), b.per_client.size());
  for (const auto& [client, stats] : a.per_client) {
    auto it = b.per_client.find(client);
    ASSERT_NE(it, b.per_client.end());
    ExpectSameStats(stats, it->second);
  }
}

TEST(ExpandGridTest, FixedNestingOrderAndDenseIndices) {
  SweepSpec spec;
  spec.traces = {"t0", "t1"};
  spec.policies = {PolicyKind::kLru, PolicyKind::kClic};
  spec.cache_sizes = {10, 20, 30};
  const std::vector<SweepPoint> points = ExpandGrid(spec);
  ASSERT_EQ(points.size(), 12u);
  std::size_t i = 0;
  for (const std::string& trace : spec.traces) {
    for (PolicyKind policy : spec.policies) {
      for (std::size_t cache : spec.cache_sizes) {
        EXPECT_EQ(points[i].index, i);
        EXPECT_EQ(points[i].trace, trace);
        EXPECT_EQ(points[i].policy, policy);
        EXPECT_EQ(points[i].cache_pages, cache);
        ++i;
      }
    }
  }
}

TEST(FigureSpecTest, KnownFiguresHaveExpectedGridShapes) {
  const auto fig6 = FigureSpec("6");
  ASSERT_TRUE(fig6.has_value());
  EXPECT_EQ(fig6->traces,
            (std::vector<std::string>{"DB2_C60", "DB2_C300", "DB2_C540"}));
  EXPECT_EQ(fig6->policies.size(), 5u);
  EXPECT_EQ(fig6->cache_sizes,
            (std::vector<std::size_t>{6'000, 12'000, 18'000, 24'000,
                                      30'000}));
  EXPECT_EQ(ExpandGrid(*fig6).size(), 75u);

  const auto fig7 = FigureSpec("7");
  ASSERT_TRUE(fig7.has_value());
  EXPECT_EQ(ExpandGrid(*fig7).size(), 75u);

  const auto fig8 = FigureSpec("8");
  ASSERT_TRUE(fig8.has_value());
  EXPECT_EQ(fig8->traces, (std::vector<std::string>{"MY_H65", "MY_H98"}));
  EXPECT_EQ(ExpandGrid(*fig8).size(), 30u);

  const auto ablation = FigureSpec("ablation");
  ASSERT_TRUE(ablation.has_value());
  EXPECT_EQ(ablation->policies.size(), 7u);
  EXPECT_EQ(ExpandGrid(*ablation).size(), 7u);

  EXPECT_FALSE(FigureSpec("9").has_value());
  EXPECT_FALSE(FigureSpec("").has_value());
}

TEST(FigureSpecTest, PresetTableMatchesResolvableFigures) {
  // The one table rule (common/cli_util.h): every token the help text
  // and error messages advertise must resolve, every scenario-grid
  // trace must itself be a resolvable workload, and the table must be
  // exhaustive for the grids this test knows to exist.
  for (const std::string& name : cli::FigurePresetNames()) {
    const auto spec = FigureSpec(name);
    ASSERT_TRUE(spec.has_value()) << "advertised figure '" << name
                                  << "' does not resolve";
    EXPECT_FALSE(spec->traces.empty()) << name;
    EXPECT_FALSE(spec->policies.empty()) << name;
    EXPECT_FALSE(spec->cache_sizes.empty()) << name;
    for (const std::string& trace : spec->traces) {
      bool named = false;
      for (const NamedTraceInfo& info : NamedTraces()) {
        named = named || info.name == trace;
      }
      std::string error;
      EXPECT_TRUE(named || ResolveWorkload(trace, &error).has_value())
          << "figure '" << name << "' trace '" << trace << "': " << error;
    }
  }
  const auto scan = FigureSpec("scan-pollution");
  ASSERT_TRUE(scan.has_value());
  EXPECT_EQ(scan->traces,
            (std::vector<std::string>{"zipf-hot", "scan-pollute"}));
  EXPECT_EQ(scan->cache_sizes.size(), 5u);  // the paper's cache axis
}

TEST(SweepRunnerTest, MatchesSequentialSimulateOnEveryPoint) {
  FixtureProvider fixture;
  const SweepSpec spec = TestSpec();
  SweepRunner runner(fixture.Get(), 4);
  const std::vector<SweepRow> rows = runner.Run(spec);
  const std::vector<SweepPoint> points = ExpandGrid(spec);
  ASSERT_EQ(rows.size(), points.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    SCOPED_TRACE("point " + std::to_string(i) + " " + points[i].trace + "/" +
                 PolicyName(points[i].policy) + "/" +
                 std::to_string(points[i].cache_pages));
    EXPECT_EQ(rows[i].point.trace, points[i].trace);
    EXPECT_EQ(rows[i].point.policy, points[i].policy);
    EXPECT_EQ(rows[i].point.cache_pages, points[i].cache_pages);
    const Trace& trace = fixture.Trace_(points[i].trace);
    const auto policy =
        MakePolicy(points[i].policy, points[i].cache_pages, &trace, spec.clic);
    const SimResult expected = Simulate(trace, *policy);
    ExpectSameResult(rows[i].result, expected);
    EXPECT_GE(rows[i].wall_seconds, 0.0);
  }
}

TEST(SweepRunnerTest, RowOrderAndValuesStableAcrossThreadCounts) {
  FixtureProvider fixture;
  const SweepSpec spec = TestSpec();
  const std::vector<SweepRow> baseline =
      SweepRunner(fixture.Get(), 1).Run(spec);
  for (unsigned threads : {2u, 5u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const std::vector<SweepRow> rows =
        SweepRunner(fixture.Get(), threads).Run(spec);
    ASSERT_EQ(rows.size(), baseline.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(rows[i].point.index, baseline[i].point.index);
      EXPECT_EQ(rows[i].point.trace, baseline[i].point.trace);
      EXPECT_EQ(rows[i].point.policy, baseline[i].point.policy);
      EXPECT_EQ(rows[i].point.cache_pages, baseline[i].point.cache_pages);
      ExpectSameResult(rows[i].result, baseline[i].result);
    }
  }
}

TEST(SweepRunnerTest, ProviderExceptionPropagatesAtAnyThreadCount) {
  FixtureProvider fixture;
  SweepSpec spec = TestSpec();
  spec.traces.push_back("no-such-trace");  // FixtureProvider map::at throws
  for (unsigned threads : {1u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_THROW(SweepRunner(fixture.Get(), threads).Run(spec),
                 std::out_of_range);
  }
}

TEST(SweepRunnerTest, EmptyGridYieldsNoRows) {
  FixtureProvider fixture;
  SweepSpec spec;  // no traces/policies/caches
  EXPECT_TRUE(SweepRunner(fixture.Get(), 4).Run(spec).empty());
}

TEST(SweepFormatTest, CsvRowMatchesHeaderShape) {
  SweepRow row;
  row.point.trace = "synthA";
  row.point.policy = PolicyKind::kClic;
  row.point.cache_pages = 96;
  row.result.total = {/*reads=*/100, /*writes=*/40, /*read_hits=*/40,
                      /*write_hits=*/10};
  row.result.per_client[0] = {60, 30, 0, 8};
  row.result.per_client[1] = {40, 10, 0, 2};
  row.wall_seconds = 0.125;

  const std::string header = CsvHeader();
  const std::string line = CsvRow(row);
  auto count_commas = [](const std::string& s) {
    std::size_t n = 0;
    for (char c : s) n += c == ',';
    return n;
  };
  EXPECT_EQ(count_commas(header), count_commas(line));
  EXPECT_EQ(line.rfind("synthA,CLIC,96,140,100,40,40,10,", 0), 0u)
      << line;
  EXPECT_NE(line.find("0=60:0:30:8;1=40:0:10:2"), std::string::npos) << line;
}

TEST(SweepFormatTest, CsvFieldAppliesRfc4180Quoting) {
  EXPECT_EQ(CsvField("plain_name"), "plain_name");
  EXPECT_EQ(CsvField(""), "");
  EXPECT_EQ(CsvField("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvField("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvField("line\nbreak"), "\"line\nbreak\"");
}

// Regression: a trace name containing a comma or quote used to be
// emitted raw, shifting every later column of the row.
TEST(SweepFormatTest, CsvRowSurvivesHostileTraceName) {
  SweepRow row;
  row.point.trace = "evil,\"trace\"";
  row.point.policy = PolicyKind::kLru;
  row.point.cache_pages = 8;
  row.result.total = {4, 0, 2, 0};
  const std::string line = CsvRow(row);
  EXPECT_EQ(line.rfind("\"evil,\"\"trace\"\"\",LRU,8,4,4,0,2,0,", 0), 0u)
      << line;
  // Commas outside quoted fields must match the header's column count.
  auto unquoted_commas = [](const std::string& s) {
    std::size_t n = 0;
    bool quoted = false;
    for (char c : s) {
      if (c == '"') quoted = !quoted;
      n += !quoted && c == ',';
    }
    return n;
  };
  auto plain_commas = [](const std::string& s) {
    std::size_t n = 0;
    for (char c : s) n += c == ',';
    return n;
  };
  EXPECT_EQ(unquoted_commas(line), plain_commas(CsvHeader()));
}

TEST(SweepFormatTest, JsonEscapesHostileTraceName) {
  SweepRow row;
  row.point.trace = "quo\"te\\back";
  row.point.policy = PolicyKind::kLru;
  const std::string json = JsonRow(row);
  EXPECT_NE(json.find("\"trace\":\"quo\\\"te\\\\back\""), std::string::npos)
      << json;
}

TEST(SweepFormatTest, JsonRowCarriesAllFields) {
  SweepRow row;
  row.point.trace = "synthB";
  row.point.policy = PolicyKind::kLru;
  row.point.cache_pages = 32;
  row.result.total = {10, 5, 4, 1};
  row.result.per_client[3] = {10, 4, 5, 1};
  const std::string json = JsonRow(row);
  for (const char* key :
       {"\"trace\":\"synthB\"", "\"policy\":\"LRU\"", "\"cache_pages\":32",
        "\"requests\":15", "\"reads\":10", "\"writes\":5", "\"read_hits\":4",
        "\"write_hits\":1", "\"read_hit_ratio\":", "\"write_hit_ratio\":",
        "\"wall_seconds\":", "\"per_client\":{\"3\":{\"reads\":10"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

}  // namespace
}  // namespace clic::sweep
