#include "workload/trace_factory.h"

#include <gtest/gtest.h>

#include "core/trace.h"

namespace clic {
namespace {

TEST(TraceFactoryTest, NamedTracesMatchFigure5Inventory) {
  const auto& traces = NamedTraces();
  ASSERT_EQ(traces.size(), 8u);
  EXPECT_EQ(traces[0].name, "DB2_C60");
  EXPECT_EQ(traces[7].name, "MY_H98");
  for (const NamedTraceInfo& info : traces) {
    EXPECT_GT(info.db_pages, 0u);
    EXPECT_GT(info.buffer_pages, 0u);
    EXPECT_GT(info.target_requests, 0u);
    EXPECT_LT(info.buffer_pages, info.db_pages);
  }
}

TEST(TraceFactoryTest, GenerationIsDeterministic) {
  const Trace a = MakeNamedTrace("DB2_C60", 30'000);
  const Trace b = MakeNamedTrace("DB2_C60", 30'000);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].page, b.requests[i].page) << "at " << i;
    EXPECT_EQ(a.requests[i].hint_set, b.requests[i].hint_set) << "at " << i;
    EXPECT_EQ(a.requests[i].op, b.requests[i].op) << "at " << i;
    EXPECT_EQ(a.requests[i].write_kind, b.requests[i].write_kind)
        << "at " << i;
    if (HasFailure()) break;
  }
  ASSERT_EQ(a.hints->size(), b.hints->size());
  for (HintSetId h = 0; h < a.hints->size(); ++h) {
    EXPECT_EQ(a.hints->Get(h), b.hints->Get(h));
  }
}

TEST(TraceFactoryTest, TraceShapeIsSane) {
  // 100k requests: enough for the DSS traces to reach their first sort
  // spill (a single fact-table scan can emit tens of thousands of reads
  // before the first replacement write appears).
  for (const char* name : {"DB2_C60", "DB2_H80", "MY_H65"}) {
    const Trace trace = MakeNamedTrace(name, 100'000);
    const TraceStats stats = ComputeStats(trace);
    EXPECT_EQ(stats.requests, 100'000u) << name;
    EXPECT_GT(stats.reads, 0u) << name;
    EXPECT_GT(stats.writes, 0u) << name;
    EXPECT_GT(stats.distinct_hint_sets, 4u) << name;
    // Pages must stay inside the declared database.
    std::uint64_t db_pages = 0;
    for (const NamedTraceInfo& info : NamedTraces()) {
      if (info.name == name) db_pages = info.db_pages;
    }
    for (const Request& r : trace.requests) {
      ASSERT_LT(r.page, db_pages) << name;
    }
    // Both write kinds must appear: replacement writebacks from the
    // client buffer and recovery/checkpoint writes.
    bool saw_replacement = false, saw_recovery = false;
    for (const Request& r : trace.requests) {
      if (r.op != OpType::kWrite) continue;
      saw_replacement |= r.write_kind == WriteKind::kReplacement;
      saw_recovery |= r.write_kind == WriteKind::kRecovery;
    }
    EXPECT_TRUE(saw_replacement) << name;
    if (std::string(name) == "DB2_C60") {
      EXPECT_TRUE(saw_recovery) << name;  // OLTP checkpoints
    }
  }
}

TEST(TraceFactoryDeathTest, UnknownNameFailsLoudly) {
  EXPECT_DEATH(MakeNamedTrace("NOT_A_TRACE", 100), "unknown trace");
}

}  // namespace
}  // namespace clic
