// Chaos contract tests: fault plans parse (and reject garbage with the
// offending clause named), injected faults replay deterministically,
// admission accounting stays exact under every outcome, the hint-sanity
// guard quarantines corruption instead of crashing or polluting CLIC
// state, and the watchdog/deadline/timeout paths all fire and count.
#include "server/fault_injection.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/trace.h"
#include "server/cache_server.h"
#include "sim/simulator.h"

namespace clic::server {
namespace {

using fault::FaultPlan;
using fault::ParseFaultPlan;

Trace MakeSynthetic(const std::string& name, std::uint32_t salt,
                    std::size_t n, std::size_t num_clients = 2) {
  Trace trace;
  trace.name = name;
  std::vector<HintSetId> hints;
  for (std::uint32_t c = 0; c < num_clients; ++c) {
    hints.push_back(trace.hints->Intern(
        HintVector{static_cast<ClientId>(c), {c + 1, 100 + salt + c}}));
  }
  trace.requests.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Request r;
    r.page = static_cast<PageId>(
        i % 3 == 0 ? (i * 7919 + salt) % 61 : (i * 104729 + salt) % 509);
    r.client = static_cast<ClientId>(i % num_clients);
    r.hint_set = hints[r.client];
    if (i % 5 == 0) {
      r.op = OpType::kWrite;
      r.write_kind =
          i % 10 == 0 ? WriteKind::kRecovery : WriteKind::kReplacement;
    }
    trace.requests.push_back(r);
  }
  return trace;
}

void ExpectSameStats(const CacheStats& a, const CacheStats& b) {
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.read_hits, b.read_hits);
  EXPECT_EQ(a.write_hits, b.write_hits);
}

void ExpectExactLedger(const AdmissionStats& a) {
  EXPECT_EQ(a.submitted_batches, a.applied_batches + a.shed_batches +
                                     a.timed_out_batches + a.expired_batches +
                                     a.stopped_batches);
  EXPECT_EQ(a.submitted_requests,
            a.applied_requests + a.shed_requests + a.timed_out_requests +
                a.expired_requests + a.stopped_requests);
}

// ---- plan grammar ----------------------------------------------------------

TEST(FaultPlanParseTest, ParsesEveryClauseKind) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(ParseFaultPlan(
      "seed=42;burst=3;stall:shard=1,after=10,drains=5,ms=2.5;"
      "pause:consumer=0,after=7,batches=2,ms=0.5;shed:every=9;"
      "corrupt:every=4,flips=3",
      &plan, &error))
      << error;
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_EQ(plan.burst, 3u);
  ASSERT_EQ(plan.stalls.size(), 1u);
  EXPECT_EQ(plan.stalls[0].shard, 1u);
  EXPECT_EQ(plan.stalls[0].after_drain, 10u);
  EXPECT_EQ(plan.stalls[0].drains, 5u);
  EXPECT_DOUBLE_EQ(plan.stalls[0].ms, 2.5);
  ASSERT_EQ(plan.pauses.size(), 1u);
  EXPECT_EQ(plan.pauses[0].consumer, 0u);
  EXPECT_EQ(plan.pauses[0].after_batch, 7u);
  EXPECT_EQ(plan.pauses[0].batches, 2u);
  EXPECT_DOUBLE_EQ(plan.pauses[0].ms, 0.5);
  EXPECT_EQ(plan.shed_every, 9u);
  EXPECT_EQ(plan.corrupt_every, 4u);
  EXPECT_EQ(plan.corrupt_flips, 3u);
  EXPECT_TRUE(plan.HasStalls());
  EXPECT_TRUE(plan.HasPauses());
  EXPECT_TRUE(plan.HasCorruption());
  EXPECT_TRUE(plan.AltersServedRequests());
}

TEST(FaultPlanParseTest, StallsAlonePreserveServedRequests) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(ParseFaultPlan("stall:shard=0,after=0,drains=2,ms=1", &plan,
                             &error));
  EXPECT_FALSE(plan.AltersServedRequests());
}

TEST(FaultPlanParseTest, RejectsMalformedSpecsNamingTheClause) {
  const struct {
    const char* spec;
    const char* must_mention;
  } cases[] = {
      {"", "empty"},
      {"stall:shard=0;;shed:every=2", "empty"},
      {"bogus:every=1", "bogus"},
      {"seed=abc", "abc"},
      {"seed=-3", "-3"},
      {"burst=0", "burst"},
      {"stall:shard=0,after=1,ms=nope", "nope"},
      {"stall:shard=0,whatever=1", "whatever"},
      {"pause:consumer=0,ms=-1", "-1"},
      {"shed:every=0", "every"},
      {"shed:often=2", "often"},
      {"corrupt:every=0", "corrupt"},
      {"corrupt:every=2,flips=0", "corrupt"},
      {"stall:shard", "malformed"},
      {"justakey", "justakey"},
  };
  for (const auto& c : cases) {
    FaultPlan plan;
    std::string error;
    EXPECT_FALSE(ParseFaultPlan(c.spec, &plan, &error)) << c.spec;
    EXPECT_NE(error.find(c.must_mention), std::string::npos)
        << "error for '" << c.spec << "' should mention '" << c.must_mention
        << "', got: " << error;
  }
}

// ---- determinism under injected faults -------------------------------------

// Stalls and pauses only delay work; a deterministic run under them
// must stay bit-identical to the fault-free sequential baseline, and
// replay identically.
TEST(FaultInjectionTest, StallsAndPausesPreserveDecisions) {
  const Trace trace = MakeSynthetic("chaos-delay", 13, 3000, 2);
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(ParseFaultPlan(
      "stall:shard=0,after=2,drains=3,ms=2;stall:shard=1,after=5,drains=2,"
      "ms=1;pause:consumer=0,after=4,batches=3,ms=1",
      &plan, &error))
      << error;

  ServerOptions options;
  options.shards = 2;
  options.cache_pages = 64;
  options.policy = PolicyKind::kClic;
  options.clic.window = 400;
  options.deterministic = true;
  options.fault = &plan;
  LoadOptions load;
  load.clients = 2;
  load.batch_size = 37;

  const ServeResult first = ServeTrace(trace, options, load);
  const ServeResult second = ServeTrace(trace, options, load);
  const SimResult expected = PartitionedSimulate(trace, options);
  ExpectSameStats(first.total, expected.total);
  ExpectSameStats(second.total, expected.total);
  EXPECT_EQ(first.requests, trace.size());
  ExpectExactLedger(first.admission);
  EXPECT_EQ(first.admission.shed_requests, 0u);
}

// shed:every=k removes a pure function of (client, submit index); the
// survivors must be bit-identical to simulating the filtered trace, and
// the ledger must count every victim exactly once.
TEST(FaultInjectionTest, ShedEveryIsExactAndBitIdentical) {
  const Trace trace = MakeSynthetic("chaos-shed", 29, 4000, 2);
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(ParseFaultPlan("shed:every=4", &plan, &error));

  ServerOptions options;
  options.shards = 2;
  options.cache_pages = 64;
  options.policy = PolicyKind::kClic;
  options.clic.window = 400;
  options.deterministic = true;
  options.fault = &plan;
  LoadOptions load;
  load.clients = 2;
  load.batch_size = 64;

  const ServeResult served = ServeTrace(trace, options, load);
  const Trace filtered = FilterShedBatches(trace, load, &plan, 0);
  const SimResult expected = PartitionedSimulate(filtered, options);
  ExpectSameStats(served.total, expected.total);

  // Exact shed accounting: each client submits ceil(2000/64) = 32
  // batches, every 4th is shed -> 8 per client.
  const AdmissionStats& a = served.admission;
  EXPECT_EQ(a.submitted_batches, 64u);
  EXPECT_EQ(a.shed_batches, 16u);
  EXPECT_EQ(a.applied_batches, 48u);
  EXPECT_EQ(a.timed_out_batches, 0u);
  EXPECT_EQ(a.expired_batches, 0u);
  EXPECT_EQ(a.stopped_batches, 0u);
  ExpectExactLedger(a);
  EXPECT_EQ(served.requests, filtered.size());
  EXPECT_EQ(a.submitted_requests, trace.size());
}

// Corruption is seeded per (plan seed, client, submit index): two runs
// inject identical bit flips, so decisions and quarantine counts
// replay exactly; changing the seed changes the victims.
TEST(FaultInjectionTest, CorruptionReplaysBitIdentically) {
  const Trace trace = MakeSynthetic("chaos-corrupt", 37, 3000, 2);
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(ParseFaultPlan("corrupt:every=3,flips=2;seed=7", &plan, &error));

  ServerOptions options;
  options.shards = 2;
  options.cache_pages = 64;
  options.policy = PolicyKind::kClic;
  options.clic.window = 400;
  options.deterministic = true;
  options.hint_bound = static_cast<std::uint32_t>(trace.hints->size());
  options.fault = &plan;
  LoadOptions load;
  load.clients = 2;
  load.batch_size = 50;

  const ServeResult first = ServeTrace(trace, options, load);
  const ServeResult second = ServeTrace(trace, options, load);
  ExpectSameStats(first.total, second.total);
  EXPECT_EQ(first.quarantined, second.quarantined);
  // Flipping high bits of tiny hint ids almost always lands out of
  // range, so the guard must have fired.
  EXPECT_GT(first.quarantined, 0u);
  EXPECT_EQ(first.requests, trace.size()) << "corruption must not drop work";

  FaultPlan other = plan;
  other.seed = 8;
  ServerOptions reseeded = options;
  reseeded.fault = &other;
  const ServeResult third = ServeTrace(trace, reseeded, load);
  EXPECT_NE(first.quarantined, third.quarantined)
      << "a different seed should corrupt different bits (astronomically "
         "unlikely to collide on every batch)";
}

// The guard also protects against hostile ids arriving directly (not
// via the fault hook): a crafted trace with huge hint ids must be
// quarantined per request, not fed to ClicPolicy::EnsureHint where a
// 0xFFFFFFFF id would demand a ~4-billion-entry allocation.
TEST(FaultInjectionTest, GuardQuarantinesCraftedOutOfRangeHints) {
  Trace trace = MakeSynthetic("crafted", 3, 600, 2);
  std::uint64_t bad = 0;
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    if (i % 7 == 0) {
      trace.requests[i].hint_set = 0xFFFFFFFFu - static_cast<HintSetId>(i);
      ++bad;
    }
  }
  ServerOptions options;
  options.shards = 2;
  options.cache_pages = 32;
  options.policy = PolicyKind::kClic;
  options.clic.window = 200;
  options.deterministic = true;
  options.hint_bound = static_cast<std::uint32_t>(trace.hints->size());
  LoadOptions load;
  load.clients = 2;
  load.batch_size = 32;
  const ServeResult served = ServeTrace(trace, options, load);
  EXPECT_EQ(served.quarantined, bad);
  EXPECT_EQ(served.requests, trace.size());
  ExpectExactLedger(served.admission);
}

TEST(FaultInjectionTest, ConstructorRejectsUnusableFaultConfigs) {
  FaultPlan corrupt;
  std::string error;
  ASSERT_TRUE(ParseFaultPlan("corrupt:every=2", &corrupt, &error));
  ServerOptions options;
  options.shards = 2;
  options.cache_pages = 16;
  options.fault = &corrupt;
  options.hint_bound = 0;  // corruption without the guard: refuse
  EXPECT_THROW(CacheServer(options, 1), std::invalid_argument);

  FaultPlan far_stall;
  ASSERT_TRUE(
      ParseFaultPlan("stall:shard=5,after=0,drains=1,ms=1", &far_stall,
                     &error));
  ServerOptions stall_opts;
  stall_opts.shards = 2;
  stall_opts.cache_pages = 16;
  stall_opts.fault = &far_stall;
  EXPECT_THROW(CacheServer(stall_opts, 1), std::invalid_argument);

  ServerOptions bad_deadline;
  bad_deadline.shards = 1;
  bad_deadline.cache_pages = 16;
  bad_deadline.queue_cap = 2;
  bad_deadline.admission = AdmissionPolicy::kBlockWithDeadline;
  bad_deadline.submit_timeout_ms = 0.0;
  EXPECT_THROW(CacheServer(bad_deadline, 1), std::invalid_argument);
}

// ---- bounded admission under pressure --------------------------------------

// Shed admission at a full queue: with the only consumer wedged in a
// long stall, a burst of async submits can keep at most cap batches
// queued plus one in flight; the rest must come back kShed and the
// ledger must balance.
TEST(FaultInjectionTest, ShedPolicyRejectsAtFullQueue) {
  const Trace trace = MakeSynthetic("shed-cap", 17, 64 * 12, 1);
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(
      ParseFaultPlan("stall:shard=0,after=0,drains=100000,ms=200", &plan,
                     &error));
  ServerOptions options;
  options.shards = 1;
  options.cache_pages = 32;
  options.queue_cap = 1;
  options.admission = AdmissionPolicy::kShed;
  options.fault = &plan;
  CacheServer server(options, 1);
  std::uint64_t shed = 0, enqueued = 0;
  for (std::size_t pos = 0; pos < trace.requests.size(); pos += 64) {
    const SubmitResult r = server.SubmitAsync(0, trace.requests.data() + pos,
                                              64);
    (r == SubmitResult::kShed ? shed : enqueued) += 1;
  }
  EXPECT_GE(shed, 1u);
  server.Finish(0);
  server.Stop();  // don't ride out 200ms x queued drains in a unit test
  const AdmissionStats a = server.TotalAdmission();
  EXPECT_EQ(a.submitted_batches, 12u);
  EXPECT_EQ(a.shed_batches, shed);
  EXPECT_EQ(a.enqueued_batches, enqueued);
  ExpectExactLedger(a);
}

// Deadline admission: a producer waiting on a full queue must give up
// after submit_timeout_ms with kTimedOut, exactly counted.
TEST(FaultInjectionTest, DeadlineAdmissionTimesOut) {
  const Trace trace = MakeSynthetic("timeout", 19, 64 * 3, 1);
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(
      ParseFaultPlan("stall:shard=0,after=0,drains=100000,ms=500", &plan,
                     &error));
  ServerOptions options;
  options.shards = 1;
  options.cache_pages = 32;
  options.queue_cap = 1;
  options.admission = AdmissionPolicy::kBlockWithDeadline;
  options.submit_timeout_ms = 20.0;
  options.fault = &plan;
  CacheServer server(options, 1);
  // Batch 1 is popped within the consumer's 1ms poll and wedges in the
  // 500ms stall; the sleep makes that ordering certain. Batch 2 then
  // fills the cap, and batch 3 must time out after ~20ms — the consumer
  // stays wedged for ~470ms more, so the queue cannot drain under it.
  EXPECT_EQ(server.SubmitAsync(0, trace.requests.data(), 64),
            SubmitResult::kEnqueued);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(server.SubmitAsync(0, trace.requests.data() + 64, 64),
            SubmitResult::kEnqueued);
  const auto t0 = std::chrono::steady_clock::now();
  const SubmitResult third =
      server.Submit(0, trace.requests.data() + 128, 64);
  const double waited =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(third, SubmitResult::kTimedOut);
  EXPECT_GE(waited, 19.0);
  server.Finish(0);
  server.Stop();
  const AdmissionStats a = server.TotalAdmission();
  EXPECT_EQ(a.timed_out_batches, 1u);
  ExpectExactLedger(a);
}

// Per-batch service deadlines: batches queued behind a wedged drain
// longer than batch_deadline_ms are dropped as kExpired, never served
// stale, and enqueued == applied + expired (+ stopped).
TEST(FaultInjectionTest, QueuedBatchesExpireBehindAStall) {
  const Trace trace = MakeSynthetic("expire", 23, 64 * 6, 1);
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(
      ParseFaultPlan("stall:shard=0,after=0,drains=1,ms=150", &plan, &error));
  ServerOptions options;
  options.shards = 1;
  options.cache_pages = 32;
  options.batch_deadline_ms = 40.0;
  options.fault = &plan;
  CacheServer server(options, 1);
  for (std::size_t pos = 0; pos < trace.requests.size(); pos += 64) {
    ASSERT_EQ(server.SubmitAsync(0, trace.requests.data() + pos, 64),
              SubmitResult::kEnqueued);
  }
  server.Finish(0);
  server.Shutdown();
  const AdmissionStats a = server.TotalAdmission();
  // Batch 1 is in flight before its deadline can pass; the 150ms stall
  // then pushes every queued batch far past the 40ms deadline.
  EXPECT_GE(a.expired_batches, 1u);
  EXPECT_EQ(a.enqueued_batches,
            a.applied_batches + a.expired_batches + a.stopped_batches);
  ExpectExactLedger(a);
}

// The watchdog: while shard 0's drain is wedged past watchdog_ms,
// admission sheds batches routed at it (counted separately), and
// recovery is automatic once the drain completes.
TEST(FaultInjectionTest, WatchdogShedsTrafficAtStalledShard) {
  const Trace trace = MakeSynthetic("watchdog", 31, 32 * 200, 1);
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(
      ParseFaultPlan("stall:shard=0,after=0,drains=2,ms=150", &plan, &error));
  ServerOptions options;
  options.shards = 1;  // every batch touches the stalled shard
  options.cache_pages = 32;
  options.watchdog_ms = 10.0;
  options.fault = &plan;
  CacheServer server(options, 1);
  // Paced open-loop submits: the first lands in the stall, and once the
  // drain has been in flight > 10ms the watchdog starts shedding the
  // rest at admission instead of queueing them behind the wedge.
  std::uint64_t submitted = 0;
  for (std::size_t pos = 0; pos + 32 <= trace.requests.size(); pos += 32) {
    server.SubmitAsync(0, trace.requests.data() + pos, 32);
    ++submitted;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (server.watchdog_sheds() >= 3) break;  // proven; stop early
  }
  server.Finish(0);
  server.Stop();
  EXPECT_GE(server.watchdog_sheds(), 1u);
  const AdmissionStats a = server.TotalAdmission();
  EXPECT_EQ(a.submitted_batches, submitted);
  EXPECT_GE(a.shed_batches, server.watchdog_sheds());
  ExpectExactLedger(a);
}

}  // namespace
}  // namespace clic::server
