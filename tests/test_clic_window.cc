// Hand-computed checks of CLIC's Equation-2 window analysis: priority =
// re-references credited to a hint set divided by the time-averaged
// number of tracked pages annotated with it.
#include "core/clic.h"

#include <gtest/gtest.h>

#include <map>

#include "core/hint_tree.h"

namespace clic {
namespace {

class Driver {
 public:
  explicit Driver(ClicPolicy* policy) : policy_(policy) {}
  bool Read(PageId page, HintSetId hint) {
    Request r;
    r.page = page;
    r.hint_set = hint;
    return policy_->Access(r, seq_++);
  }

 private:
  ClicPolicy* policy_;
  SeqNum seq_ = 0;
};

std::map<HintSetId, double> PriorityMap(const ClicPolicy& policy) {
  std::map<HintSetId, double> out;
  for (const auto& [hint, priority] : policy.Priorities()) {
    out[hint] = priority;
  }
  return out;
}

ClicOptions BareOptions(std::uint64_t window) {
  ClicOptions options;
  options.window = window;
  options.decay = 1.0;
  options.outqueue_per_page = 0.0;
  options.charge_metadata = false;
  return options;
}

constexpr HintSetId kA = 0, kB = 1;

TEST(ClicWindowTest, HandComputedEquation2) {
  // Cache of 4 (no evictions). Requests, with seq:
  //   0: p1 hint A (miss)   cur_A 0->1
  //   1: p2 hint A (miss)   cur_A 1->2, area_A += 1*1
  //   2: p1 hint B (hit)    R_A += 1; area_A += 2*1; cur_A->1; cur_B->1
  //   3: p2 hint A (hit)    R_A += 1 (annotation stays A)
  // ForceEndWindow at end = 4, L = 4:
  //   area_A += 1*(4-2) -> 5, S_A = 5/4, priority_A = 2/(5/4) = 1.6
  //   area_B  = 1*(4-2) -> 2, S_B = 1/2, priority_B = 0/(1/2) = 0
  ClicPolicy clic(4, BareOptions(100));
  Driver d(&clic);
  EXPECT_FALSE(d.Read(1, kA));
  EXPECT_FALSE(d.Read(2, kA));
  EXPECT_TRUE(d.Read(1, kB));
  EXPECT_TRUE(d.Read(2, kA));
  clic.ForceEndWindow();

  const auto priorities = PriorityMap(clic);
  ASSERT_EQ(priorities.size(), 2u);
  EXPECT_DOUBLE_EQ(priorities.at(kA), 1.6);
  EXPECT_DOUBLE_EQ(priorities.at(kB), 0.0);
}

TEST(ClicWindowTest, OutqueueReReferencesCount) {
  // Cache of 1, outqueue of 2 entries. p1 is evicted into the outqueue
  // and re-referenced from there: the re-reference must still credit A.
  //   0: p1 A miss            cur_A 0->1
  //   1: p2 A miss, p1 -> outq  cur_A 1->2, area_A += 1
  //   2: p1 A miss (outq hit), R_A += 1, p2 -> outq
  // End at 3: area_A += 2*(3-1) -> 5, S_A = 5/3, priority = 1/(5/3).
  ClicOptions options = BareOptions(100);
  options.outqueue_per_page = 2.0;
  ClicPolicy clic(1, options);
  EXPECT_EQ(clic.outqueue_capacity(), 2u);
  Driver d(&clic);
  EXPECT_FALSE(d.Read(1, kA));
  EXPECT_FALSE(d.Read(2, kA));
  EXPECT_FALSE(d.Read(1, kA));  // a miss, but a tracked re-reference
  clic.ForceEndWindow();

  const auto priorities = PriorityMap(clic);
  EXPECT_DOUBLE_EQ(priorities.at(kA), 1.0 / (5.0 / 3.0));
}

TEST(ClicWindowTest, DecayBlendsWindows) {
  // Window 1 replays the HandComputedEquation2 stream (acc_A = 2, 1.25).
  // Window 2 has no A re-references and one A-annotated page (p2):
  //   R = 0, S = 4/4 = 1.
  // With decay 0.5: acc_r = 0 + 0.5*2 = 1, acc_s = 1 + 0.5*1.25 = 1.625.
  ClicOptions options = BareOptions(4);
  options.decay = 0.5;
  ClicPolicy clic(8, options);
  Driver d(&clic);
  d.Read(1, kA);
  d.Read(2, kA);
  d.Read(1, kB);
  d.Read(2, kA);
  // Window boundary fires on the next access (seq 4). Four fresh pages
  // annotated with B keep A's stats quiet in window 2.
  d.Read(3, kB);
  d.Read(4, kB);
  d.Read(5, kB);
  d.Read(6, kB);
  clic.ForceEndWindow();
  EXPECT_EQ(clic.windows_completed(), 2u);

  const auto priorities = PriorityMap(clic);
  EXPECT_DOUBLE_EQ(priorities.at(kA), 1.0 / 1.625);
}

TEST(ClicWindowTest, HighPriorityHintsSurviveEviction) {
  // Window 1 teaches CLIC that hint A's pages are re-referenced and
  // hint B's are not. In window 2 a new page must evict B's page, not
  // A's, even though A's page is older in LRU terms.
  ClicPolicy clic(2, BareOptions(6));
  Driver d(&clic);
  d.Read(1, kA);
  d.Read(2, kB);
  d.Read(1, kA);
  d.Read(1, kA);
  d.Read(1, kA);
  d.Read(1, kA);
  // seq 6 starts window 2 (A has positive priority, B has zero).
  EXPECT_FALSE(d.Read(3, kB));  // miss; must evict page 2 (hint B)
  EXPECT_TRUE(d.Read(1, kA));   // A's page survived
  EXPECT_FALSE(d.Read(2, kB));  // B's page did not
}

TEST(ClicWindowTest, ColdStartEvictsGlobalLru) {
  // Before the first window completes there are no priorities; CLIC
  // must degrade to plain LRU.
  ClicPolicy clic(2, BareOptions(1'000));
  Driver d(&clic);
  d.Read(1, kA);
  d.Read(2, kB);
  EXPECT_FALSE(d.Read(3, kA));  // evicts page 1 (global LRU)
  EXPECT_TRUE(d.Read(2, kB));
  EXPECT_FALSE(d.Read(1, kA));
}

TEST(ClicWindowTest, TopKTrackerGatesPriorities) {
  // Two hint sets, both genuinely re-referenced, but hint B is rare and
  // the Space-Saving tracker only has one counter: B must get priority 0.
  ClicOptions options = BareOptions(100);
  options.tracker = TrackerKind::kSpaceSaving;
  options.top_k = 1;
  ClicPolicy clic(16, options);
  Driver d(&clic);
  d.Read(2, kB);
  d.Read(2, kB);
  for (int i = 0; i < 10; ++i) d.Read(1, kA);
  clic.ForceEndWindow();

  const auto priorities = PriorityMap(clic);
  EXPECT_GT(priorities.at(kA), 0.0);
  EXPECT_DOUBLE_EQ(priorities.at(kB), 0.0);
}

TEST(ClicWindowTest, MetadataChargeShrinksCache) {
  ClicOptions options = BareOptions(100);
  options.outqueue_per_page = 5.0;
  options.charge_metadata = true;
  ClicPolicy charged(1'000, options);
  // 5000 outqueue entries at 1% of a page each = 50 pages of metadata.
  EXPECT_EQ(charged.outqueue_capacity(), 5'000u);
  EXPECT_EQ(charged.cache_capacity(), 950u);

  options.charge_metadata = false;
  ClicPolicy free_meta(1'000, options);
  EXPECT_EQ(free_meta.cache_capacity(), 1'000u);
}

TEST(HintClassTreeTest, GroupsByInformativeAttribute) {
  // Attribute 0 determines behaviour; attribute 1 is per-variant noise.
  HintRegistry registry;
  std::vector<HintSample> samples;
  for (std::uint32_t behaviour = 0; behaviour < 2; ++behaviour) {
    for (std::uint32_t noise = 0; noise < 4; ++noise) {
      HintSample s;
      s.hint = registry.Intern(HintVector{0, {behaviour, noise}});
      s.weight = 100;
      s.rate = behaviour == 0 ? 0.9 : 0.1;
      samples.push_back(s);
    }
  }
  HintClassTree tree(registry, samples);
  EXPECT_EQ(tree.num_classes(), 2u);
  // All noise variants of one behaviour share a class...
  const std::uint32_t class0 = tree.ClassOf(samples[0].hint);
  const std::uint32_t class1 = tree.ClassOf(samples[4].hint);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(tree.ClassOf(samples[i].hint), class0);
    EXPECT_EQ(tree.ClassOf(samples[4 + i].hint), class1);
  }
  // ... and the two behaviours do not collapse into one.
  EXPECT_NE(class0, class1);
}

}  // namespace
}  // namespace clic
