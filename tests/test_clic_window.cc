// Hand-computed checks of CLIC's Equation-2 window analysis: priority =
// re-references credited to a hint set divided by the time-averaged
// number of tracked pages annotated with it.
#include "core/clic.h"

#include <gtest/gtest.h>

#include <map>

#include "core/hint_tree.h"

namespace clic {
namespace {

class Driver {
 public:
  explicit Driver(ClicPolicy* policy) : policy_(policy) {}
  bool Read(PageId page, HintSetId hint) {
    Request r;
    r.page = page;
    r.hint_set = hint;
    return policy_->Access(r, seq_++);
  }

 private:
  ClicPolicy* policy_;
  SeqNum seq_ = 0;
};

std::map<HintSetId, double> PriorityMap(const ClicPolicy& policy) {
  std::map<HintSetId, double> out;
  for (const auto& [hint, priority] : policy.Priorities()) {
    out[hint] = priority;
  }
  return out;
}

ClicOptions BareOptions(std::uint64_t window) {
  ClicOptions options;
  options.window = window;
  options.decay = 1.0;
  options.outqueue_per_page = 0.0;
  options.charge_metadata = false;
  return options;
}

constexpr HintSetId kA = 0, kB = 1;

TEST(ClicWindowTest, HandComputedEquation2) {
  // Cache of 4 (no evictions). Requests, with seq:
  //   0: p1 hint A (miss)   cur_A 0->1
  //   1: p2 hint A (miss)   cur_A 1->2, area_A += 1*1
  //   2: p1 hint B (hit)    R_A += 1; area_A += 2*1; cur_A->1; cur_B->1
  //   3: p2 hint A (hit)    R_A += 1 (annotation stays A)
  // ForceEndWindow at end = 4, L = 4:
  //   area_A += 1*(4-2) -> 5, S_A = 5/4, priority_A = 2/(5/4) = 1.6
  //   area_B  = 1*(4-2) -> 2, S_B = 1/2, priority_B = 0/(1/2) = 0
  ClicPolicy clic(4, BareOptions(100));
  Driver d(&clic);
  EXPECT_FALSE(d.Read(1, kA));
  EXPECT_FALSE(d.Read(2, kA));
  EXPECT_TRUE(d.Read(1, kB));
  EXPECT_TRUE(d.Read(2, kA));
  clic.ForceEndWindow();

  const auto priorities = PriorityMap(clic);
  ASSERT_EQ(priorities.size(), 2u);
  EXPECT_DOUBLE_EQ(priorities.at(kA), 1.6);
  EXPECT_DOUBLE_EQ(priorities.at(kB), 0.0);
}

TEST(ClicWindowTest, OutqueueReReferencesCount) {
  // Cache of 1, outqueue of 2 entries. p1 is evicted into the outqueue
  // and re-referenced from there: the re-reference must still credit A.
  //   0: p1 A miss            cur_A 0->1
  //   1: p2 A miss, p1 -> outq  cur_A 1->2, area_A += 1
  //   2: p1 A miss (outq hit), R_A += 1, p2 -> outq
  // End at 3: area_A += 2*(3-1) -> 5, S_A = 5/3, priority = 1/(5/3).
  ClicOptions options = BareOptions(100);
  options.outqueue_per_page = 2.0;
  ClicPolicy clic(1, options);
  EXPECT_EQ(clic.outqueue_capacity(), 2u);
  Driver d(&clic);
  EXPECT_FALSE(d.Read(1, kA));
  EXPECT_FALSE(d.Read(2, kA));
  EXPECT_FALSE(d.Read(1, kA));  // a miss, but a tracked re-reference
  clic.ForceEndWindow();

  const auto priorities = PriorityMap(clic);
  EXPECT_DOUBLE_EQ(priorities.at(kA), 1.0 / (5.0 / 3.0));
}

TEST(ClicWindowTest, DecayBlendsWindows) {
  // Window 1 replays the HandComputedEquation2 stream (acc_A = 2, 1.25).
  // Window 2 has no A re-references and one A-annotated page (p2):
  //   R = 0, S = 4/4 = 1.
  // With decay 0.5: acc_r = 0 + 0.5*2 = 1, acc_s = 1 + 0.5*1.25 = 1.625.
  ClicOptions options = BareOptions(4);
  options.decay = 0.5;
  ClicPolicy clic(8, options);
  Driver d(&clic);
  d.Read(1, kA);
  d.Read(2, kA);
  d.Read(1, kB);
  d.Read(2, kA);
  // Window boundary fires on the next access (seq 4). Four fresh pages
  // annotated with B keep A's stats quiet in window 2.
  d.Read(3, kB);
  d.Read(4, kB);
  d.Read(5, kB);
  d.Read(6, kB);
  clic.ForceEndWindow();
  EXPECT_EQ(clic.windows_completed(), 2u);

  const auto priorities = PriorityMap(clic);
  EXPECT_DOUBLE_EQ(priorities.at(kA), 1.0 / 1.625);
}

TEST(ClicWindowTest, HighPriorityHintsSurviveEviction) {
  // Window 1 teaches CLIC that hint A's pages are re-referenced and
  // hint B's are not. In window 2 a new page must evict B's page, not
  // A's, even though A's page is older in LRU terms.
  ClicPolicy clic(2, BareOptions(6));
  Driver d(&clic);
  d.Read(1, kA);
  d.Read(2, kB);
  d.Read(1, kA);
  d.Read(1, kA);
  d.Read(1, kA);
  d.Read(1, kA);
  // seq 6 starts window 2 (A has positive priority, B has zero).
  EXPECT_FALSE(d.Read(3, kB));  // miss; must evict page 2 (hint B)
  EXPECT_TRUE(d.Read(1, kA));   // A's page survived
  EXPECT_FALSE(d.Read(2, kB));  // B's page did not
}

TEST(ClicWindowTest, ColdStartEvictsGlobalLru) {
  // Before the first window completes there are no priorities; CLIC
  // must degrade to plain LRU.
  ClicPolicy clic(2, BareOptions(1'000));
  Driver d(&clic);
  d.Read(1, kA);
  d.Read(2, kB);
  EXPECT_FALSE(d.Read(3, kA));  // evicts page 1 (global LRU)
  EXPECT_TRUE(d.Read(2, kB));
  EXPECT_FALSE(d.Read(1, kA));
}

TEST(ClicWindowTest, TopKTrackerGatesPriorities) {
  // Two hint sets, both genuinely re-referenced, but hint B is rare and
  // the Space-Saving tracker only has one counter: B must get priority 0.
  ClicOptions options = BareOptions(100);
  options.tracker = TrackerKind::kSpaceSaving;
  options.top_k = 1;
  ClicPolicy clic(16, options);
  Driver d(&clic);
  d.Read(2, kB);
  d.Read(2, kB);
  for (int i = 0; i < 10; ++i) d.Read(1, kA);
  clic.ForceEndWindow();

  const auto priorities = PriorityMap(clic);
  EXPECT_GT(priorities.at(kA), 0.0);
  EXPECT_DOUBLE_EQ(priorities.at(kB), 0.0);
}

TEST(ClicWindowTest, MetadataChargeShrinksCache) {
  ClicOptions options = BareOptions(100);
  options.outqueue_per_page = 5.0;
  options.charge_metadata = true;
  ClicPolicy charged(1'000, options);
  // 5000 outqueue entries at 1% of a page each = 50 pages of metadata.
  EXPECT_EQ(charged.outqueue_capacity(), 5'000u);
  EXPECT_EQ(charged.cache_capacity(), 950u);

  options.charge_metadata = false;
  ClicPolicy free_meta(1'000, options);
  EXPECT_EQ(free_meta.cache_capacity(), 1'000u);
}

TEST(ClicWindowTest, IrregularWindowAdvanceKeepsLazyFoldExact) {
  // FoldDecay boundary pin: with adaptive mode on, ForceEndWindow()
  // closes windows early, so windows_completed_ advances irregularly
  // relative to seq and the every-16-windows full fold fires at odd
  // phases. A hint set left untouched through >32 such windows must
  // (1) keep its committed priority bit-exactly (the fold scales both
  // accumulators by the same factor), and (2) when finally re-touched,
  // carry accumulators equal to the eager per-window recurrence — one
  // multiplication by decay per completed window, no window skipped or
  // double-counted by the ring replay.
  //
  // Window 1 (length 16) hand-computed like HandComputedEquation2:
  //   seq 0: p1 A miss, seq 1: p2 A miss (area_A += 1)
  //   seq 2: p1 A hit (R_A=1), seq 3: p2 A hit (R_A=2)
  //   seq 4-7: p3..p6 B misses; p5/p6 evict p1/p2 (cache 4):
  //     area_A += 2*5 (seq 6) + 1*1 (seq 7) -> 12, cur_A = 0
  //   seq 8-15: p3..p6 hit twice each (R_B = 8)
  //   close at seq 16: win_r_A = 2, win_s_A = 12/16, priority_A = 8/3.
  ClicOptions options = BareOptions(16);
  options.decay = 0.5;
  options.adaptive_window = true;
  options.churn_threshold = 0.0;  // no checkpoints; closes are forced
  options.min_window = 16;        // pin the effective window at 16
  options.max_window = 16;
  ClicPolicy clic(4, options);
  Driver d(&clic);
  d.Read(1, kA);
  d.Read(2, kA);
  d.Read(1, kA);
  d.Read(2, kA);
  for (PageId p = 3; p <= 6; ++p) d.Read(p, kB);
  for (int rep = 0; rep < 2; ++rep) {
    for (PageId p = 3; p <= 6; ++p) d.Read(p, kB);
  }
  d.Read(3, kB);  // seq 16: closes window 1 at its scheduled boundary
  ASSERT_EQ(clic.windows_completed(), 1u);
  const double committed_a = PriorityMap(clic).at(kA);
  EXPECT_DOUBLE_EQ(committed_a, 2.0 / 0.75);

  // Drive 40 irregular windows of pure-B traffic (all hits, so A's
  // pages stay evicted and A is never a candidate). Every forced close
  // is an early close; the stored priority of untouched A must never
  // move, across both periodic full folds (windows 16 and 32).
  PageId rotate = 3;
  for (int w = 0; w < 40; ++w) {
    for (int i = 0; i < 5; ++i) {
      d.Read(rotate, kB);
      rotate = rotate == 6 ? 3 : rotate + 1;
    }
    clic.ForceEndWindow();
    ASSERT_EQ(PriorityMap(clic).at(kA), committed_a)
        << "untouched priority moved after irregular close " << w;
  }
  ASSERT_GE(clic.windows_completed(), 33u);  // crossed two full folds
  ASSERT_GT(clic.early_closes(), 0u);

  // Re-touch A in a length-1 window: one fresh page annotated A for
  // exactly one seq gives win_r = 0, win_s = 1. The eager recurrence
  // over the m completed windows is m multiplications by 0.5 on each
  // accumulator (ring replay + the close's own blend), all exact in
  // binary floating point.
  const std::uint64_t m = clic.windows_completed();
  clic.ForceEndWindow();  // length 0: reschedules only, no close
  ASSERT_EQ(clic.windows_completed(), m);
  d.Read(9, kA);
  clic.ForceEndWindow();
  double expected_r = 2.0, expected_s = 0.75;
  for (std::uint64_t i = 0; i < m; ++i) {
    expected_r *= 0.5;
    expected_s *= 0.5;
  }
  EXPECT_DOUBLE_EQ(PriorityMap(clic).at(kA),
                   expected_r / (1.0 + expected_s));
}

TEST(ClicWindowTest, ChurnCloseDiscountsStalePrioritiesExactly) {
  // The churn-triggered close discounts only acc_r, so every hint set
  // untouched at that close must see its committed priority scale by
  // exactly the measured similarity — here engineered to be 1/4: of
  // the four re-references in the first checkpoint interval of window
  // 2, one lands in the committed top half (the best-ranked set),
  // three land on a rank-0 set.
  ClicOptions options = BareOptions(100);  // decay = 1 (paper default)
  options.adaptive_window = true;
  options.churn_threshold = 0.5;
  options.min_window = 10;  // first checkpoint 10 requests into a window
  ClicPolicy clic(4, options);
  Driver d(&clic);
  constexpr HintSetId kC = 2, kD = 3, kE = 4;
  // Window 1: four hint sets with positive priorities (distinct
  // re-reference counts), all of their pages evicted by an E-hinted
  // scan before the close, so A..D are untouched afterwards.
  d.Read(10, kA);
  for (int i = 0; i < 4; ++i) d.Read(10, kA);
  d.Read(20, kB);
  for (int i = 0; i < 3; ++i) d.Read(20, kB);
  d.Read(30, kC);
  for (int i = 0; i < 2; ++i) d.Read(30, kC);
  d.Read(40, kD);
  d.Read(40, kD);
  for (PageId p = 50; p <= 53; ++p) d.Read(p, kE);  // evicts 10,20,30,40
  clic.ForceEndWindow();
  ASSERT_EQ(clic.windows_completed(), 1u);
  const auto before = PriorityMap(clic);
  ASSERT_GT(before.at(kA), 0.0);
  ASSERT_GT(before.at(kB), 0.0);
  ASSERT_GT(before.at(kC), 0.0);
  ASSERT_GT(before.at(kD), 0.0);
  ASSERT_EQ(before.at(kE), 0.0);

  // The committed top-half = the two highest (priority, id) pairs of
  // the four ranked sets — the same order EndWindow ranks by.
  std::vector<std::pair<double, HintSetId>> ranked = {
      {before.at(kA), kA}, {before.at(kB), kB},
      {before.at(kC), kC}, {before.at(kD), kD}};
  std::sort(ranked.begin(), ranked.end());
  const HintSetId top_hint = ranked[3].second;

  // Window 2: three E re-references (hits on the scan's cached pages),
  // one re-reference on a fresh page annotated with the top-ranked
  // set, and enough fresh misses to reach the first checkpoint with no
  // further re-references. similarity = 1/4 < 1/2 fires the close.
  d.Read(50, kE);
  d.Read(51, kE);
  d.Read(52, kE);
  d.Read(60, top_hint);  // miss: evicts rank-0 page 53
  d.Read(60, top_hint);  // the one top-half re-reference
  for (PageId p = 70; p <= 74; ++p) d.Read(p, kE);
  const std::uint64_t early_before = clic.early_closes();
  d.Read(74, kE);  // request 10 of the window: checkpoint fires first
  ASSERT_EQ(clic.early_closes(), early_before + 1)
      << "engineered churn interval did not trigger the early close";
  ASSERT_EQ(clic.windows_completed(), 2u);

  const auto after = PriorityMap(clic);
  for (const HintSetId h : {kA, kB, kC, kD}) {
    if (h == top_hint) continue;  // touched: blended, not just scaled
    EXPECT_EQ(after.at(h), 0.25 * before.at(h))
        << "stale hint " << h << " not discounted by exactly sim=1/4";
  }
}

TEST(HintClassTreeTest, GroupsByInformativeAttribute) {
  // Attribute 0 determines behaviour; attribute 1 is per-variant noise.
  HintRegistry registry;
  std::vector<HintSample> samples;
  for (std::uint32_t behaviour = 0; behaviour < 2; ++behaviour) {
    for (std::uint32_t noise = 0; noise < 4; ++noise) {
      HintSample s;
      s.hint = registry.Intern(HintVector{0, {behaviour, noise}});
      s.weight = 100;
      s.rate = behaviour == 0 ? 0.9 : 0.1;
      samples.push_back(s);
    }
  }
  HintClassTree tree(registry, samples);
  EXPECT_EQ(tree.num_classes(), 2u);
  // All noise variants of one behaviour share a class...
  const std::uint32_t class0 = tree.ClassOf(samples[0].hint);
  const std::uint32_t class1 = tree.ClassOf(samples[4].hint);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(tree.ClassOf(samples[i].hint), class0);
    EXPECT_EQ(tree.ClassOf(samples[4 + i].hint), class1);
  }
  // ... and the two behaviours do not collapse into one.
  EXPECT_NE(class0, class1);
}

}  // namespace
}  // namespace clic
