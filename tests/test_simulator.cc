#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/trace.h"
#include "policies/lru.h"

namespace clic {
namespace {

Trace TraceWithClients(std::initializer_list<ClientId> clients) {
  Trace trace;
  const HintSetId h = trace.hints->Intern(HintVector{0, {0}});
  PageId page = 0;
  for (ClientId c : clients) {
    // Two accesses to the same page per client: one miss, one hit.
    trace.requests.push_back(Request{page, h, c, OpType::kRead,
                                     WriteKind::kNone});
    trace.requests.push_back(Request{page, h, c, OpType::kRead,
                                     WriteKind::kNone});
    ++page;
  }
  return trace;
}

// Regression: the per-client accumulator used to be sized max_client+1
// unconditionally, so one stray large ClientId in a short trace paid
// for the whole id space. The density bound must route such traces
// through the map path and still produce identical accounting.
TEST(SimulatorTest, SparseClientIdsDoNotInflateAccumulators) {
  const Trace trace = TraceWithClients({0, 65535});  // 4 requests total
  LruPolicy lru(16);
  const SimResult result = Simulate(trace, lru);
  EXPECT_EQ(result.total.reads, 4u);
  EXPECT_EQ(result.total.read_hits, 2u);
  ASSERT_EQ(result.per_client.size(), 2u);
  EXPECT_EQ(result.per_client.at(0).reads, 2u);
  EXPECT_EQ(result.per_client.at(0).read_hits, 1u);
  EXPECT_EQ(result.per_client.at(65535).reads, 2u);
  EXPECT_EQ(result.per_client.at(65535).read_hits, 1u);
}

TEST(SimulatorTest, DenseAndSparsePathsAgree) {
  // Same access pattern, once with dense client ids (flat-vector path)
  // and once with the ids spread across the full ClientId range (map
  // path). Hit accounting must be identical field for field.
  const Trace dense = TraceWithClients({0, 1, 2, 3});
  const Trace sparse = TraceWithClients({0, 20000, 40000, 60000});
  LruPolicy lru_a(16);
  LruPolicy lru_b(16);
  const SimResult a = Simulate(dense, lru_a);
  const SimResult b = Simulate(sparse, lru_b);
  EXPECT_EQ(a.total.reads, b.total.reads);
  EXPECT_EQ(a.total.read_hits, b.total.read_hits);
  ASSERT_EQ(a.per_client.size(), b.per_client.size());
  const std::vector<ClientId> dense_ids = {0, 1, 2, 3};
  const std::vector<ClientId> sparse_ids = {0, 20000, 40000, 60000};
  for (std::size_t i = 0; i < dense_ids.size(); ++i) {
    const CacheStats& da = a.per_client.at(dense_ids[i]);
    const CacheStats& db = b.per_client.at(sparse_ids[i]);
    EXPECT_EQ(da.reads, db.reads);
    EXPECT_EQ(da.read_hits, db.read_hits);
    EXPECT_EQ(da.writes, db.writes);
    EXPECT_EQ(da.write_hits, db.write_hits);
  }
}

TEST(SimulatorTest, EmptyTraceYieldsZeroStats) {
  Trace trace;
  LruPolicy lru(4);
  const SimResult result = Simulate(trace, lru);
  EXPECT_EQ(result.total.reads + result.total.writes, 0u);
  EXPECT_TRUE(result.per_client.empty());
}

}  // namespace
}  // namespace clic
