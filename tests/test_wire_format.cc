// Wire-frame contract tests, mirroring test_trace_io's corruption
// discipline at the protocol layer: round-trips survive arbitrary
// re-chunking (byte-at-a-time, torn boundaries), and every seeded
// single-bit flip, truncation, or patched giant length field fails
// CLOSED — a typed error, never a silently-wrong frame and never an
// unbounded allocation.
#include "server/net/wire_format.h"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "core/trace.h"

namespace clic::server::net {
namespace {

std::vector<Request> MakeRequests(std::size_t n, std::uint32_t salt) {
  std::vector<Request> reqs;
  reqs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Request r;
    r.page = static_cast<PageId>((i * 7919 + salt) % 100003);
    r.hint_set = static_cast<HintSetId>((i + salt) % 17);
    r.client = static_cast<ClientId>(i % 5);
    if (i % 4 == 1) {
      r.op = OpType::kWrite;
      r.write_kind =
          i % 8 == 1 ? WriteKind::kRecovery : WriteKind::kReplacement;
    }
    reqs.push_back(r);
  }
  return reqs;
}

void ExpectSameRequests(const std::vector<Request>& a,
                        const std::vector<Request>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].page, b[i].page) << "request " << i;
    EXPECT_EQ(a[i].hint_set, b[i].hint_set) << "request " << i;
    EXPECT_EQ(a[i].client, b[i].client) << "request " << i;
    EXPECT_EQ(a[i].op, b[i].op) << "request " << i;
    EXPECT_EQ(a[i].write_kind, b[i].write_kind) << "request " << i;
  }
}

/// Feeds `bytes` to a fresh parser in chunks of `chunk` and returns the
/// final status (kFrame only if exactly one frame completed and the
/// input was fully consumed).
ParseStatus FeedChunked(const std::string& bytes, std::size_t chunk,
                        std::size_t max_batch, ParsedFrame* out) {
  FrameParser parser(max_batch);
  const std::uint8_t* base =
      reinterpret_cast<const std::uint8_t*>(bytes.data());
  std::size_t off = 0;
  ParseStatus last = ParseStatus::kNeedMore;
  while (off < bytes.size()) {
    const std::uint8_t* p = base + off;
    std::size_t len = std::min(chunk, bytes.size() - off);
    const std::size_t fed = len;
    last = parser.Consume(&p, &len, out);
    if (last == ParseStatus::kError) return last;
    off += fed - len;
  }
  return last;
}

// ---- round trips -----------------------------------------------------------

TEST(WireFormatTest, BatchRoundTrip) {
  const std::vector<Request> reqs = MakeRequests(37, 11);
  std::string bytes;
  AppendBatchFrame(reqs.data(), reqs.size(), 42, &bytes);
  EXPECT_EQ(bytes.size(), kFrameHeaderBytes + reqs.size() * kWireRequestBytes +
                              kFrameChecksumBytes);
  ParsedFrame frame;
  ASSERT_EQ(FeedChunked(bytes, bytes.size(), 4096, &frame),
            ParseStatus::kFrame);
  EXPECT_EQ(frame.type, FrameType::kBatch);
  EXPECT_EQ(frame.seq, 42u);
  ExpectSameRequests(reqs, frame.requests);
}

TEST(WireFormatTest, ByteAtATimeReassembly) {
  // Sockets deliver arbitrary chunks; one byte at a time is the
  // worst-case torn write and must decode identically.
  const std::vector<Request> reqs = MakeRequests(9, 3);
  std::string bytes;
  AppendBatchFrame(reqs.data(), reqs.size(), 7, &bytes);
  ParsedFrame frame;
  ASSERT_EQ(FeedChunked(bytes, 1, 4096, &frame), ParseStatus::kFrame);
  ExpectSameRequests(reqs, frame.requests);
}

TEST(WireFormatTest, ReplyRoundTrip) {
  std::string bytes;
  AppendReplyFrame(FrameType::kStatus, kWireShed, 99, &bytes);
  EXPECT_EQ(bytes.size(), kFrameHeaderBytes + kFrameChecksumBytes);
  ParsedFrame frame;
  ASSERT_EQ(FeedChunked(bytes, 3, 4096, &frame), ParseStatus::kFrame);
  EXPECT_EQ(frame.type, FrameType::kStatus);
  EXPECT_EQ(frame.code, kWireShed);
  EXPECT_EQ(frame.seq, 99u);
  EXPECT_TRUE(frame.requests.empty());
}

TEST(WireFormatTest, MultipleFramesInOneBuffer) {
  std::string bytes;
  const std::vector<Request> a = MakeRequests(5, 1);
  const std::vector<Request> b = MakeRequests(12, 2);
  AppendBatchFrame(a.data(), a.size(), 1, &bytes);
  AppendReplyFrame(FrameType::kError, kWireBadChecksum, 1, &bytes);
  AppendBatchFrame(b.data(), b.size(), 2, &bytes);

  FrameParser parser(4096);
  const std::uint8_t* p = reinterpret_cast<const std::uint8_t*>(bytes.data());
  std::size_t len = bytes.size();
  ParsedFrame frame;
  ASSERT_EQ(parser.Consume(&p, &len, &frame), ParseStatus::kFrame);
  ExpectSameRequests(a, frame.requests);
  ASSERT_EQ(parser.Consume(&p, &len, &frame), ParseStatus::kFrame);
  EXPECT_EQ(frame.type, FrameType::kError);
  EXPECT_EQ(frame.code, kWireBadChecksum);
  ASSERT_EQ(parser.Consume(&p, &len, &frame), ParseStatus::kFrame);
  ExpectSameRequests(b, frame.requests);
  EXPECT_EQ(len, 0u);
  EXPECT_EQ(parser.frames(), 3u);
  EXPECT_FALSE(parser.HasPartial());
}

// ---- fail-closed fuzzing ---------------------------------------------------

TEST(WireFormatFuzzTest, EverySingleBitFlipFailsClosed) {
  // The count/payload_len cross-check plus the FNV-1a checksum
  // guarantee: no single-bit flip anywhere in the frame can yield
  // kFrame. 256 seeded flips (every byte region hit) must all poison
  // the parser with a typed error code.
  const std::vector<Request> reqs = MakeRequests(16, 5);
  std::string clean;
  AppendBatchFrame(reqs.data(), reqs.size(), 13, &clean);
  std::mt19937_64 rng(0xC11Cu);
  for (int trial = 0; trial < 256; ++trial) {
    std::string bytes = clean;
    const std::size_t bit = rng() % (bytes.size() * 8);
    bytes[bit / 8] = static_cast<char>(bytes[bit / 8] ^ (1u << (bit % 8)));
    ParsedFrame frame;
    const ParseStatus st = FeedChunked(bytes, bytes.size(), 4096, &frame);
    ASSERT_EQ(st, ParseStatus::kError)
        << "bit " << bit << " flip produced " << static_cast<int>(st);
    FrameParser check(4096);
    const std::uint8_t* p =
        reinterpret_cast<const std::uint8_t*>(bytes.data());
    std::size_t len = bytes.size();
    check.Consume(&p, &len, &frame);
    EXPECT_GE(check.error_code(), 16u) << "flip must map to a typed error";
    EXPECT_FALSE(check.error().empty());
  }
}

TEST(WireFormatFuzzTest, TruncationsNeverYieldAFrame) {
  const std::vector<Request> reqs = MakeRequests(8, 9);
  std::string clean;
  AppendBatchFrame(reqs.data(), reqs.size(), 1, &clean);
  for (std::size_t cut = 0; cut < clean.size(); ++cut) {
    ParsedFrame frame;
    const ParseStatus st =
        FeedChunked(clean.substr(0, cut), 7, 4096, &frame);
    // A truncated valid frame is simply incomplete — kNeedMore, never a
    // decoded frame and never a spurious error.
    EXPECT_EQ(st, ParseStatus::kNeedMore) << "cut at " << cut;
  }
}

TEST(WireFormatFuzzTest, PatchedGiantLengthRejectedAtHeaderTime) {
  // A patched count/payload_len pair consistent with each other but far
  // beyond the configured bound must be rejected from the 20 header
  // bytes alone — before the parser reserves a single payload byte.
  const std::vector<Request> reqs = MakeRequests(4, 2);
  std::string bytes;
  AppendBatchFrame(reqs.data(), reqs.size(), 1, &bytes);
  // Patch count to 0xFFFF and payload_len to the matching 786420 bytes,
  // keeping the cross-check consistent so only the max_batch bound can
  // reject it.
  bytes[6] = static_cast<char>(0xFF);
  bytes[7] = static_cast<char>(0xFF);
  const std::uint32_t giant = 0xFFFFu * 12u;
  for (int i = 0; i < 4; ++i) {
    bytes[8 + i] = static_cast<char>((giant >> (8 * i)) & 0xFF);
  }
  FrameParser parser(/*max_batch=*/16);
  // Feed ONLY the header: rejection must not wait for payload bytes.
  const std::uint8_t* p = reinterpret_cast<const std::uint8_t*>(bytes.data());
  std::size_t len = kFrameHeaderBytes;
  ParsedFrame frame;
  ASSERT_EQ(parser.Consume(&p, &len, &frame), ParseStatus::kError);
  EXPECT_EQ(parser.error_code(), kWireBadCount);
}

TEST(WireFormatFuzzTest, InconsistentLengthRejectedAtHeaderTime) {
  const std::vector<Request> reqs = MakeRequests(4, 2);
  std::string bytes;
  AppendBatchFrame(reqs.data(), reqs.size(), 1, &bytes);
  // Patch only payload_len (count untouched): the cross-check breaks.
  bytes[8] = static_cast<char>(bytes[8] ^ 0x40);
  FrameParser parser(4096);
  const std::uint8_t* p = reinterpret_cast<const std::uint8_t*>(bytes.data());
  std::size_t len = kFrameHeaderBytes;
  ParsedFrame frame;
  ASSERT_EQ(parser.Consume(&p, &len, &frame), ParseStatus::kError);
  EXPECT_EQ(parser.error_code(), kWireBadLength);
}

TEST(WireFormatFuzzTest, GarbageStreamsFailClosed) {
  // Random byte streams (seeded): the parser must either want more
  // bytes or poison with a typed error — never produce a frame, never
  // crash (the ASan job gives this test its allocation teeth).
  std::mt19937_64 rng(0xFA57u);
  for (int trial = 0; trial < 64; ++trial) {
    std::string bytes(64 + rng() % 256, '\0');
    for (char& c : bytes) c = static_cast<char>(rng() & 0xFF);
    ParsedFrame frame;
    const ParseStatus st = FeedChunked(bytes, 1 + rng() % 17, 64, &frame);
    if (st == ParseStatus::kError) {
      FrameParser check(64);
      const std::uint8_t* p =
          reinterpret_cast<const std::uint8_t*>(bytes.data());
      std::size_t len = bytes.size();
      check.Consume(&p, &len, &frame);
      EXPECT_GE(check.error_code(), 16u);
    } else {
      EXPECT_EQ(st, ParseStatus::kNeedMore);
    }
  }
}

TEST(WireFormatFuzzTest, BadOpAndWriteKindRejected) {
  const std::vector<Request> reqs = MakeRequests(3, 1);
  std::string bytes;
  AppendBatchFrame(reqs.data(), reqs.size(), 1, &bytes);
  // Corrupt the first record's op byte to 7 and re-checksum so only the
  // payload validation can catch it.
  std::string patched = bytes;
  patched[kFrameHeaderBytes + 10] = 7;
  // Recompute FNV-1a over header+payload.
  std::uint64_t sum = 1469598103934665603ull;
  const std::size_t body = patched.size() - kFrameChecksumBytes;
  for (std::size_t i = 0; i < body; ++i) {
    sum ^= static_cast<std::uint8_t>(patched[i]);
    sum *= 1099511628211ull;
  }
  for (int i = 0; i < 8; ++i) {
    patched[body + i] = static_cast<char>((sum >> (8 * i)) & 0xFF);
  }
  ParsedFrame frame;
  ASSERT_EQ(FeedChunked(patched, patched.size(), 4096, &frame),
            ParseStatus::kError);
  FrameParser parser(4096);
  const std::uint8_t* p =
      reinterpret_cast<const std::uint8_t*>(patched.data());
  std::size_t len = patched.size();
  parser.Consume(&p, &len, &frame);
  EXPECT_EQ(parser.error_code(), kWireBadPayload);
  EXPECT_EQ(parser.rejected_batch_count(), 3u);
}

TEST(WireFormatFuzzTest, PoisonIsSticky) {
  std::string garbage(40, '\x5A');
  FrameParser parser(4096);
  const std::uint8_t* p =
      reinterpret_cast<const std::uint8_t*>(garbage.data());
  std::size_t len = garbage.size();
  ParsedFrame frame;
  ASSERT_EQ(parser.Consume(&p, &len, &frame), ParseStatus::kError);
  // A poisoned parser stays poisoned even for valid follow-up bytes:
  // the connection is past saving.
  std::string valid;
  const std::vector<Request> reqs = MakeRequests(2, 1);
  AppendBatchFrame(reqs.data(), reqs.size(), 1, &valid);
  p = reinterpret_cast<const std::uint8_t*>(valid.data());
  len = valid.size();
  EXPECT_EQ(parser.Consume(&p, &len, &frame), ParseStatus::kError);
}

}  // namespace
}  // namespace clic::server::net
