#include "sim/trace_ops.h"

#include <gtest/gtest.h>

#include <set>

#include "core/trace.h"

namespace clic {
namespace {

Trace TwoHintTrace(const std::string& name, PageId base) {
  Trace trace;
  trace.name = name;
  const HintSetId a = trace.hints->Intern(HintVector{0, {1}});
  const HintSetId b = trace.hints->Intern(HintVector{0, {2}});
  for (int i = 0; i < 6; ++i) {
    Request r;
    r.page = base + static_cast<PageId>(i % 3);
    r.hint_set = (i % 2) ? b : a;
    trace.requests.push_back(r);
  }
  return trace;
}

TEST(InjectNoiseHintsTest, ZeroTypesIsIdentity) {
  const Trace base = TwoHintTrace("base", 0);
  const Trace noisy = InjectNoiseHints(base, 0, 10, 1.0, 99);
  ASSERT_EQ(noisy.requests.size(), base.requests.size());
  // Deep copy, not an alias: same contents, distinct registry object.
  EXPECT_NE(noisy.hints.get(), base.hints.get());
  ASSERT_EQ(noisy.hints->size(), base.hints->size());
  for (std::size_t i = 0; i < base.requests.size(); ++i) {
    EXPECT_EQ(noisy.requests[i].hint_set, base.requests[i].hint_set);
    EXPECT_EQ(noisy.hints->Get(noisy.requests[i].hint_set),
              base.hints->Get(base.requests[i].hint_set));
  }
}

// Regression: with num_types <= 0 the result used to share the source
// trace's HintRegistry, so interning through one trace mutated the
// other. The registries must be independent.
TEST(InjectNoiseHintsTest, ZeroTypesDoesNotAliasRegistry) {
  const Trace base = TwoHintTrace("base", 0);
  const std::size_t base_sets = base.hints->size();
  Trace noisy = InjectNoiseHints(base, 0, 10, 1.0, 99);
  const HintSetId added = noisy.hints->Intern(HintVector{7, {42, 43}});
  EXPECT_EQ(added, base_sets);  // appended to the copy...
  EXPECT_EQ(noisy.hints->size(), base_sets + 1);
  EXPECT_EQ(base.hints->size(), base_sets);  // ...not to the source
  // And vice versa: interning through the source leaves the copy alone.
  base.hints->Intern(HintVector{9, {77}});
  EXPECT_EQ(noisy.hints->size(), base_sets + 1);
}

TEST(InjectNoiseHintsTest, AppendsAttributesAndMultipliesHintSets) {
  const Trace base = TwoHintTrace("base", 0);
  const Trace noisy = InjectNoiseHints(base, 2, 10, 1.0, 99);
  ASSERT_EQ(noisy.requests.size(), base.requests.size());
  EXPECT_GE(noisy.hints->size(), base.hints->size());
  for (std::size_t i = 0; i < base.requests.size(); ++i) {
    const HintVector& orig = base.hints->Get(base.requests[i].hint_set);
    const HintVector& got = noisy.hints->Get(noisy.requests[i].hint_set);
    ASSERT_EQ(got.attrs.size(), orig.attrs.size() + 2);
    for (std::size_t a = 0; a < orig.attrs.size(); ++a) {
      EXPECT_EQ(got.attrs[a], orig.attrs[a]);  // prefix preserved
    }
    // Pages and ops are untouched.
    EXPECT_EQ(noisy.requests[i].page, base.requests[i].page);
    EXPECT_EQ(noisy.requests[i].op, base.requests[i].op);
  }
}

TEST(InjectNoiseHintsTest, DeterministicInSeed) {
  const Trace base = TwoHintTrace("base", 0);
  const Trace n1 = InjectNoiseHints(base, 3, 10, 1.0, 1234);
  const Trace n2 = InjectNoiseHints(base, 3, 10, 1.0, 1234);
  const Trace n3 = InjectNoiseHints(base, 3, 10, 1.0, 4321);
  ASSERT_EQ(n1.requests.size(), n2.requests.size());
  bool any_difference_to_n3 = false;
  for (std::size_t i = 0; i < n1.requests.size(); ++i) {
    EXPECT_EQ(n1.hints->Get(n1.requests[i].hint_set),
              n2.hints->Get(n2.requests[i].hint_set));
    any_difference_to_n3 |=
        !(n1.hints->Get(n1.requests[i].hint_set) ==
          n3.hints->Get(n3.requests[i].hint_set));
  }
  EXPECT_TRUE(any_difference_to_n3) << "different seeds, same noise?";
}

TEST(InterleaveTest, RoundRobinWithClientTagging) {
  const Trace t0 = TwoHintTrace("t0", 0);
  const Trace t1 = TwoHintTrace("t1", 100);
  const Trace merged = Interleave("merged", {&t0, &t1});
  ASSERT_EQ(merged.size(), t0.size() + t1.size());
  EXPECT_EQ(merged.name, "merged");
  // Round-robin: even positions client 0, odd positions client 1 (the
  // sources have equal length).
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged.requests[i].client, i % 2 == 0 ? 0 : 1);
  }
  // Hint vectors carry the source client id, so identical attribute
  // vectors from different clients stay distinct hint sets.
  std::set<HintSetId> client0_hints, client1_hints;
  for (const Request& r : merged.requests) {
    const HintVector& v = merged.hints->Get(r.hint_set);
    EXPECT_EQ(v.client, r.client);
    (r.client == 0 ? client0_hints : client1_hints).insert(r.hint_set);
  }
  for (HintSetId h : client0_hints) {
    EXPECT_EQ(client1_hints.count(h), 0u);
  }
}

TEST(InterleaveTest, UnevenSourcesDrainCompletely) {
  Trace small = TwoHintTrace("small", 0);
  small.requests.resize(2);
  const Trace big = TwoHintTrace("big", 50);
  const Trace merged = Interleave("m", {&small, &big});
  EXPECT_EQ(merged.size(), 2 + big.size());
  // Tail of the merge is all client 1.
  for (std::size_t i = 4; i < merged.size(); ++i) {
    EXPECT_EQ(merged.requests[i].client, 1);
  }
}

TEST(InterleaveTest, EmptySourceListYieldsEmptyTrace) {
  const Trace merged = Interleave("empty", {});
  EXPECT_EQ(merged.size(), 0u);
  EXPECT_EQ(merged.hints->size(), 0u);
  EXPECT_EQ(merged.name, "empty");
}

TEST(InterleaveTest, ZeroLengthSourceContributesNothingButKeepsIndices) {
  Trace empty;
  empty.name = "zero";
  const Trace full = TwoHintTrace("full", 10);
  const Trace merged = Interleave("m", {&empty, &full});
  ASSERT_EQ(merged.size(), full.size());
  // The zero-length source still occupies client slot 0, so every
  // surviving request is tagged with its source index 1 and the
  // original order of the non-empty source is preserved.
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged.requests[i].client, 1);
    EXPECT_EQ(merged.requests[i].page, full.requests[i].page);
  }
}

TEST(InterleaveTest, HeavilyUnequalLengthsKeepRoundRobinTailOrder) {
  Trace one = TwoHintTrace("one", 0);
  one.requests.resize(1);
  const Trace five = TwoHintTrace("five", 200);  // 6 requests
  const Trace merged = Interleave("m", {&one, &five});
  ASSERT_EQ(merged.size(), 1 + five.size());
  // Round 1 takes one request from each source; after the short source
  // is exhausted every later round takes only from the long one, in
  // its original order.
  EXPECT_EQ(merged.requests[0].client, 0);
  EXPECT_EQ(merged.requests[0].page, one.requests[0].page);
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_EQ(merged.requests[i].client, 1);
    EXPECT_EQ(merged.requests[i].page, five.requests[i - 1].page);
  }
}

}  // namespace
}  // namespace clic
