// Equivalence + property suite for adaptive CLIC windowing
// (core/clic.{h,cc} "Adaptive windowing" in DESIGN.md). Four pins:
//   (a) adaptive_window=off and churn_threshold=0 are bit-identical to
//       the fixed-window policy (decision digests over the Fig6 grid);
//   (b) adaptive decisions are identical across AccessBatch sizes,
//       including an early close landing mid-batch;
//   (c) same-seed scenario replay is bit-identical, different seeds
//       are not;
//   (d) the min_window/max_window bounds are never violated — every
//       close-to-close delta lies in [min_window, max_window].
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/clic.h"
#include "sweep/sweep.h"
#include "workload/scenario.h"
#include "workload/trace_factory.h"

namespace clic {
namespace {

/// A trace whose working set jumps to a disjoint page range every
/// `phase_len` requests — the shape the churn trigger exists for. Hint
/// sets partition the page space, so a phase shift moves the live
/// re-reference mass to hint sets the committed ranking never saw.
Trace PhasedTrace(std::uint64_t seed, std::size_t n, std::size_t phase_len) {
  Trace trace;
  trace.name = "adaptive_phased";
  Rng rng(seed);
  ZipfGenerator zipf(400, 0.7);
  std::vector<HintSetId> hints;
  for (std::uint32_t i = 0; i < 16; ++i) {
    hints.push_back(trace.hints->Intern(
        HintVector{static_cast<ClientId>(i % 2), {i, i % 4}}));
  }
  trace.requests.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t phase = i / phase_len;
    Request r;
    r.page = phase * 1'000 + zipf(rng);
    r.hint_set = hints[(r.page / 100) % hints.size()];
    r.client = static_cast<ClientId>(r.page % 2);
    if (rng.Chance(0.2)) r.op = OpType::kWrite;
    trace.requests.push_back(r);
  }
  trace.CacheMaxClient();
  return trace;
}

std::vector<std::uint8_t> ScalarDecisions(ClicPolicy& policy,
                                          const Trace& trace) {
  std::vector<std::uint8_t> out;
  out.reserve(trace.size());
  SeqNum seq = 0;
  for (const Request& r : trace.requests) {
    out.push_back(policy.Access(r, seq++) ? 1 : 0);
  }
  return out;
}

std::vector<std::uint8_t> BatchedDecisions(ClicPolicy& policy,
                                           const Trace& trace,
                                           std::size_t batch) {
  std::vector<std::uint8_t> out(trace.size());
  std::size_t pos = 0;
  while (pos < trace.size()) {
    const std::size_t count = std::min(batch, trace.size() - pos);
    policy.AccessBatch(trace.requests.data() + pos, pos, count,
                       out.data() + pos);
    pos += count;
  }
  return out;
}

long FirstDivergence(const std::vector<std::uint8_t>& a,
                     const std::vector<std::uint8_t>& b) {
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    if (a[i] != b[i]) return static_cast<long>(i);
  }
  return a.size() == b.size() ? -1
                              : static_cast<long>(std::min(a.size(),
                                                           b.size()));
}

/// FNV-1a over the decision bits plus the close count — two replays
/// with equal digests made the same hit/miss decision at every request
/// AND closed the same number of windows.
std::uint64_t DecisionDigest(const std::vector<std::uint8_t>& decisions,
                             std::uint64_t windows_completed) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (std::uint8_t d : decisions) mix(d);
  mix(windows_completed);
  return h;
}

std::uint64_t RunDigest(const Trace& trace, std::size_t cache_pages,
                        const ClicOptions& options) {
  ClicPolicy policy(cache_pages, options);
  const std::vector<std::uint8_t> decisions = ScalarDecisions(policy, trace);
  return DecisionDigest(decisions, policy.windows_completed());
}

// (a) Off and threshold=0 are the fixed-window policy, bit for bit,
// across the Figure 6 grid (every DB2 TPC-C trace x cache size), at
// both the paper window and a small window that closes many times
// inside the capped replay.
TEST(AdaptiveWindowTest, OffAndZeroThresholdMatchFixedOverFig6Grid) {
  const auto spec = sweep::FigureSpec("6");
  ASSERT_TRUE(spec.has_value());
  constexpr std::uint64_t kCap = 20'000;  // capped: decisions, not ratios
  for (const std::string& name : spec->traces) {
    const Trace trace = MakeNamedTrace(name, kCap);
    for (const std::size_t cache : spec->cache_sizes) {
      for (const std::uint64_t window : {std::uint64_t{100'000},
                                         std::uint64_t{2'000}}) {
        ClicOptions fixed;
        fixed.window = window;
        const std::uint64_t expected = RunDigest(trace, cache, fixed);

        // adaptive_window=false: the churn knobs must all be inert.
        ClicOptions off = fixed;
        off.adaptive_window = false;
        off.churn_threshold = 0.9;
        off.min_window = 7;
        off.max_window = 123'456;
        EXPECT_EQ(RunDigest(trace, cache, off), expected)
            << name << " cache=" << cache << " window=" << window;

        // churn_threshold=0: adaptive mode on, but no checkpoint ever
        // arms and the ceiling defaults to the window, so the replay
        // is the fixed-window replay.
        ClicOptions zero = fixed;
        zero.adaptive_window = true;
        zero.churn_threshold = 0.0;
        EXPECT_EQ(RunDigest(trace, cache, zero), expected)
            << name << " cache=" << cache << " window=" << window;
      }
    }
  }
}

ClicOptions ChurnyOptions() {
  ClicOptions options;
  options.window = 2'000;
  options.adaptive_window = true;
  options.min_window = 250;
  return options;  // threshold 0.5, ceiling = window
}

// (b) Batch == scalar for adaptive mode, across batch sizes including
// whole-trace, on a trace that actually fires the churn trigger (so an
// early close lands mid-batch for every size > 1).
TEST(AdaptiveWindowTest, BatchSizesIdenticalIncludingMidBatchEarlyClose) {
  const Trace trace = PhasedTrace(0xADA17, 12'000, 3'000);
  ClicPolicy scalar_policy(300, ChurnyOptions());
  const std::vector<std::uint8_t> expected =
      ScalarDecisions(scalar_policy, trace);
  ASSERT_GT(scalar_policy.early_closes(), 0u)
      << "trace never fired the churn trigger — the mid-batch early "
         "close property was not exercised";
  for (const std::size_t batch :
       {std::size_t{1}, std::size_t{7}, std::size_t{256}, trace.size()}) {
    ClicPolicy batched_policy(300, ChurnyOptions());
    const std::vector<std::uint8_t> got =
        BatchedDecisions(batched_policy, trace, batch);
    EXPECT_EQ(FirstDivergence(expected, got), -1)
        << "adaptive run diverged at request "
        << FirstDivergence(expected, got) << " with batch size " << batch;
    EXPECT_EQ(batched_policy.windows_completed(),
              scalar_policy.windows_completed())
        << "batch size " << batch;
    EXPECT_EQ(batched_policy.early_closes(), scalar_policy.early_closes())
        << "batch size " << batch;
  }
}

// (c) The whole adaptive pipeline is a pure function of the request
// stream: the same scenario seed replays bit-identically; a different
// seed produces a different stream and different decisions.
TEST(AdaptiveWindowTest, SameSeedReplayBitIdenticalDifferentSeedsDiffer) {
  const std::string base =
      "phase:pages=20000,hot-pages=2500,phase-len=4000,buffer=200,n=24000";
  std::string error;
  const auto spec1 = ResolveWorkload(base + ",seed=1", &error);
  ASSERT_TRUE(spec1.has_value()) << error;
  const auto spec2 = ResolveWorkload(base + ",seed=2", &error);
  ASSERT_TRUE(spec2.has_value()) << error;

  ClicOptions options = ChurnyOptions();
  const Trace trace_a = MakeScenarioTrace(*spec1);
  const Trace trace_b = MakeScenarioTrace(*spec1);
  const Trace trace_c = MakeScenarioTrace(*spec2);
  const std::uint64_t digest_a = RunDigest(trace_a, 1'000, options);
  const std::uint64_t digest_b = RunDigest(trace_b, 1'000, options);
  const std::uint64_t digest_c = RunDigest(trace_c, 1'000, options);
  EXPECT_EQ(digest_a, digest_b) << "same seed must replay bit-identically";
  EXPECT_NE(digest_a, digest_c) << "different seeds produced identical "
                                   "decision streams";
}

// (d) Window-length bounds. Every window close advances
// windows_completed() by exactly 1 at a request boundary, so the seq
// deltas between increments are the realized window lengths: each must
// lie in [min_window, max_window], early closes included (the first
// checkpoint of a window only arms at start + min_window).
TEST(AdaptiveWindowTest, WindowBoundsNeverViolated) {
  const Trace trace = PhasedTrace(0xB0C4D, 16'000, 2'500);
  ClicOptions options;
  options.window = 2'000;
  options.adaptive_window = true;
  options.min_window = 300;
  options.max_window = 4'000;
  ClicPolicy policy(300, options);
  SeqNum seq = 0;
  SeqNum last_close = 0;
  std::uint64_t last_windows = 0;
  for (const Request& r : trace.requests) {
    policy.Access(r, seq);
    const std::uint64_t w = policy.windows_completed();
    ASSERT_LE(w, last_windows + 1) << "two closes inside one access";
    if (w != last_windows) {
      // The close ran at this seq's boundary (contiguous stream), so
      // the delta from the previous close is the realized length.
      const std::uint64_t length = seq - last_close;
      EXPECT_GE(length, options.min_window) << "close at seq " << seq;
      EXPECT_LE(length, options.max_window) << "close at seq " << seq;
      last_close = seq;
      last_windows = w;
    }
    EXPECT_GE(policy.effective_window(), options.min_window);
    EXPECT_LE(policy.effective_window(), options.max_window);
    ++seq;
  }
  ASSERT_GT(policy.early_closes(), 0u)
      << "bounds were never stressed by an early close";
  ASSERT_GT(policy.windows_completed(), 4u);
}

// Headline regression pin (bench_scenarios-backed, same presets and
// Simulate machinery): with the paper's W=1e5/r=1 untouched, adaptive
// windowing must recover the phase-abrupt hit ratio the fixed window
// loses, and must not buy that with a regression on a stable workload
// — on zipf-hot the churn trigger never fires and the replay stays
// within 2% of fixed (measured: bit-identical).
TEST(AdaptiveWindowTest, PhaseAbruptRecoveryWithoutZipfHotRegression) {
  const auto abrupt_spec = ResolveWorkload("phase-abrupt");
  const auto zipf_spec = ResolveWorkload("zipf-hot");
  ASSERT_TRUE(abrupt_spec.has_value());
  ASSERT_TRUE(zipf_spec.has_value());
  const Trace abrupt = MakeScenarioTrace(*abrupt_spec);
  const Trace zipf = MakeScenarioTrace(*zipf_spec);
  constexpr std::size_t kCachePages = 12'000;

  const ClicOptions fixed;  // paper defaults: W=1e5, r=1
  ClicOptions adaptive = fixed;
  adaptive.adaptive_window = true;

  const auto ratio = [&](const Trace& trace, const ClicOptions& options) {
    ClicPolicy policy(kCachePages, options);
    return Simulate(trace, policy).total.ReadHitRatio();
  };

  const double fixed_abrupt = ratio(abrupt, fixed);
  const double adaptive_abrupt = ratio(abrupt, adaptive);
  EXPECT_LE(fixed_abrupt, 0.30)
      << "fixed-window phase-abrupt improved past the documented 0.27 — "
         "update DESIGN.md and this pin together";
  EXPECT_GE(adaptive_abrupt, 0.45)
      << "adaptive CLIC lost the phase-abrupt recovery (fixed scores "
      << fixed_abrupt << ")";

  const double fixed_zipf = ratio(zipf, fixed);
  const double adaptive_zipf = ratio(zipf, adaptive);
  EXPECT_NEAR(adaptive_zipf, fixed_zipf, 0.02 * fixed_zipf)
      << "adaptive mode regressed a workload that never shifts";
}

}  // namespace
}  // namespace clic
