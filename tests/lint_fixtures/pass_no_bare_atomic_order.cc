// clic-lint-fixture: server/example.cc
// Passing counterpart: every atomic op names its ordering, including a
// call whose argument list spans lines.
#include <atomic>

int ExplicitOrders(std::atomic<int>& a) {
  a.store(1, std::memory_order_release);
  a.fetch_add(2, std::memory_order_relaxed);
  int expected = 3;
  a.compare_exchange_strong(expected, 4,
                            std::memory_order_acq_rel,
                            std::memory_order_acquire);
  return a.load(std::memory_order_acquire);
}
