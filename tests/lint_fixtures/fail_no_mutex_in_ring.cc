// clic-lint-fixture: common/spsc_ring.h
// The ring is a hard-forbid scope: even an allow region must NOT
// suppress a mutex there — the data path stays lock-free
// unconditionally, so this fixture must still fail.
#include <mutex>

// clic-lint: begin-allow(no-mutex-data-path) reason=this suppression must be ignored in the ring
static std::mutex mu;
// clic-lint: end-allow(no-mutex-data-path)
