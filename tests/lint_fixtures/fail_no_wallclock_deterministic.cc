// clic-lint-fixture: core/example.cc
// Minimal failing snippet for no-wallclock-deterministic: replay code
// reading the wall clock and ambient randomness.
#include <chrono>
#include <cstdlib>

long Now() {
  std::srand(42);
  return std::chrono::steady_clock::now().time_since_epoch().count() +
         std::rand();
}
