// clic-lint-fixture: server/example.cc
// Passing counterpart: the same mutex use inside an annotated
// control-path region (and the include line, which is always exempt).
#include <mutex>

void ControlPath() {
  // clic-lint: begin-allow(no-mutex-data-path) reason=fixture control path; not reachable from a drain
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  // clic-lint: end-allow(no-mutex-data-path)
}
