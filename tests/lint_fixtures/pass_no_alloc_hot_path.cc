// clic-lint-fixture: policies/example.cc
// Passing counterpart: the hot-path function only moves pre-allocated
// state; the allocation happens in the unmarked setup function, and a
// reasoned same-line allow covers a deliberate exception.
#include <vector>

std::vector<int> MakeArena(std::size_t n) {
  std::vector<int> arena;
  arena.reserve(n);  // unmarked function: growth is fine here
  arena.resize(n, 0);
  return arena;
}

// clic-lint: hot-path
bool Access(std::vector<int>& arena, std::vector<int>& log, int page) {
  arena[static_cast<std::size_t>(page) % arena.size()] = page;
  log.push_back(page);  // clic-lint: allow(no-alloc-hot-path) reason=fixture exception with a written reason
  return true;
}
