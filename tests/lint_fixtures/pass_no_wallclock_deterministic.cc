// clic-lint-fixture: core/example.cc
// Passing counterpart: deterministic code is a pure function of the
// trace and a seeded RNG; names that merely contain clock-ish
// substrings (time_point, rand_state, wall_seconds) must not trip the
// tokenizer.
#include <cstdint>

struct SeededRng {
  std::uint64_t state;
  std::uint64_t Next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state;
  }
};

double WallSecondsColumn(double wall_seconds) {
  // "steady_clock" in a comment or string is fine: the rule scans code.
  const char* label = "steady_clock";
  return label != nullptr ? wall_seconds : 0.0;
}
