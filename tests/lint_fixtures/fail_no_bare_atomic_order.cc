// clic-lint-fixture: server/example.cc
// Minimal failing snippet for no-bare-atomic-order: atomic operations
// relying on the implicit seq_cst default.
#include <atomic>

int BareOrders(std::atomic<int>& a) {
  a.store(1);
  a.fetch_add(2);
  return a.load();
}
