// clic-lint-fixture: server/example.cc
// Minimal failing snippet for no-mutex-data-path: a bare std::mutex in
// server/ code with no control-path allow region.
#include <mutex>

void DrainPath() {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
}
