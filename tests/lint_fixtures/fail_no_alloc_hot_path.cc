// clic-lint-fixture: policies/example.cc
// Minimal failing snippet for no-alloc-hot-path: container growth
// inside a function marked hot-path.
#include <vector>

// clic-lint: hot-path
bool Access(std::vector<int>& history, int page) {
  history.push_back(page);
  return new int(page) != nullptr;
}
