// SpscRing: capacity validation, full/empty boundaries, FIFO order
// across wraparound, and a real single-producer/single-consumer stress
// run — the test the TSan CI job leans on to certify the server's
// lock-free data path (common/spsc_ring.h).
#include "common/spsc_ring.h"

#include <cstdint>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace clic {
namespace {

TEST(SpscRingTest, NonPowerOfTwoCapacityThrowsNamingTheValue) {
  for (const std::size_t bad : {std::size_t{0}, std::size_t{1},
                                std::size_t{3}, std::size_t{6},
                                std::size_t{96}, std::size_t{100}}) {
    try {
      SpscRing<int> ring(bad);
      FAIL() << "capacity " << bad << " must throw";
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(std::to_string(bad)), std::string::npos)
          << "the error must name the offending capacity: " << what;
      EXPECT_NE(what.find("power of two"), std::string::npos) << what;
    }
  }
  for (const std::size_t good :
       {std::size_t{2}, std::size_t{4}, std::size_t{256}, std::size_t{1024}}) {
    EXPECT_NO_THROW(SpscRing<int>{good});
  }
}

TEST(SpscRingTest, FullAndEmptyBoundariesAtMinimumCapacity) {
  SpscRing<int> ring(2);
  EXPECT_TRUE(ring.Empty());
  EXPECT_EQ(ring.FreeSlots(), 2u);
  int out = 0;
  EXPECT_FALSE(ring.TryPop(&out)) << "empty ring must not pop";
  EXPECT_TRUE(ring.TryPush(10));
  EXPECT_TRUE(ring.TryPush(11));
  EXPECT_EQ(ring.FreeSlots(), 0u);
  EXPECT_FALSE(ring.TryPush(12)) << "full ring must refuse a push";
  EXPECT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, 10);
  EXPECT_TRUE(ring.TryPush(12)) << "one pop frees exactly one slot";
  EXPECT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, 11);
  EXPECT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, 12);
  EXPECT_TRUE(ring.Empty());
  EXPECT_FALSE(ring.TryPop(&out));
}

TEST(SpscRingTest, FifoOrderAcrossManyWraparounds) {
  // Capacity 8, 10'000 values: the cursors wrap the slot array >1000
  // times; any masking or cached-cursor bug breaks the sequence.
  SpscRing<std::uint64_t> ring(8);
  std::uint64_t next_push = 0, next_pop = 0;
  const std::uint64_t total = 10'000;
  while (next_pop < total) {
    while (next_push < total && ring.TryPush(next_push)) ++next_push;
    std::uint64_t out = 0;
    while (ring.TryPop(&out)) {
      EXPECT_EQ(out, next_pop);
      ++next_pop;
    }
  }
  EXPECT_TRUE(ring.Empty());
  EXPECT_EQ(ring.FreeSlots(), 8u);
}

// The TSan certification run: one real producer thread against one real
// consumer thread, small capacity so both the full and the empty edge
// (and the cached-cursor refresh on each side) are hit constantly.
// Values are strictly increasing, so the consumer proves FIFO and
// exactly-once delivery, and TSan proves the acquire/release pairs
// cover every slot access.
TEST(SpscRingTest, ConcurrentStressPreservesFifoExactlyOnce) {
  SpscRing<std::uint64_t> ring(16);
  const std::uint64_t total = 200'000;
  std::thread producer([&ring] {
    for (std::uint64_t v = 0; v < total;) {
      if (ring.TryPush(v)) {
        ++v;
      } else {
        std::this_thread::yield();
      }
    }
  });
  std::uint64_t expected = 0;
  while (expected < total) {
    std::uint64_t out = 0;
    if (ring.TryPop(&out)) {
      ASSERT_EQ(out, expected) << "FIFO order broken under concurrency";
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.Empty());
  EXPECT_EQ(expected, total);
}

TEST(SpscRingTest, PointerPayloadRoundTrips) {
  // The server pushes Batch* through its rings; make sure a pointer
  // payload (trivially copyable, but worth pinning) round-trips intact.
  SpscRing<int*> ring(4);
  int a = 1, b = 2;
  EXPECT_TRUE(ring.TryPush(&a));
  EXPECT_TRUE(ring.TryPush(&b));
  int* out = nullptr;
  EXPECT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, &a);
  EXPECT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, &b);
}

}  // namespace
}  // namespace clic
