#include "sweep/trace_cache.h"

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>
#include <utime.h>

#include <cstdio>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

#include "workload/trace_factory.h"

namespace clic::sweep {
namespace {

constexpr std::uint64_t kCap = 1500;  // keep generation sub-second

std::string FreshDir(const std::string& tag) {
  // Distinct directory per (test, process) so caches never observe each
  // other's files — also across repeated runs from different build
  // trees; the cache itself creates the directory.
  return ::testing::TempDir() + "clic_trace_cache_test_" + tag + "_" +
         std::to_string(::getpid());
}

TEST(TraceCacheTest, ConcurrentGetOfSameTraceYieldsOneInstance) {
  TraceCache cache(FreshDir("same"), kCap);
  constexpr int kThreads = 8;
  std::vector<const Trace*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &seen, t] {
      seen[t] = &cache.Get("DB2_C60");
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_NE(seen[t], nullptr);
    EXPECT_EQ(seen[t], seen[0]) << "thread " << t << " got a different copy";
  }
  EXPECT_EQ(seen[0]->name, "DB2_C60");
  EXPECT_LE(seen[0]->size(), kCap);
  EXPECT_GT(seen[0]->size(), 0u);
}

TEST(TraceCacheTest, ConcurrentGetOfDistinctTracesIsCorrect) {
  TraceCache cache(FreshDir("distinct"), kCap);
  const std::vector<std::string> names = {"DB2_C60", "DB2_C300", "MY_H65",
                                          "MY_H98"};
  std::vector<const Trace*> seen(names.size(), nullptr);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < names.size(); ++i) {
    threads.emplace_back([&cache, &names, &seen, i] {
      seen[i] = &cache.Get(names[i]);
    });
  }
  for (std::thread& t : threads) t.join();
  for (std::size_t i = 0; i < names.size(); ++i) {
    ASSERT_NE(seen[i], nullptr);
    EXPECT_EQ(seen[i]->name, names[i]);
    for (std::size_t j = 0; j < i; ++j) {
      EXPECT_NE(seen[i], seen[j]);
    }
  }
}

TEST(TraceCacheTest, RepeatGetReturnsSameReferenceWithoutRegeneration) {
  TraceCache cache(FreshDir("repeat"), kCap);
  const Trace& first = cache.Get("DB2_H80");
  const Trace& second = cache.Get("DB2_H80");
  EXPECT_EQ(&first, &second);
}

TEST(TraceCacheTest, SecondCacheInstanceLoadsIdenticalTraceFromDisk) {
  const std::string dir = FreshDir("disk");
  TraceCache writer(dir, kCap);
  const Trace& generated = writer.Get("MY_H65");

  // The on-disk file exists under the versioned cache name.
  const std::string path = dir + "/MY_H65_" + std::to_string(kCap) + "_g" +
                           std::to_string(kTraceGeneratorVersion) + ".trc";
  struct stat st{};
  ASSERT_EQ(::stat(path.c_str(), &st), 0) << path;
  EXPECT_GT(st.st_size, 0);

  TraceCache reader(dir, kCap);
  const Trace& loaded = reader.Get("MY_H65");
  ASSERT_EQ(loaded.size(), generated.size());
  ASSERT_EQ(loaded.hints->size(), generated.hints->size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded.requests[i].page, generated.requests[i].page);
    EXPECT_EQ(loaded.requests[i].hint_set, generated.requests[i].hint_set);
    EXPECT_EQ(loaded.requests[i].client, generated.requests[i].client);
    EXPECT_EQ(loaded.requests[i].op, generated.requests[i].op);
    EXPECT_EQ(loaded.requests[i].write_kind, generated.requests[i].write_kind);
  }
}

TEST(TraceCacheTest, CollectsStaleTempFilesButSparesFreshOnes) {
  const std::string dir = FreshDir("tmpclean");
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  auto touch = [&](const std::string& name) {
    std::FILE* f = std::fopen((dir + "/" + name).c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("orphan", f);
    std::fclose(f);
  };
  touch("DB2_C60_1500_g1.trc.tmp.123.0");  // crashed saver, hours old
  touch("MY_H65_1500_g1.trc.tmp.456.2");   // in-flight saver, fresh
  const std::time_t two_hours_ago = std::time(nullptr) - 7200;
  const struct utimbuf old_times = {two_hours_ago, two_hours_ago};
  ASSERT_EQ(
      ::utime((dir + "/DB2_C60_1500_g1.trc.tmp.123.0").c_str(), &old_times),
      0);

  TraceCache cache(dir, kCap);
  cache.Get("DB2_C60");  // first Fill triggers the cleanup sweep

  struct stat st{};
  EXPECT_NE(::stat((dir + "/DB2_C60_1500_g1.trc.tmp.123.0").c_str(), &st), 0)
      << "stale temp file should have been collected";
  EXPECT_EQ(::stat((dir + "/MY_H65_1500_g1.trc.tmp.456.2").c_str(), &st), 0)
      << "fresh temp file must not be disturbed";
}

// The age threshold is the whole point of the collector: a *live*
// racing writer's temp file (another bench process mid-SaveTrace) is
// seconds old and must survive; only genuinely orphaned files go.
TEST(TraceCacheTest, CollectStaleTempFilesHonorsTheAgeThreshold) {
  const std::string dir = FreshDir("tmpage");
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  auto touch_with_age = [&](const std::string& name, std::time_t age) {
    const std::string path = dir + "/" + name;
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("x", f);
    std::fclose(f);
    if (age > 0) {
      const std::time_t then = std::time(nullptr) - age;
      const struct utimbuf times = {then, then};
      ASSERT_EQ(::utime(path.c_str(), &times), 0);
    }
  };
  touch_with_age("a.trc.tmp.1.0", 0);  // just written: a live writer
  touch_with_age("b.trc.tmp.2.0", kStaleTempFileAgeSeconds - 30);  // young
  touch_with_age("c.trc.tmp.3.0", kStaleTempFileAgeSeconds + 60);  // orphan
  touch_with_age("d_not_a_temp.trc", kStaleTempFileAgeSeconds + 60);

  EXPECT_EQ(CollectStaleTempFiles(dir), 1u) << "only the old orphan goes";

  struct stat st{};
  EXPECT_EQ(::stat((dir + "/a.trc.tmp.1.0").c_str(), &st), 0);
  EXPECT_EQ(::stat((dir + "/b.trc.tmp.2.0").c_str(), &st), 0);
  EXPECT_NE(::stat((dir + "/c.trc.tmp.3.0").c_str(), &st), 0);
  // Non-temp files are never candidates, however old.
  EXPECT_EQ(::stat((dir + "/d_not_a_temp.trc").c_str(), &st), 0);

  // Idempotent: nothing stale remains.
  EXPECT_EQ(CollectStaleTempFiles(dir), 0u);
  EXPECT_EQ(CollectStaleTempFiles(dir + "/no_such_dir"), 0u);
}

TEST(TraceCacheDeathTest, UnknownTraceNameExits) {
  TraceCache cache(FreshDir("unknown"), kCap);
  EXPECT_EXIT(cache.Get("NO_SUCH_TRACE"), ::testing::ExitedWithCode(1),
              "unknown workload");
}

TEST(TraceCacheTest, ResolvesScenarioPresetsAndInlineSpecs) {
  TraceCache cache(FreshDir("scenario"), kCap);
  const Trace& preset = cache.Get("scan-pollute");
  EXPECT_EQ(preset.name, "scan-pollute");
  EXPECT_EQ(preset.size(), kCap);  // capped like the named traces
  const std::string spec = "zipf:pages=20000,buffer=200,n=1000";
  const Trace& inline_trace = cache.Get(spec);
  EXPECT_EQ(inline_trace.name, spec);
  EXPECT_EQ(inline_trace.size(), 1'000u);  // below the cap: spec length
  // Second Get returns the same cached instance.
  EXPECT_EQ(&cache.Get(spec), &inline_trace);
}

}  // namespace
}  // namespace clic::sweep
