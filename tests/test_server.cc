#include "server/cache_server.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/trace.h"
#include "sim/policy_factory.h"
#include "sim/simulator.h"

namespace clic::server {
namespace {

// Deterministic in-memory workload: several clients, a skewed page
// pattern with ~20% writes — the same shape test_sweep uses, kept
// local so the server tests need no disk or generation.
Trace MakeSynthetic(const std::string& name, std::uint32_t salt,
                    std::size_t n, std::size_t num_clients = 2) {
  Trace trace;
  trace.name = name;
  std::vector<HintSetId> hints;
  for (std::uint32_t c = 0; c < num_clients; ++c) {
    hints.push_back(trace.hints->Intern(
        HintVector{static_cast<ClientId>(c), {c + 1, 100 + salt + c}}));
  }
  trace.requests.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Request r;
    r.page = static_cast<PageId>(
        i % 3 == 0 ? (i * 7919 + salt) % 61 : (i * 104729 + salt) % 509);
    r.client = static_cast<ClientId>(i % num_clients);
    r.hint_set = hints[r.client];
    if (i % 5 == 0) {
      r.op = OpType::kWrite;
      r.write_kind =
          i % 10 == 0 ? WriteKind::kRecovery : WriteKind::kReplacement;
    }
    trace.requests.push_back(r);
  }
  return trace;
}

void ExpectSameStats(const CacheStats& a, const CacheStats& b) {
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.read_hits, b.read_hits);
  EXPECT_EQ(a.write_hits, b.write_hits);
}

TEST(ShardOfTest, StableAndInRange) {
  for (std::size_t shards : {1u, 2u, 4u, 7u}) {
    for (PageId page = 0; page < 1000; ++page) {
      const std::size_t s = ShardOf(page, shards);
      EXPECT_LT(s, shards);
      EXPECT_EQ(s, ShardOf(page, shards)) << "must be a pure function";
    }
  }
  // All pages land on the single shard.
  EXPECT_EQ(ShardOf(12345, 1), 0u);
}

TEST(ShardOfTest, SpreadsPagesAcrossShards) {
  std::set<std::size_t> seen;
  for (PageId page = 0; page < 64; ++page) seen.insert(ShardOf(page, 4));
  EXPECT_EQ(seen.size(), 4u) << "64 pages should touch all 4 shards";
}

TEST(PartitionByShardTest, PreservesOrderAndCoversEveryRequest) {
  const Trace trace = MakeSynthetic("part", 5, 600);
  const std::vector<Trace> parts = PartitionByShard(trace, 4);
  ASSERT_EQ(parts.size(), 4u);
  std::size_t total = 0;
  for (std::size_t s = 0; s < parts.size(); ++s) {
    total += parts[s].size();
    for (const Request& r : parts[s].requests) {
      EXPECT_EQ(ShardOf(r.page, 4), s);
    }
    // Registry is a deep copy with identical contents: ids unchanged.
    EXPECT_NE(parts[s].hints.get(), trace.hints.get());
    ASSERT_EQ(parts[s].hints->size(), trace.hints->size());
  }
  EXPECT_EQ(total, trace.size());
  // Order within a shard is trace order: replaying the partition's
  // pages against a filtered scan of the original must line up.
  for (std::size_t s = 0; s < parts.size(); ++s) {
    std::size_t j = 0;
    for (const Request& r : trace.requests) {
      if (ShardOf(r.page, 4) != s) continue;
      ASSERT_LT(j, parts[s].size());
      EXPECT_EQ(parts[s].requests[j].page, r.page);
      EXPECT_EQ(parts[s].requests[j].client, r.client);
      ++j;
    }
    EXPECT_EQ(j, parts[s].size());
  }
}

// The acceptance criterion: deterministic serve is bit-identical to
// per-shard sequential Simulate() of the partitioned trace, for shard
// counts {1, 2, 4} and both LRU and CLIC, across client counts.
TEST(CacheServerTest, DeterministicModeMatchesPartitionedSimulate) {
  const Trace trace = MakeSynthetic("det", 11, 4000, 3);
  ClicOptions clic;
  clic.window = 500;
  clic.outqueue_per_page = 2.0;
  for (PolicyKind policy : {PolicyKind::kLru, PolicyKind::kClic}) {
    for (std::size_t shards : {1u, 2u, 4u}) {
      for (std::size_t clients : {1u, 3u}) {
        SCOPED_TRACE(std::string(PolicyName(policy)) + " shards=" +
                     std::to_string(shards) + " clients=" +
                     std::to_string(clients));
        ServerOptions options;
        options.shards = shards;
        options.cache_pages = 96;
        options.policy = policy;
        options.clic = clic;
        options.deterministic = true;
        LoadOptions load;
        load.clients = clients;
        load.batch_size = 17;  // odd size: batch boundaries land anywhere
        const ServeResult served = ServeTrace(trace, options, load);
        const SimResult expected = PartitionedSimulate(trace, options);
        ExpectSameStats(served.total, expected.total);
        ASSERT_EQ(served.per_client.size(), expected.per_client.size());
        for (const auto& [client, stats] : expected.per_client) {
          const auto it = served.per_client.find(client);
          ASSERT_NE(it, served.per_client.end()) << "client " << client;
          ExpectSameStats(it->second, stats);
        }
        EXPECT_EQ(served.requests, trace.size());
      }
    }
  }
}

TEST(CacheServerTest, DeterministicRunsAreRepeatable) {
  const Trace trace = MakeSynthetic("rep", 23, 3000);
  ServerOptions options;
  options.shards = 2;
  options.cache_pages = 64;
  options.policy = PolicyKind::kClic;
  options.clic.window = 400;
  options.deterministic = true;
  LoadOptions load;
  load.clients = 2;
  load.batch_size = 64;
  const ServeResult a = ServeTrace(trace, options, load);
  const ServeResult b = ServeTrace(trace, options, load);
  ExpectSameStats(a.total, b.total);
}

// Concurrent mode can interleave shard streams any way the scheduler
// likes, but it must never lose or duplicate a request, and per-client
// read/write *counts* (not hits) are order-independent.
TEST(CacheServerTest, ConcurrentModeAppliesEveryRequestExactlyOnce) {
  const Trace trace = MakeSynthetic("conc", 31, 6000, 4);
  ServerOptions options;
  options.shards = 4;
  options.cache_pages = 96;
  options.policy = PolicyKind::kLru;
  options.max_consumers = 3;
  LoadOptions load;
  load.clients = 4;
  load.batch_size = 33;
  const ServeResult served = ServeTrace(trace, options, load);
  EXPECT_EQ(served.requests, trace.size());
  // Request composition matches the trace exactly.
  std::uint64_t reads = 0, writes = 0;
  std::map<ClientId, std::uint64_t> per_client;
  for (const Request& r : trace.requests) {
    (r.op == OpType::kRead ? reads : writes) += 1;
    per_client[r.client] += 1;
  }
  EXPECT_EQ(served.total.reads, reads);
  EXPECT_EQ(served.total.writes, writes);
  ASSERT_EQ(served.per_client.size(), per_client.size());
  for (const auto& [client, count] : per_client) {
    const auto it = served.per_client.find(client);
    ASSERT_NE(it, served.per_client.end());
    EXPECT_EQ(it->second.reads + it->second.writes, count);
  }
  // Hits can differ from the sequential order but never exceed accesses.
  EXPECT_LE(served.total.read_hits, served.total.reads);
  EXPECT_LE(served.total.write_hits, served.total.writes);
  EXPECT_GE(served.throughput_rps, 0.0);
  EXPECT_LE(served.p50_us, served.p99_us);
}

TEST(CacheServerTest, MoreClientsThanRequestsAndOversizedBatches) {
  const Trace trace = MakeSynthetic("tiny", 41, 5);
  ServerOptions options;
  options.shards = 2;
  options.cache_pages = 8;
  options.deterministic = true;
  LoadOptions load;
  load.clients = 9;  // most clients get an empty chunk
  load.batch_size = 1000;
  const ServeResult served = ServeTrace(trace, options, load);
  EXPECT_EQ(served.requests, trace.size());
  const SimResult expected = PartitionedSimulate(trace, options);
  ExpectSameStats(served.total, expected.total);
}

// PartitionedSimulate is the shared ground truth for --verify and the
// determinism tests; its budget cap must mirror ServeTrace's.
TEST(PartitionedSimulateTest, HonorsRequestBudget) {
  const Trace trace = MakeSynthetic("budget", 7, 1000);
  ServerOptions options;
  options.shards = 2;
  options.cache_pages = 32;
  const SimResult capped = PartitionedSimulate(trace, options, 300);
  EXPECT_EQ(capped.total.reads + capped.total.writes, 300u);
  const SimResult full = PartitionedSimulate(trace, options);
  EXPECT_EQ(full.total.reads + full.total.writes, trace.size());
}

TEST(CacheServerTest, RejectsUnusableConfigurations) {
  const Trace trace = MakeSynthetic("bad", 1, 10);
  ServerOptions options;
  options.cache_pages = 8;
  LoadOptions load;

  ServerOptions opt_policy = options;
  opt_policy.policy = PolicyKind::kOpt;
  EXPECT_THROW(ServeTrace(trace, opt_policy, load), std::invalid_argument);

  ServerOptions no_shards = options;
  no_shards.shards = 0;
  EXPECT_THROW(ServeTrace(trace, no_shards, load), std::invalid_argument);

  LoadOptions no_clients = load;
  no_clients.clients = 0;
  EXPECT_THROW(ServeTrace(trace, options, no_clients), std::invalid_argument);

  LoadOptions no_batch = load;
  no_batch.batch_size = 0;
  EXPECT_THROW(ServeTrace(trace, options, no_batch), std::invalid_argument);

  ServerOptions det = options;
  det.deterministic = true;
  LoadOptions timed = load;
  timed.duration_seconds = 0.5;
  EXPECT_THROW(ServeTrace(trace, det, timed), std::invalid_argument);
}

// Ownership topology validation: a consumer that owns zero shards
// would idle forever, deterministic mode is defined as one consumer in
// strict client order, and the ring masks instead of dividing so its
// capacity must be a power of two.
TEST(CacheServerTopologyTest, RejectsImpossibleTopologies) {
  ServerOptions options;
  options.shards = 2;
  options.cache_pages = 8;

  ServerOptions too_many = options;
  too_many.consumers = 4;
  EXPECT_THROW(CacheServer(too_many, 1), std::invalid_argument);

  ServerOptions det_multi = options;
  det_multi.deterministic = true;
  det_multi.consumers = 2;
  EXPECT_THROW(CacheServer(det_multi, 1), std::invalid_argument);

  for (const std::size_t bad_ring : {std::size_t{0}, std::size_t{1},
                                     std::size_t{96}}) {
    ServerOptions bad = options;
    bad.ring_capacity = bad_ring;
    EXPECT_THROW(CacheServer(bad, 1), std::invalid_argument)
        << "ring_capacity=" << bad_ring;
  }
}

// OwnerOf is the whole concurrency argument: every shard has exactly
// one owner, stripe interleaves, block keeps each owner's shards
// contiguous, and both hand every consumer at least one shard.
TEST(CacheServerTopologyTest, OwnerOfPartitionsShardsExhaustively) {
  ServerOptions options;
  options.shards = 6;
  options.cache_pages = 48;
  for (ShardAssignment assignment :
       {ShardAssignment::kStripe, ShardAssignment::kBlock}) {
    for (unsigned consumers : {1u, 2u, 3u, 4u, 6u}) {
      SCOPED_TRACE(std::string(ShardAssignmentName(assignment)) +
                   " consumers=" + std::to_string(consumers));
      ServerOptions topo = options;
      topo.assignment = assignment;
      topo.consumers = consumers;
      CacheServer server(topo, 1);
      EXPECT_EQ(server.consumers(), consumers);
      std::map<std::uint32_t, std::vector<std::size_t>> owned;
      for (std::size_t s = 0; s < topo.shards; ++s) {
        const std::uint32_t owner = server.OwnerOf(s);
        ASSERT_LT(owner, consumers);
        owned[owner].push_back(s);
        if (assignment == ShardAssignment::kStripe) {
          EXPECT_EQ(owner, s % consumers);
        }
      }
      EXPECT_EQ(owned.size(), consumers) << "an ownerless consumer idles";
      if (assignment == ShardAssignment::kBlock) {
        for (const auto& [owner, shards] : owned) {
          EXPECT_EQ(shards.back() - shards.front() + 1, shards.size())
              << "block ownership must be contiguous";
        }
      }
      server.Stop();
    }
  }
}

// Every explicit topology — pinned consumer counts under both
// assignments, tiny rings forcing producer backpressure — must apply
// every request exactly once with an exact admission ledger.
TEST(CacheServerTopologyTest, ExplicitTopologiesApplyEveryRequestExactlyOnce) {
  const Trace trace = MakeSynthetic("topo", 61, 6000, 3);
  std::uint64_t reads = 0, writes = 0;
  for (const Request& r : trace.requests) {
    (r.op == OpType::kRead ? reads : writes) += 1;
  }
  for (ShardAssignment assignment :
       {ShardAssignment::kStripe, ShardAssignment::kBlock}) {
    for (unsigned consumers : {1u, 2u, 4u}) {
      SCOPED_TRACE(std::string(ShardAssignmentName(assignment)) +
                   " consumers=" + std::to_string(consumers));
      ServerOptions options;
      options.shards = 4;
      options.cache_pages = 96;
      options.policy = PolicyKind::kClic;
      options.clic.window = 400;
      options.consumers = consumers;
      options.assignment = assignment;
      options.ring_capacity = 4;  // tiny: producers hit ring-full a lot
      LoadOptions load;
      load.clients = 3;
      load.batch_size = 33;
      const ServeResult served = ServeTrace(trace, options, load);
      EXPECT_EQ(served.requests, trace.size());
      EXPECT_EQ(served.total.reads, reads);
      EXPECT_EQ(served.total.writes, writes);
      EXPECT_EQ(served.consumers, consumers);
      ASSERT_EQ(served.per_consumer_requests.size(), consumers);
      std::uint64_t per_consumer_total = 0;
      for (const std::uint64_t n : served.per_consumer_requests) {
        per_consumer_total += n;
      }
      EXPECT_EQ(per_consumer_total, trace.size())
          << "owning consumers must account for every applied request";
    }
  }
}

TEST(CacheServerTest, DurationModeLoopsTheChunkAndStops) {
  const Trace trace = MakeSynthetic("timed", 3, 500);
  ServerOptions options;
  options.shards = 2;
  options.cache_pages = 32;
  LoadOptions load;
  load.clients = 2;
  load.batch_size = 50;
  load.duration_seconds = 0.05;
  const ServeResult served = ServeTrace(trace, options, load);
  // At least one full pass of each chunk is guaranteed (the duration
  // check sits at batch boundaries), and the run must terminate.
  EXPECT_GE(served.requests, trace.size());
  EXPECT_GT(served.wall_seconds, 0.0);
}

TEST(CacheServerTest, ShardCachePagesSplitsBudget) {
  EXPECT_EQ(ShardCachePages(12'000, 4), 3'000u);
  EXPECT_EQ(ShardCachePages(5, 8), 1u);   // floor of one page per shard
  EXPECT_EQ(ShardCachePages(0, 1), 1u);
  EXPECT_EQ(ShardCachePages(7, 2), 3u);
}

void ExpectExactLedger(const AdmissionStats& a) {
  EXPECT_EQ(a.submitted_batches, a.applied_batches + a.shed_batches +
                                     a.timed_out_batches + a.expired_batches +
                                     a.stopped_batches);
  EXPECT_EQ(a.submitted_requests,
            a.applied_requests + a.shed_requests + a.timed_out_requests +
                a.expired_requests + a.stopped_requests);
}

// Stop() while producers are blocked on a full queue: every blocked
// producer must return kStopped promptly, nothing may hang, and the
// ledger must account for every submitted batch exactly once.
TEST(CacheServerShutdownTest, StopUnblocksProducersStuckOnFullQueue) {
  const Trace trace = MakeSynthetic("stop-full", 47, 64 * 20, 1);
  fault::FaultPlan plan;
  std::string error;
  ASSERT_TRUE(fault::ParseFaultPlan(
      "stall:shard=0,after=0,drains=100000,ms=400", &plan, &error))
      << error;
  ServerOptions options;
  options.shards = 1;
  options.cache_pages = 32;
  options.queue_cap = 1;
  options.admission = AdmissionPolicy::kBlock;
  options.fault = &plan;
  CacheServer server(options, 1);
  std::atomic<int> stopped_results{0};
  std::atomic<std::uint64_t> submitted{0};
  std::thread producer([&] {
    // Closed-loop against a 400ms-per-drain consumer with cap 1: the
    // producer wedges on the space CV almost immediately.
    for (std::size_t pos = 0; pos + 64 <= trace.requests.size(); pos += 64) {
      submitted.fetch_add(1);
      const SubmitResult r = server.Submit(0, trace.requests.data() + pos, 64);
      if (r == SubmitResult::kStopped) {
        stopped_results.fetch_add(1);
        break;
      }
    }
    server.Finish(0);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  const auto t0 = std::chrono::steady_clock::now();
  server.Stop();
  producer.join();
  const double stop_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(stop_seconds, 2.0) << "Stop() must not ride out queued stalls";
  EXPECT_EQ(stopped_results.load(), 1)
      << "the blocked producer must observe kStopped";
  const AdmissionStats a = server.TotalAdmission();
  EXPECT_EQ(a.submitted_batches, submitted.load());
  ExpectExactLedger(a);
}

// Stop() while a fault-injected shard is mid-stall: the stall loop
// checks the stop flag every millisecond, so shutdown must complete in
// milliseconds, not after the remaining seconds of injected stall.
TEST(CacheServerShutdownTest, StopReturnsPromptlyFromAStalledShard) {
  const Trace trace = MakeSynthetic("stop-stall", 53, 64 * 4, 1);
  fault::FaultPlan plan;
  std::string error;
  ASSERT_TRUE(fault::ParseFaultPlan("stall:shard=0,after=0,drains=4,ms=10000",
                                    &plan, &error))
      << error;
  ServerOptions options;
  options.shards = 1;
  options.cache_pages = 32;
  options.fault = &plan;
  CacheServer server(options, 1);
  for (std::size_t pos = 0; pos + 64 <= trace.requests.size(); pos += 64) {
    ASSERT_EQ(server.SubmitAsync(0, trace.requests.data() + pos, 64),
              SubmitResult::kEnqueued);
  }
  // Let the consumer enter the 10s stall before pulling the plug.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto t0 = std::chrono::steady_clock::now();
  server.Stop();
  const double stop_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(stop_seconds, 2.0)
      << "a 10s injected stall must unwind at the next 1ms stop check";
  const AdmissionStats a = server.TotalAdmission();
  EXPECT_EQ(a.submitted_batches, 4u);
  EXPECT_GE(a.stopped_batches, 1u) << "queued batches behind the stall are "
                                      "discarded with exact accounting";
  ExpectExactLedger(a);
}

// Stop() before any submission, double Stop(), and Stop() racing
// Finish(): all must be clean no-ops or orderly aborts.
TEST(CacheServerShutdownTest, StopIsIdempotentAndSafeWhenIdle) {
  ServerOptions options;
  options.shards = 2;
  options.cache_pages = 16;
  CacheServer server(options, 2);
  server.Stop();
  server.Stop();  // idempotent
  EXPECT_EQ(server.Submit(0, nullptr, 0), SubmitResult::kApplied);
  const Trace trace = MakeSynthetic("post-stop", 59, 64, 1);
  // Submissions after Stop() are refused as kStopped, not lost.
  EXPECT_EQ(server.Submit(0, trace.requests.data(), 64),
            SubmitResult::kStopped);
  EXPECT_EQ(server.SubmitAsync(1, trace.requests.data(), 64),
            SubmitResult::kStopped);
  ExpectExactLedger(server.TotalAdmission());
}

}  // namespace
}  // namespace clic::server
