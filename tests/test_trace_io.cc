#include "sim/trace_io.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/trace.h"

namespace clic {
namespace {

Trace SmallTrace() {
  Trace trace;
  trace.name = "unit";
  const HintSetId a = trace.hints->Intern(HintVector{0, {1, 2, 3}});
  const HintSetId b = trace.hints->Intern(HintVector{1, {7}});
  const HintSetId c = trace.hints->Intern(HintVector{0, {}});
  trace.requests = {
      {10, a, 0, OpType::kRead, WriteKind::kNone},
      {11, b, 1, OpType::kWrite, WriteKind::kReplacement},
      {12, c, 0, OpType::kWrite, WriteKind::kRecovery},
      {10, a, 0, OpType::kRead, WriteKind::kNone},
  };
  return trace;
}

class TraceIoTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "clic_trace_io_test.trc";
};

TEST_F(TraceIoTest, RoundTrip) {
  const Trace original = SmallTrace();
  ASSERT_TRUE(SaveTrace(original, path_));
  auto loaded = LoadTrace(path_, "unit");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->name, original.name);
  ASSERT_EQ(loaded->requests.size(), original.requests.size());
  for (std::size_t i = 0; i < original.requests.size(); ++i) {
    const Request& a = original.requests[i];
    const Request& b = loaded->requests[i];
    EXPECT_EQ(a.page, b.page);
    EXPECT_EQ(a.hint_set, b.hint_set);
    EXPECT_EQ(a.client, b.client);
    EXPECT_EQ(a.op, b.op);
    EXPECT_EQ(a.write_kind, b.write_kind);
  }
  ASSERT_EQ(loaded->hints->size(), original.hints->size());
  for (HintSetId h = 0; h < original.hints->size(); ++h) {
    EXPECT_EQ(loaded->hints->Describe(h), original.hints->Describe(h));
    EXPECT_EQ(loaded->hints->Get(h), original.hints->Get(h));
  }
}

TEST_F(TraceIoTest, RejectsWrongName) {
  ASSERT_TRUE(SaveTrace(SmallTrace(), path_));
  EXPECT_FALSE(LoadTrace(path_, "other").has_value());
}

TEST_F(TraceIoTest, RejectsMissingFile) {
  EXPECT_FALSE(LoadTrace(path_ + ".nope", "unit").has_value());
}

TEST_F(TraceIoTest, RejectsCorruption) {
  ASSERT_TRUE(SaveTrace(SmallTrace(), path_));
  // Flip one byte in the middle of the file.
  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, size / 2, SEEK_SET);
  int byte = std::fgetc(f);
  std::fseek(f, size / 2, SEEK_SET);
  std::fputc(byte ^ 0xFF, f);
  std::fclose(f);
  EXPECT_FALSE(LoadTrace(path_, "unit").has_value());
}

TEST_F(TraceIoTest, RejectsTruncation) {
  ASSERT_TRUE(SaveTrace(SmallTrace(), path_));
  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path_.c_str(), size - 9), 0);
  EXPECT_FALSE(LoadTrace(path_, "unit").has_value());
}

// ---------------------------------------------------------------------
// Seeded corruption fuzzing. The format ends in an FNV-1a checksum of
// everything before it, and FNV-1a's per-byte step (hash ^= byte, then
// multiply by an odd prime) is bijective, so ANY single-bit flip in the
// file must either trip a structural bound or miss the checksum — the
// loader always fails closed, never returns a silently-different trace.
// ---------------------------------------------------------------------

Trace FuzzTrace() {
  Trace trace;
  trace.name = "fuzz";
  Rng rng(0xF00D);
  std::vector<HintSetId> ids;
  for (std::uint32_t i = 0; i < 16; ++i) {
    HintVector v;
    v.client = static_cast<ClientId>(i % 4);
    const std::size_t nattrs = rng.Below(5);
    for (std::size_t a = 0; a < nattrs; ++a) {
      v.attrs.push_back(static_cast<std::uint32_t>(rng.Below(1000)));
    }
    ids.push_back(trace.hints->Intern(std::move(v)));
  }
  for (std::size_t i = 0; i < 512; ++i) {
    Request r;
    r.page = static_cast<PageId>(rng.Below(4096));
    r.hint_set = ids[rng.Below(ids.size())];
    r.client = static_cast<ClientId>(rng.Below(4));
    if (rng.Chance(0.3)) {
      r.op = OpType::kWrite;
      r.write_kind =
          rng.Chance(0.5) ? WriteKind::kReplacement : WriteKind::kRecovery;
    }
    trace.requests.push_back(r);
  }
  return trace;
}

std::vector<unsigned char> ReadAll(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  std::vector<unsigned char> bytes(static_cast<std::size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  return bytes;
}

void WriteAll(const std::string& path,
              const std::vector<unsigned char>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

TEST_F(TraceIoTest, BitFlipFuzzAlwaysFailsClosed) {
  ASSERT_TRUE(SaveTrace(FuzzTrace(), path_));
  const std::vector<unsigned char> pristine = ReadAll(path_);
  ASSERT_GT(pristine.size(), 64u);
  Rng rng(2009);  // deterministic: failures reproduce byte-for-byte
  for (int round = 0; round < 256; ++round) {
    std::vector<unsigned char> mutated = pristine;
    const std::size_t offset = rng.Below(mutated.size());
    const unsigned char mask =
        static_cast<unsigned char>(1u << rng.Below(8));
    mutated[offset] ^= mask;
    WriteAll(path_, mutated);
    EXPECT_FALSE(LoadTrace(path_, "fuzz").has_value())
        << "bit flip at offset " << offset << " mask " << int(mask)
        << " (round " << round << ") was silently accepted";
  }
  // Sanity: the pristine bytes still load, so the failures above came
  // from the corruption, not from a broken fixture.
  WriteAll(path_, pristine);
  EXPECT_TRUE(LoadTrace(path_, "fuzz").has_value());
}

TEST_F(TraceIoTest, TruncationFuzzAlwaysFailsClosed) {
  ASSERT_TRUE(SaveTrace(FuzzTrace(), path_));
  const std::vector<unsigned char> pristine = ReadAll(path_);
  Rng rng(2010);
  for (int round = 0; round < 64; ++round) {
    const std::size_t keep = rng.Below(pristine.size());  // < full size
    WriteAll(path_, std::vector<unsigned char>(pristine.begin(),
                                               pristine.begin() + keep));
    EXPECT_FALSE(LoadTrace(path_, "fuzz").has_value())
        << "truncation to " << keep << " of " << pristine.size()
        << " bytes was accepted";
  }
}

TEST_F(TraceIoTest, AbsurdHeaderCountsFailFastWithoutAllocating) {
  const Trace trace = FuzzTrace();
  ASSERT_TRUE(SaveTrace(trace, path_));
  const std::vector<unsigned char> pristine = ReadAll(path_);

  auto patch_u64 = [&](std::size_t offset, std::uint64_t value) {
    std::vector<unsigned char> mutated = pristine;
    ASSERT_LE(offset + sizeof(value), mutated.size());
    std::memcpy(mutated.data() + offset, &value, sizeof(value));
    WriteAll(path_, mutated);
  };
  auto patch_u32 = [&](std::size_t offset, std::uint32_t value) {
    std::vector<unsigned char> mutated = pristine;
    ASSERT_LE(offset + sizeof(value), mutated.size());
    std::memcpy(mutated.data() + offset, &value, sizeof(value));
    WriteAll(path_, mutated);
  };

  // Layout: magic(4) version(4) name_len(4) name then num_hints(8),
  // per-hint {client(2) nattrs(4) attrs(4 each)}, num_requests(8).
  const std::size_t num_hints_at = 12 + trace.name.size();
  std::size_t num_requests_at = num_hints_at + 8;
  for (HintSetId h = 0; h < trace.hints->size(); ++h) {
    num_requests_at += sizeof(ClientId) + 4 +
                       trace.hints->Get(h).attrs.size() * sizeof(std::uint32_t);
  }

  // A 16-exabyte hint count or request count must be rejected by the
  // file-size bound before any resize() — a crash or bad_alloc here
  // means the loader trusted the header.
  patch_u64(num_hints_at, ~0ull);
  EXPECT_FALSE(LoadTrace(path_, "fuzz").has_value());
  patch_u64(num_hints_at, static_cast<std::uint64_t>(pristine.size()));
  EXPECT_FALSE(LoadTrace(path_, "fuzz").has_value());
  patch_u64(num_requests_at, ~0ull);
  EXPECT_FALSE(LoadTrace(path_, "fuzz").has_value());
  patch_u64(num_requests_at, static_cast<std::uint64_t>(pristine.size()));
  EXPECT_FALSE(LoadTrace(path_, "fuzz").has_value());

  // Oversized name length (caps at 4096) and first-hint nattrs (same
  // cap) must also fail fast.
  patch_u32(8, 0xFFFFFFFFu);
  EXPECT_FALSE(LoadTrace(path_, "fuzz").has_value());
  patch_u32(num_hints_at + 8 + sizeof(ClientId), 0xFFFFFFFFu);
  EXPECT_FALSE(LoadTrace(path_, "fuzz").has_value());

  WriteAll(path_, pristine);
  EXPECT_TRUE(LoadTrace(path_, "fuzz").has_value());
}

}  // namespace
}  // namespace clic
