#include "sim/trace_io.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

#include "core/trace.h"

namespace clic {
namespace {

Trace SmallTrace() {
  Trace trace;
  trace.name = "unit";
  const HintSetId a = trace.hints->Intern(HintVector{0, {1, 2, 3}});
  const HintSetId b = trace.hints->Intern(HintVector{1, {7}});
  const HintSetId c = trace.hints->Intern(HintVector{0, {}});
  trace.requests = {
      {10, a, 0, OpType::kRead, WriteKind::kNone},
      {11, b, 1, OpType::kWrite, WriteKind::kReplacement},
      {12, c, 0, OpType::kWrite, WriteKind::kRecovery},
      {10, a, 0, OpType::kRead, WriteKind::kNone},
  };
  return trace;
}

class TraceIoTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "clic_trace_io_test.trc";
};

TEST_F(TraceIoTest, RoundTrip) {
  const Trace original = SmallTrace();
  ASSERT_TRUE(SaveTrace(original, path_));
  auto loaded = LoadTrace(path_, "unit");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->name, original.name);
  ASSERT_EQ(loaded->requests.size(), original.requests.size());
  for (std::size_t i = 0; i < original.requests.size(); ++i) {
    const Request& a = original.requests[i];
    const Request& b = loaded->requests[i];
    EXPECT_EQ(a.page, b.page);
    EXPECT_EQ(a.hint_set, b.hint_set);
    EXPECT_EQ(a.client, b.client);
    EXPECT_EQ(a.op, b.op);
    EXPECT_EQ(a.write_kind, b.write_kind);
  }
  ASSERT_EQ(loaded->hints->size(), original.hints->size());
  for (HintSetId h = 0; h < original.hints->size(); ++h) {
    EXPECT_EQ(loaded->hints->Describe(h), original.hints->Describe(h));
    EXPECT_EQ(loaded->hints->Get(h), original.hints->Get(h));
  }
}

TEST_F(TraceIoTest, RejectsWrongName) {
  ASSERT_TRUE(SaveTrace(SmallTrace(), path_));
  EXPECT_FALSE(LoadTrace(path_, "other").has_value());
}

TEST_F(TraceIoTest, RejectsMissingFile) {
  EXPECT_FALSE(LoadTrace(path_ + ".nope", "unit").has_value());
}

TEST_F(TraceIoTest, RejectsCorruption) {
  ASSERT_TRUE(SaveTrace(SmallTrace(), path_));
  // Flip one byte in the middle of the file.
  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, size / 2, SEEK_SET);
  int byte = std::fgetc(f);
  std::fseek(f, size / 2, SEEK_SET);
  std::fputc(byte ^ 0xFF, f);
  std::fclose(f);
  EXPECT_FALSE(LoadTrace(path_, "unit").has_value());
}

TEST_F(TraceIoTest, RejectsTruncation) {
  ASSERT_TRUE(SaveTrace(SmallTrace(), path_));
  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path_.c_str(), size - 9), 0);
  EXPECT_FALSE(LoadTrace(path_, "unit").has_value());
}

}  // namespace
}  // namespace clic
