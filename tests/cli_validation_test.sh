#!/bin/sh
# CLI argument-validation regression test, run by CTest:
#   cli_validation_test.sh <clic_sweep> <clic_serve>
#
# Contract under test (the clic_sweep satellite bugfix): an unknown
# --policies / --traces / --figure token must fail fast with the
# offending token AND the valid set on stderr and a non-zero exit —
# never a silent skip, and never a bare abort deep in trace resolution.
# None of these invocations may start a simulation, so the whole script
# runs in milliseconds.
set -u

SWEEP="$1"
SERVE="$2"
failures=0

# expect_reject <description> <token-that-must-appear> <valid-name-that-must-appear> -- cmd args...
expect_reject() {
  desc="$1"; token="$2"; valid="$3"; shift 3
  [ "$1" = "--" ] && shift
  # The redirect order is deliberate: capture stderr (the contract
  # under test), discard stdout.
  # shellcheck disable=SC2069
  err=$("$@" 2>&1 >/dev/null)
  status=$?
  if [ "$status" -eq 0 ]; then
    echo "FAIL: $desc: expected non-zero exit, got 0" >&2
    failures=$((failures + 1))
    return
  fi
  # 2 is the CLI-usage exit code; anything >= 128 means a signal (the
  # 'bare abort' the bug report is about).
  if [ "$status" -ge 128 ]; then
    echo "FAIL: $desc: died by signal (exit $status) instead of a clean error" >&2
    failures=$((failures + 1))
    return
  fi
  case "$err" in
    *"$token"*) : ;;
    *) echo "FAIL: $desc: stderr does not name the offending token '$token':" >&2
       echo "$err" >&2
       failures=$((failures + 1))
       return ;;
  esac
  case "$err" in
    *"$valid"*) : ;;
    *) echo "FAIL: $desc: stderr does not list the valid set (expected '$valid'):" >&2
       echo "$err" >&2
       failures=$((failures + 1))
       return ;;
  esac
  echo "ok: $desc"
}

expect_reject "clic_sweep unknown trace" "NO_SUCH_TRACE" "DB2_C60" -- \
  "$SWEEP" --traces=NO_SUCH_TRACE --policies=LRU --cache-pages=100
expect_reject "clic_sweep unknown trace among known ones" "BOGUS" "MY_H65" -- \
  "$SWEEP" --traces=DB2_C60,BOGUS --policies=LRU --cache-pages=100
expect_reject "clic_sweep unknown policy" "LRUU" "CLIC" -- \
  "$SWEEP" --traces=DB2_C60 --policies=LRUU --cache-pages=100
expect_reject "clic_sweep unknown figure" "9" "ablation" -- \
  "$SWEEP" --figure=9
expect_reject "clic_sweep unknown figure lists scenario grids" "9" "scan-pollution" -- \
  "$SWEEP" --figure=9
expect_reject "clic_sweep unknown trace lists scenario presets" "BOGUS" "scan-pollute" -- \
  "$SWEEP" --traces=BOGUS --policies=LRU --cache-pages=100
expect_reject "clic_sweep bad inline scenario spec" "theta" "zipf" -- \
  "$SWEEP" --traces=zipf:theta=banana --policies=LRU --cache-pages=100
expect_reject "clic_sweep empty policy token" "empty token" "--policies" -- \
  "$SWEEP" --traces=DB2_C60 --policies=LRU,,CLIC --cache-pages=100
expect_reject "clic_sweep trailing comma in traces" "empty token" "--traces" -- \
  "$SWEEP" --traces=DB2_C60, --policies=LRU --cache-pages=100
expect_reject "clic_sweep unknown flag" "--bogus" "help" -- \
  "$SWEEP" --bogus=1
expect_reject "clic_sweep bad thread count" "abc" "positive integer" -- \
  "$SWEEP" --figure=6 --threads=abc

expect_reject "clic_serve unknown trace" "NOPE" "DB2_C60" -- \
  "$SERVE" --trace=NOPE
expect_reject "clic_serve unknown workload" "NOPE" "scan-pollute" -- \
  "$SERVE" --workload=NOPE
expect_reject "clic_serve bad inline workload spec" "scan-every" "scan-mix" -- \
  "$SERVE" --workload=scan-mix:scan-every=0
expect_reject "clic_serve trace and workload clash" "--workload" "exactly one" -- \
  "$SERVE" --trace=DB2_C60 --workload=scan-pollute
expect_reject "clic_serve unknown policy" "FIFO" "CLIC" -- \
  "$SERVE" --trace=DB2_C60 --policy=FIFO
expect_reject "clic_serve OPT rejected" "OPT" "clairvoyant" -- \
  "$SERVE" --trace=DB2_C60 --policy=OPT
expect_reject "clic_serve missing trace" "--trace" "DB2_C60" -- \
  "$SERVE" --policy=LRU
expect_reject "clic_serve verify without deterministic" "--verify" "--deterministic" -- \
  "$SERVE" --trace=DB2_C60 --verify
expect_reject "clic_serve deterministic duration clash" "--duration" "--deterministic" -- \
  "$SERVE" --trace=DB2_C60 --deterministic --duration=1

# Overload-resilience flags (PR 6): zero and negative numeric values
# must be rejected up front — strtoull would otherwise wrap "-3" to
# 2^64-3 and size a 16-exabyte queue.
expect_reject "clic_serve zero shards" "--shards" "positive integer" -- \
  "$SERVE" --trace=DB2_C60 --shards=0
expect_reject "clic_serve negative clients wraparound" "-3" "positive integer" -- \
  "$SERVE" --trace=DB2_C60 --clients=-3
expect_reject "clic_serve zero batch" "--batch" "positive integer" -- \
  "$SERVE" --trace=DB2_C60 --batch=0
expect_reject "clic_serve zero cache pages" "--cache-pages" "positive integer" -- \
  "$SERVE" --trace=DB2_C60 --cache-pages=0
expect_reject "clic_serve negative queue cap" "--queue-cap" "positive integer" -- \
  "$SERVE" --trace=DB2_C60 --queue-cap=-1
expect_reject "clic_serve unknown admission policy" "bogus" "deadline" -- \
  "$SERVE" --trace=DB2_C60 --admission=bogus
expect_reject "clic_serve unknown fault clause" "flood" "stall:" -- \
  "$SERVE" --trace=DB2_C60 --fault-plan=flood:every=2
expect_reject "clic_serve fault clause missing field" "shed" "every" -- \
  "$SERVE" --trace=DB2_C60 --fault-plan=shed:
expect_reject "clic_serve deadline admission without timeout" "--submit-timeout-ms" "--admission=deadline" -- \
  "$SERVE" --trace=DB2_C60 --queue-cap=4 --admission=deadline
expect_reject "clic_serve verify vs corruption" "corrupt" "baseline" -- \
  "$SERVE" --trace=DB2_C60 --deterministic --verify --fault-plan=corrupt:every=3
expect_reject "clic_serve verify vs watchdog" "--watchdog-ms" "reproducible" -- \
  "$SERVE" --trace=DB2_C60 --deterministic --verify --watchdog-ms=5
expect_reject "clic_serve verify vs shed admission" "shed" "--admission=block" -- \
  "$SERVE" --trace=DB2_C60 --deterministic --verify --queue-cap=4 --admission=shed

# Thread-per-core topology flags (PR 7): a consumer owning zero shards
# would idle forever, deterministic mode is one consumer by definition,
# and the SPSC ring masks its cursors so the capacity must be a power
# of two — each misuse must fail fast naming the offending value.
expect_reject "clic_serve zero consumers" "--consumers" "positive integer" -- \
  "$SERVE" --trace=DB2_C60 --consumers=0
expect_reject "clic_serve consumers exceed shards" "--consumers=4" "exceeds --shards" -- \
  "$SERVE" --trace=DB2_C60 --shards=2 --consumers=4
expect_reject "clic_serve deterministic with multiple consumers" "--consumers=2" "exactly one consumer" -- \
  "$SERVE" --trace=DB2_C60 --deterministic --consumers=2
expect_reject "clic_serve non-power-of-two ring capacity" "96" "power of two" -- \
  "$SERVE" --trace=DB2_C60 --ring-capacity=96
expect_reject "clic_serve unknown ownership assignment" "bogus" "stripe, block" -- \
  "$SERVE" --trace=DB2_C60 --owned-shards=bogus

# Network front-end flags (PR 9): numeric garbage fails fast before a
# socket is opened, net tuning without a net mode is a typo, and the
# verify-over-the-wire gate only exists with the loopback client — each
# rejection must name the offender and print the valid combinations.
expect_reject "clic_serve zero io threads" "--io-threads" "positive integer" -- \
  "$SERVE" --trace=DB2_C60 --connect --io-threads=0
expect_reject "clic_serve negative io threads wraparound" "-2" "positive integer" -- \
  "$SERVE" --trace=DB2_C60 --connect --io-threads=-2
expect_reject "clic_serve zero conn limit" "--conn-limit" "positive integer" -- \
  "$SERVE" --trace=DB2_C60 --connect --conn-limit=0
expect_reject "clic_serve port out of range" "--port" "0..65535" -- \
  "$SERVE" --trace=DB2_C60 --listen --port=65536
expect_reject "clic_serve negative port wraparound" "-1" "non-negative integer" -- \
  "$SERVE" --trace=DB2_C60 --listen --port=-1
expect_reject "clic_serve garbage read timeout" "abc" "finite non-negative" -- \
  "$SERVE" --trace=DB2_C60 --connect --read-timeout-ms=abc
expect_reject "clic_serve net tuning without net mode" "--port/--io-threads" "--connect" -- \
  "$SERVE" --trace=DB2_C60 --io-threads=2
expect_reject "clic_serve listen and connect clash" "--listen and --connect" "valid combinations" -- \
  "$SERVE" --trace=DB2_C60 --listen --connect
expect_reject "clic_serve listen with verify" "--listen" "--connect --deterministic --verify" -- \
  "$SERVE" --trace=DB2_C60 --listen --deterministic --verify
expect_reject "clic_serve deterministic wire with multiple io threads" "--io-threads=4" "exactly one io thread" -- \
  "$SERVE" --trace=DB2_C60 --connect --deterministic --io-threads=4
expect_reject "clic_serve connect with duration" "--duration" "loopback" -- \
  "$SERVE" --trace=DB2_C60 --connect --duration=1
expect_reject "clic_serve conn limit below clients" "--conn-limit=2" "--clients=8" -- \
  "$SERVE" --trace=DB2_C60 --connect --clients=8 --conn-limit=2
expect_reject "clic_serve verify vs net reset" "net:reset" "baseline" -- \
  "$SERVE" --trace=DB2_C60 --connect --deterministic --verify --fault-plan=net:reset=2
expect_reject "clic_serve net fault clause without trigger" "net" "torn-write" -- \
  "$SERVE" --trace=DB2_C60 --fault-plan=net:stall-ms=5

# Adaptive-window flags (PR 10): the churn threshold is a similarity in
# [0, 1], the resolved floor/ceiling pair must not be inverted (whether
# explicit or defaulted from the window), and a zero window can anchor
# neither a fixed nor an adaptive schedule — both tools share the
# validator, so both must reject with the same wording.
expect_reject "clic_sweep churn threshold above one" "1.5" "[0, 1]" -- \
  "$SWEEP" --traces=DB2_C60 --policies=CLIC --cache-pages=100 \
  --adaptive-window --churn-threshold=1.5
expect_reject "clic_sweep negative churn threshold" "-0.5" "non-negative" -- \
  "$SWEEP" --traces=DB2_C60 --policies=CLIC --cache-pages=100 \
  --adaptive-window --churn-threshold=-0.5
expect_reject "clic_sweep inverted window bounds" "--min-window=5000" "min-window <= max-window" -- \
  "$SWEEP" --traces=DB2_C60 --policies=CLIC --cache-pages=100 \
  --adaptive-window --min-window=5000 --max-window=200
expect_reject "clic_sweep defaulted floor exceeds explicit ceiling" "defaulted to window/16" "min-window <= max-window" -- \
  "$SWEEP" --traces=DB2_C60 --policies=CLIC --cache-pages=100 \
  --adaptive-window --window=100000 --max-window=100
expect_reject "clic_sweep adaptive with zero window" "--window" "positive integer" -- \
  "$SWEEP" --traces=DB2_C60 --policies=CLIC --cache-pages=100 \
  --adaptive-window --window=0
expect_reject "clic_serve churn threshold above one" "2" "[0, 1]" -- \
  "$SERVE" --trace=DB2_C60 --adaptive-window --churn-threshold=2
expect_reject "clic_serve inverted window bounds" "--min-window=9" "min-window <= max-window" -- \
  "$SERVE" --trace=DB2_C60 --adaptive-window --min-window=9 --max-window=3
expect_reject "clic_serve adaptive with zero window" "--window" "positive integer" -- \
  "$SERVE" --trace=DB2_C60 --adaptive-window --window=0

# Batch larger than the request budget is a typo, not a workload. This
# one loads (a tiny capped slice of) the trace, so point the cache at a
# scratch dir to keep the test hermetic.
scratch_cache=$(mktemp -d "${TMPDIR:-/tmp}/clic_cli_test.XXXXXX")
expect_reject "clic_serve batch exceeds request budget" "--batch=4096" "request budget" -- \
  "$SERVE" --trace=DB2_C60 --requests=64 --batch=4096 --cache-dir="$scratch_cache"
rm -rf "$scratch_cache"

# --help and --list must stay cheap and exit 0.
for tool in "$SWEEP" "$SERVE"; do
  if ! "$tool" --help >/dev/null 2>&1; then
    echo "FAIL: $tool --help exited non-zero" >&2
    failures=$((failures + 1))
  fi
  if ! "$tool" --list >/dev/null 2>&1; then
    echo "FAIL: $tool --list exited non-zero" >&2
    failures=$((failures + 1))
  fi
done

if [ "$failures" -ne 0 ]; then
  echo "$failures CLI validation check(s) failed" >&2
  exit 1
fi
echo "all CLI validation checks passed"
