// Deterministic random number generation for workload synthesis and the
// microbenchmarks. Everything here is seed-stable across platforms: the
// same seed always yields the same stream, which is what makes cached
// .trc files reproducible across machines (see DESIGN.md, "Determinism").
#pragma once

#include <cstdint>
#include <vector>

namespace clic {

/// splitmix64-seeded xoshiro256** generator. Small, fast, and entirely
/// self-contained so trace generation never depends on the C++ standard
/// library's unspecified distribution implementations.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 to spread an arbitrary seed over the full state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  std::uint64_t operator()() { return Next(); }

  /// Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t Below(std::uint64_t bound) { return Next() % bound; }

  /// True with probability p.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

/// Zipf(n, theta) sampler over [0, n). Rank 0 is the most popular item;
/// theta = 0 degenerates to uniform.
///
/// For theta < 1 this uses the Gray et al. method (precomputed zeta
/// constants, O(1) per sample). The Gray approximation breaks down as
/// theta -> 1 (alpha = 1/(1-theta) diverges), so for theta >= ~1 the
/// sampler switches to exact CDF inversion with a binary search
/// (O(log n) per sample, still allocation-free after construction).
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta) : n_(n), theta_(theta) {
    if (theta_ < kGrayLimit) {
      zetan_ = Zeta(n_, theta_);
      const double zeta2 = Zeta(2, theta_);
      alpha_ = 1.0 / (1.0 - theta_);
      eta_ = (1.0 - Pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
             (1.0 - zeta2 / zetan_);
    } else {
      cdf_.resize(n_);
      double sum = 0.0;
      for (std::uint64_t i = 0; i < n_; ++i) {
        sum += 1.0 / Pow(static_cast<double>(i + 1), theta_);
        cdf_[i] = sum;
      }
      for (double& c : cdf_) c /= sum;
    }
  }

  std::uint32_t operator()(Rng& rng) {
    const double u = rng.NextDouble();
    if (!cdf_.empty()) {
      // Exact inversion: first rank whose CDF exceeds u.
      std::size_t lo = 0, hi = cdf_.size() - 1;
      while (lo < hi) {
        const std::size_t mid = (lo + hi) / 2;
        if (cdf_[mid] < u) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      return static_cast<std::uint32_t>(lo);
    }
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + Pow(0.5, theta_)) return 1;
    const double v =
        static_cast<double>(n_) * Pow(eta_ * u - eta_ + 1.0, alpha_);
    std::uint64_t rank = static_cast<std::uint64_t>(v);
    if (rank >= n_) rank = n_ - 1;
    return static_cast<std::uint32_t>(rank);
  }

  std::uint64_t domain() const { return n_; }

 private:
  // Above this skew the Gray approximation is unusable; empirically it
  // is accurate for the theta <= 0.95 range the trace factory uses.
  static constexpr double kGrayLimit = 0.99;

  static double Pow(double base, double exp);
  static double Zeta(std::uint64_t n, double theta);

  std::uint64_t n_;
  double theta_;
  double zetan_ = 0.0;
  double alpha_ = 0.0;
  double eta_ = 0.0;
  std::vector<double> cdf_;  // non-empty selects exact inversion
};

inline double ZipfGenerator::Pow(double base, double exp) {
  return __builtin_pow(base, exp);
}

inline double ZipfGenerator::Zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / Pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace clic
