// Clang thread-safety capability annotations plus the annotated mutex
// wrapper the serving layer uses (see DESIGN.md "Static analysis").
//
// Two kinds of capability live in this repo:
//
//   1. clic::Mutex — a real std::mutex carrying the `capability`
//      attribute, so clang's -Wthread-safety analysis tracks where it
//      is held. libstdc++'s std::mutex is unannotated, which makes raw
//      std::mutex invisible to the analysis; every mutex the analysis
//      should reason about must be a clic::Mutex.
//   2. clic::ThreadRole — a zero-size, zero-cost compile-time-only
//      capability standing for a *role* contract rather than a lock:
//      "I am the single producer thread for this client port", "I am
//      the consumer that owns this shard". Acquire/Release/AssertHeld
//      compile to nothing; the value is that any function touching a
//      CLIC_GUARDED_BY(role) field without declaring CLIC_REQUIRES(role)
//      fails the clang build. This is how the thread-per-core shard
//      ownership invariant (PR 7) is enforced at compile time instead
//      of by TSan coverage and code review.
//
// The macros are no-ops on non-clang compilers (GCC builds are
// unaffected); CI builds with clang++ -Wthread-safety
// -Werror=thread-safety-analysis so a violation is a build break.
#pragma once

#include <mutex>

#if defined(__clang__)
#define CLIC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define CLIC_THREAD_ANNOTATION(x)
#endif

/// Declares a type to be a capability (lockable / role).
#define CLIC_CAPABILITY(x) CLIC_THREAD_ANNOTATION(capability(x))
/// RAII type that acquires a capability in its constructor and releases
/// it in its destructor.
#define CLIC_SCOPED_CAPABILITY CLIC_THREAD_ANNOTATION(scoped_lockable)
/// Field may only be touched while the named capability is held.
#define CLIC_GUARDED_BY(x) CLIC_THREAD_ANNOTATION(guarded_by(x))
/// Pointed-to data may only be touched while the capability is held.
#define CLIC_PT_GUARDED_BY(x) CLIC_THREAD_ANNOTATION(pt_guarded_by(x))
/// Caller must hold the named capability/ies.
#define CLIC_REQUIRES(...) \
  CLIC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires the capability and holds it on return.
#define CLIC_ACQUIRE(...) \
  CLIC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the capability.
#define CLIC_RELEASE(...) \
  CLIC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Caller must NOT hold the capability (the callee acquires it itself —
/// declares non-reentrancy, catching self-deadlock at compile time).
#define CLIC_EXCLUDES(...) CLIC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Tells the analysis the capability is already held here (used on
/// quiescent post-join snapshot paths, where the thread joins provide
/// the happens-before the role would otherwise assert).
#define CLIC_ASSERT_CAPABILITY(...) \
  CLIC_THREAD_ANNOTATION(assert_capability(__VA_ARGS__))
/// Function returns a reference to the named capability.
#define CLIC_RETURN_CAPABILITY(x) CLIC_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch. Every use must carry a written one-line justification
/// and is counted in DESIGN.md's suppression report; server/ data-path
/// code must have zero of these (enforced by review + the DESIGN.md
/// count).
#define CLIC_NO_THREAD_SAFETY_ANALYSIS \
  CLIC_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace clic {

/// std::mutex with the capability attribute, so -Wthread-safety tracks
/// it. `native()` exposes the underlying std::mutex for
/// std::condition_variable waits; the analysis treats the returned
/// reference as this same capability.
class CLIC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CLIC_ACQUIRE() { mu_.lock(); }
  void Unlock() CLIC_RELEASE() { mu_.unlock(); }
  std::mutex& native() CLIC_RETURN_CAPABILITY(this) { return mu_; }

 private:
  std::mutex mu_;
};

/// Scoped holder for clic::Mutex (the std::lock_guard the analysis can
/// see).
class CLIC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CLIC_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() CLIC_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Compile-time-only role capability (see file comment). All members
/// compile to nothing; holding the role is a statement about which
/// thread is executing, not about a lock. Acquire when a thread takes
/// on the role (a consumer thread entering its drain loop, a producer
/// entering Submit), Release when it leaves, AssertHeld on quiescent
/// paths where thread joins already serialize (post-Shutdown stats
/// snapshots).
class CLIC_CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;

  void Acquire() const CLIC_ACQUIRE() {}
  void Release() const CLIC_RELEASE() {}
  void AssertHeld() const CLIC_ASSERT_CAPABILITY() {}
};

}  // namespace clic
