// FNV-1a, the one hash used across the codebase: hint-vector interning,
// trace-file checksums, and trace-name seed derivation all share this
// implementation so the constants can never drift apart.
#pragma once

#include <cstdint>
#include <string>

namespace clic {

class Fnv1a {
 public:
  void Mix(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001B3ull;
    }
  }

  template <typename T>
  void MixScalar(T value) {
    Mix(&value, sizeof(value));
  }

  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ull;
};

inline std::uint64_t Fnv1aHash(const std::string& s) {
  Fnv1a h;
  h.Mix(s.data(), s.size());
  return h.value();
}

}  // namespace clic
