// Shared command-line parsing for the clic_* binaries (clic_sweep,
// clic_serve). The contract every flag parser here enforces: an
// unknown or malformed token fails fast with the offending token AND
// the valid alternatives printed to stderr, exit code 2 — never a
// silent skip, and never an abort deep inside trace resolution.
#pragma once

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "sim/policy_factory.h"
#include "workload/scenario.h"
#include "workload/trace_factory.h"

namespace clic::cli {

[[noreturn]] inline void Die(const char* prog, const std::string& message) {
  std::fprintf(stderr, "%s: %s\n", prog, message.c_str());
  std::fprintf(stderr, "Run %s --help for usage.\n", prog);
  std::exit(2);
}

inline std::string KnownTraceNames() {
  std::string out;
  for (const NamedTraceInfo& info : NamedTraces()) {
    if (!out.empty()) out.append(", ");
    out.append(info.name);
  }
  return out;
}

inline std::string KnownScenarioNames() {
  std::string out;
  for (const ScenarioPreset& preset : ScenarioPresets()) {
    if (!out.empty()) out.append(", ");
    out.append(preset.name);
  }
  return out;
}

/// Every token a workload flag accepts, for help text and error
/// messages alike: the named paper traces, the scenario presets, and a
/// reminder of the inline spec grammar.
inline std::string KnownWorkloadNames() {
  return KnownTraceNames() + "; scenario presets: " + KnownScenarioNames() +
         "; or an inline spec like 'zipf:pages=120000,theta=0.9'";
}

/// The one table of `--figure` preset names. clic_sweep's help text and
/// error messages both read it, and sweep::FigureSpec must resolve
/// exactly this set (pinned by tests/test_sweep.cc), so the valid-token
/// list can never drift from the grids that actually exist.
inline const std::vector<std::string>& FigurePresetNames() {
  static const std::vector<std::string> names = {
      "6",          "7",           "8",
      "ablation",   "zipf-sweep",  "scan-pollution",
      "phase-shift", "phase-shift-adaptive", "tenant-mix"};
  return names;
}

inline std::string KnownFigureNames() {
  std::string out;
  for (const std::string& name : FigurePresetNames()) {
    if (!out.empty()) out.append(", ");
    out.append(name);
  }
  return out;
}

inline std::string KnownPolicyNames() {
  std::string out;
  for (PolicyKind kind : AllPolicies()) {
    if (!out.empty()) out.append(", ");
    out.append(PolicyName(kind));
  }
  return out;
}

/// Splits a comma-separated flag value. An empty token ("A,,B", a
/// leading/trailing comma, or an empty value) is an error, not a skip:
/// it is always a typo and silently dropping it would run a different
/// grid than the one the user asked for.
inline std::vector<std::string> SplitCsvFlag(const char* prog,
                                             const std::string& flag,
                                             const std::string& value) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = value.find(',', start);
    const std::size_t end = comma == std::string::npos ? value.size() : comma;
    if (end == start) {
      Die(prog, flag + "='" + value + "' contains an empty token");
    }
    parts.push_back(value.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return parts;
}

inline std::uint64_t ParseU64(const char* prog, const std::string& flag,
                              const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const std::uint64_t parsed = std::strtoull(value.c_str(), &end, 10);
  // strtoull silently wraps a negative input ("-3" parses as 2^64 - 3),
  // so a sign character must be rejected up front, not trusted to the
  // library.
  if (value.empty() || value[0] == '-' || value[0] == '+' || errno != 0 ||
      end == value.c_str() || *end != '\0' || parsed == 0) {
    Die(prog, flag + "='" + value + "' is not a positive integer");
  }
  return parsed;
}

/// ParseU64 for flags where zero is a meaningful value (e.g. --port=0
/// binds an ephemeral port); still rejects signs, wrap-around and
/// trailing garbage.
inline std::uint64_t ParseU64AllowZero(const char* prog,
                                       const std::string& flag,
                                       const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const std::uint64_t parsed = std::strtoull(value.c_str(), &end, 10);
  if (value.empty() || value[0] == '-' || value[0] == '+' || errno != 0 ||
      end == value.c_str() || *end != '\0') {
    Die(prog, flag + "='" + value + "' is not a non-negative integer");
  }
  return parsed;
}

inline double ParseDouble(const char* prog, const std::string& flag,
                          const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (errno != 0 || end == value.c_str() || *end != '\0' ||
      !std::isfinite(parsed) || parsed < 0.0) {
    Die(prog, flag + "='" + value + "' is not a finite non-negative number");
  }
  return parsed;
}

/// Validates a workload token: a named paper trace, a scenario preset,
/// or an inline scenario spec. Unknown or malformed tokens die with the
/// offending token, the parse error, and the full valid set — the one
/// validation every workload-accepting flag (`--traces`, `--trace`,
/// `--workload`) routes through.
inline void RequireKnownWorkload(const char* prog, const std::string& flag,
                                 const std::string& name) {
  for (const NamedTraceInfo& info : NamedTraces()) {
    if (info.name == name) return;
  }
  std::string error;
  if (ResolveWorkload(name, &error)) return;
  Die(prog, flag + ": unknown workload '" + name + "' (" + error +
                "; valid traces: " + KnownWorkloadNames() + ")");
}

/// Validates the adaptive-window option group (core/clic.h) after all
/// flags are parsed: the churn threshold is a rank similarity in
/// [0, 1], and the resolved floor/ceiling pair must not be inverted
/// (0 means the ClicPolicy defaults — floor window/16, ceiling window).
/// Shared by clic_sweep and clic_serve so both reject the same
/// combinations with the same wording.
inline void RequireValidAdaptiveWindow(const char* prog,
                                       const ClicOptions& clic) {
  if (clic.churn_threshold < 0.0 || clic.churn_threshold > 1.0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", clic.churn_threshold);
    Die(prog, std::string("--churn-threshold='") + buf +
                  "' is out of range (the rank similarity lives in [0, 1])");
  }
  const std::uint64_t floor_w =
      clic.min_window != 0 ? clic.min_window
                           : std::max<std::uint64_t>(1, clic.window / 16);
  const std::uint64_t ceil_w =
      clic.max_window != 0 ? clic.max_window : clic.window;
  if (floor_w > ceil_w) {
    Die(prog,
        "--min-window=" + std::to_string(floor_w) +
            (clic.min_window == 0 ? " (defaulted to window/16)" : "") +
            " exceeds --max-window=" + std::to_string(ceil_w) +
            (clic.max_window == 0 ? " (defaulted to the window)" : "") +
            " (need min-window <= max-window)");
  }
}

/// Parses one policy token; unknown names die with the valid set.
inline PolicyKind RequirePolicy(const char* prog, const std::string& flag,
                                const std::string& name) {
  const std::optional<PolicyKind> kind = ParsePolicyKind(name);
  if (!kind) {
    Die(prog, flag + ": unknown policy '" + name + "' (valid policies: " +
                  KnownPolicyNames() + ")");
  }
  return *kind;
}

}  // namespace clic::cli
