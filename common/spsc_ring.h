// Lock-free bounded single-producer/single-consumer ring buffer — the
// data-path primitive of the server's thread-per-core ownership model
// (server/cache_server.h): one ring per (client, consumer) pair, so a
// steady-state submit never takes a mutex between the producing client
// thread and the shard-owning consumer core.
//
// Memory-ordering argument (the whole correctness story, spelled out so
// DESIGN.md can reference it):
//
//   - `tail_` counts pushes, written only by the producer; `head_`
//     counts pops, written only by the consumer. Both are monotonic
//     uint64 cursors masked into the slot array, so full/empty tests
//     are plain subtractions with no wraparound ambiguity (2^64 pushes
//     outlives any run).
//   - The producer writes the slot, then publishes it with a RELEASE
//     store of `tail_`. The consumer's ACQUIRE load of `tail_`
//     therefore happens-after the slot write: a popped value is always
//     fully constructed. Symmetrically, the consumer reads the slot and
//     then frees it with a RELEASE store of `head_`; the producer's
//     ACQUIRE load of `head_` happens-after the slot read, so a slot is
//     never overwritten while the consumer may still touch it.
//   - Each side keeps a plain (non-atomic) cached copy of the peer's
//     cursor and refreshes it only when the ring *looks* full/empty, so
//     the common case is one relaxed self-load plus one cache-hot
//     comparison — no shared-line traffic at all.
//   - `head_` and `tail_` live on separate cache lines (alignas 64) so
//     the producer's and consumer's cursor updates never false-share.
//
// Capacity must be a power of two (masking replaces modulo); the
// constructor throws std::invalid_argument naming the offending value
// otherwise, so a misconfigured topology fails fast at startup instead
// of corrupting indexes at the first wrap.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace clic {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity)
      : capacity_(capacity), mask_(capacity - 1), slots_(capacity) {
    if (capacity < 2 || (capacity & (capacity - 1)) != 0) {
      throw std::invalid_argument(
          "SpscRing: capacity must be a power of two >= 2, got " +
          std::to_string(capacity));
    }
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when the ring is full.
  // clic-lint: hot-path
  bool TryPush(const T& value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ >= capacity_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ >= capacity_) return false;
    }
    slots_[static_cast<std::size_t>(tail) & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  // clic-lint: hot-path
  bool TryPop(T* out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    *out = slots_[static_cast<std::size_t>(head) & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Producer-side free-slot count. Conservative: the consumer can only
  /// make more room between this call and a TryPush, never less, so a
  /// producer that sees space for k pushes may issue them unchecked.
  std::size_t FreeSlots() const {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return capacity_ - static_cast<std::size_t>(tail - head);
  }

  /// Consumer-side emptiness. Exact for the consumer: the producer can
  /// only add elements, so `true` means everything pushed so far (with
  /// acquire visibility) has been popped.
  bool Empty() const {
    return head_.load(std::memory_order_relaxed) ==
           tail_.load(std::memory_order_acquire);
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  const std::size_t mask_;
  std::vector<T> slots_;
  /// Consumer cursor (pops) and the producer's cached copy of it.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::uint64_t cached_head_ = 0;  // producer-local
  /// Producer cursor (pushes) and the consumer's cached copy of it.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  alignas(64) std::uint64_t cached_tail_ = 0;  // consumer-local
};

}  // namespace clic
