// Microbenchmarks: per-request cost of every replacement policy and of
// the Space-Saving tracker. These bound the overhead the paper argues is
// "small" (constant expected time per request, Section 4) and support the
// claim that CLIC's adaptivity is cheap.
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "stream/lossy_counting.h"
#include "stream/space_saving.h"

namespace clic::bench {
namespace {

Trace SyntheticTrace(std::size_t n) {
  Trace trace;
  Rng rng(0xBEEF);
  ZipfGenerator zipf(100'000, 0.9);
  std::vector<HintSetId> hints;
  for (std::uint32_t i = 0; i < 64; ++i) {
    hints.push_back(trace.hints->Intern(HintVector{0, {i}}));
  }
  trace.requests.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Request r;
    r.page = zipf(rng);
    r.hint_set = hints[r.page % hints.size()];
    if (rng.Chance(0.3)) {
      r.op = OpType::kWrite;
      r.write_kind =
          rng.Chance(0.5) ? WriteKind::kReplacement : WriteKind::kRecovery;
    }
    trace.requests.push_back(r);
  }
  return trace;
}

const Trace& SharedSynthetic() {
  static const Trace trace = SyntheticTrace(1'000'000);
  return trace;
}

void PolicyThroughput(benchmark::State& state, PolicyKind kind) {
  const Trace& trace = SharedSynthetic();
  for (auto _ : state) {
    auto policy = MakePolicy(kind, 16'384, &trace, PaperClicOptions());
    benchmark::DoNotOptimize(Simulate(trace, *policy));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
  // requests/sec, the guardrail number bench/README.md tracks per policy.
  state.counters["requests_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(trace.size()),
      benchmark::Counter::kIsRate);
}

void RegisterPolicies() {
  for (PolicyKind kind :
       {PolicyKind::kLru, PolicyKind::kClock, PolicyKind::kArc,
        PolicyKind::kTwoQ, PolicyKind::kMq, PolicyKind::kTq,
        PolicyKind::kClic, PolicyKind::kOpt}) {
    const std::string name =
        std::string("Micro/requests_per_second/") +
        std::string(PolicyName(kind));
    benchmark::RegisterBenchmark(name.c_str(),
                                 [kind](benchmark::State& s) {
                                   PolicyThroughput(s, kind);
                                 })
        ->Unit(benchmark::kMillisecond);
  }
}
const int registered = (RegisterPolicies(), 0);

void SpaceSavingOffer(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  ZipfGenerator zipf(100'000, 1.0);
  SpaceSaving<std::uint64_t> ss(k);
  for (auto _ : state) {
    ss.Offer(zipf(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(SpaceSavingOffer)->Arg(10)->Arg(100)->Arg(1000);

void LossyCountingOffer(benchmark::State& state) {
  const double epsilon = 1.0 / static_cast<double>(state.range(0));
  Rng rng(7);
  ZipfGenerator zipf(100'000, 1.0);
  LossyCounting<std::uint64_t> lc(epsilon);
  for (auto _ : state) {
    lc.Offer(zipf(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(LossyCountingOffer)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace clic::bench
