// Microbenchmarks: per-request cost of every replacement policy and of
// the Space-Saving tracker. These bound the overhead the paper argues is
// "small" (constant expected time per request, Section 4) and support the
// claim that CLIC's adaptivity is cheap.
#include <chrono>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "stream/lossy_counting.h"
#include "stream/space_saving.h"

namespace clic::bench {
namespace {

void PolicyThroughput(benchmark::State& state, PolicyKind kind,
                      const std::string& name) {
  const Trace& trace = MicroSyntheticTrace();
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    auto policy = MakePolicy(kind, 16'384, &trace, PaperClicOptions());
    benchmark::DoNotOptimize(Simulate(trace, *policy));
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - t0;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
  // requests/sec, the guardrail number bench/README.md tracks per policy.
  state.counters["requests_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(trace.size()),
      benchmark::Counter::kIsRate);
  if (elapsed.count() > 0.0) {
    BenchJsonRow row;
    row.bench = name;
    row.requests_per_sec = static_cast<double>(state.iterations()) *
                           static_cast<double>(trace.size()) /
                           elapsed.count();
    row.batch = kSimulateBatch;  // Simulate's AccessBatch block size
    row.requests = trace.size();
    row.mode = "simulate";
    AppendBenchJson(row);
  }
}

void RegisterPolicies() {
  for (PolicyKind kind :
       {PolicyKind::kLru, PolicyKind::kClock, PolicyKind::kArc,
        PolicyKind::kTwoQ, PolicyKind::kMq, PolicyKind::kTq,
        PolicyKind::kClic, PolicyKind::kOpt}) {
    const std::string name =
        std::string("Micro/requests_per_second/") +
        std::string(PolicyName(kind));
    benchmark::RegisterBenchmark(name.c_str(),
                                 [kind, name](benchmark::State& s) {
                                   PolicyThroughput(s, kind, name);
                                 })
        ->Unit(benchmark::kMillisecond);
  }
}
const int registered = (RegisterPolicies(), 0);

void SpaceSavingOffer(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  ZipfGenerator zipf(100'000, 1.0);
  SpaceSaving<std::uint64_t> ss(k);
  for (auto _ : state) {
    ss.Offer(zipf(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(SpaceSavingOffer)->Arg(10)->Arg(100)->Arg(1000);

void LossyCountingOffer(benchmark::State& state) {
  const double epsilon = 1.0 / static_cast<double>(state.range(0));
  Rng rng(7);
  ZipfGenerator zipf(100'000, 1.0);
  LossyCounting<std::uint64_t> lc(epsilon);
  for (auto _ : state) {
    lc.Offer(zipf(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(LossyCountingOffer)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace clic::bench
