// Scalar vs batched hot path, per policy: the pre-batching replay loop
// (one virtual Access(), one branchy stats Record per request — what
// Simulate() shipped before the AccessBatch refactor) against the
// batched replay (one AccessBatch() per block plus one amortized stats
// pass), on identical fresh policies over the shared 1M-request
// synthetic Zipf trace. Reports requests_per_sec for both so the batch
// refactor's win is a number, not a claim — and verifies, untimed, that
// the two paths make bit-identical per-request hit/miss decisions (an
// order-sensitive FNV digest; any divergence aborts the binary loudly).
//
//   ./bench_micro_batch --benchmark_filter='MicroBatch/(LRU|CLIC)/'
//
// With CLIC_BENCH_JSON_OUT set, every benchmark appends a JSON-Lines
// row (mode "scalar" or "batch"), which is how CI materializes
// BENCH_PR4.json and checks the throughput floors.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "bench_util.h"

namespace clic::bench {
namespace {

constexpr std::size_t kCachePages = 16'384;
constexpr std::size_t kCachePagesXL = 262'144;

/// Order-sensitive digest of every hit/miss decision in a replay.
struct ReplayDigest {
  std::uint64_t hits = 0;
  std::uint64_t fnv = 1469598103934665603ull;

  void Add(bool hit) {
    hits += hit ? 1 : 0;
    fnv ^= hit ? 1u : 0u;
    fnv *= 1099511628211ull;
  }
  bool operator==(const ReplayDigest& o) const {
    return hits == o.hits && fnv == o.fnv;
  }
};

/// The replay loop as it existed before the batch refactor: virtual
/// dispatch and both stats accumulators touched once per request.
SimResult ScalarReplay(Policy& policy, const Trace& trace) {
  SimResult result;
  std::vector<CacheStats> clients(
      static_cast<std::size_t>(trace.MaxClient()) + 1);
  SeqNum seq = 0;
  for (const Request& r : trace.requests) {
    const bool hit = policy.Access(r, seq++);
    result.total.Record(r, hit);
    clients[r.client].Record(r, hit);
  }
  for (std::size_t i = 0; i < clients.size(); ++i) {
    if (clients[i].reads + clients[i].writes == 0) continue;
    result.per_client.emplace(static_cast<ClientId>(i), clients[i]);
  }
  return result;
}

/// The batched replay loop (mirrors sim/Simulate(): one AccessBatch per
/// block, one stats pass over the hit bytes, total folded at the end),
/// with the block size as a parameter.
SimResult BatchedReplay(Policy& policy, const Trace& trace,
                        std::size_t batch) {
  SimResult result;
  std::vector<CacheStats> clients(
      static_cast<std::size_t>(trace.MaxClient()) + 1);
  CacheStats* const client_stats = clients.data();
  const bool single_client = clients.size() == 1;
  std::vector<std::uint8_t> hits(batch);
  const Request* reqs = trace.requests.data();
  const std::size_t total = trace.size();
  for (std::size_t pos = 0; pos < total; pos += batch) {
    const std::size_t count = std::min(batch, total - pos);
    policy.AccessBatch(reqs + pos, pos, count, hits.data());
    if (single_client) {
      CacheStats& c = client_stats[0];
      for (std::size_t i = 0; i < count; ++i) {
        c.Record(reqs[pos + i], hits[i] != 0);
      }
    } else {
      for (std::size_t i = 0; i < count; ++i) {
        const Request& r = reqs[pos + i];
        client_stats[r.client].Record(r, hits[i] != 0);
      }
    }
  }
  for (std::size_t i = 0; i < clients.size(); ++i) {
    if (clients[i].reads + clients[i].writes == 0) continue;
    result.total += clients[i];
    result.per_client.emplace(static_cast<ClientId>(i), clients[i]);
  }
  return result;
}

ReplayDigest ScalarDigest(Policy& policy, const Trace& trace) {
  ReplayDigest d;
  SeqNum seq = 0;
  for (const Request& r : trace.requests) {
    d.Add(policy.Access(r, seq++));
  }
  return d;
}

ReplayDigest BatchedDigest(Policy& policy, const Trace& trace,
                           std::size_t batch) {
  ReplayDigest d;
  std::vector<std::uint8_t> hits(batch);
  const Request* reqs = trace.requests.data();
  const std::size_t total = trace.size();
  for (std::size_t pos = 0; pos < total; pos += batch) {
    const std::size_t count = std::min(batch, total - pos);
    policy.AccessBatch(reqs + pos, pos, count, hits.data());
    for (std::size_t i = 0; i < count; ++i) d.Add(hits[i] != 0);
  }
  return d;
}

/// The scalar path's per-request decisions, computed once per
/// (policy, trace, cache size) configuration.
const ReplayDigest& ScalarReference(PolicyKind kind, const Trace& trace,
                                    std::size_t cache_pages) {
  static std::map<std::tuple<int, const Trace*, std::size_t>, ReplayDigest>
      cache;
  const auto key =
      std::make_tuple(static_cast<int>(kind), &trace, cache_pages);
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto policy = MakePolicy(kind, cache_pages, &trace, PaperClicOptions());
    it = cache.emplace(key, ScalarDigest(*policy, trace)).first;
  }
  return it->second;
}

/// Untimed: asserts the batched path reproduces the scalar decisions
/// request for request. Aborting (not just flagging) keeps a broken
/// batched contract from ever producing a "fast" number.
void VerifyBatchedDecisions(PolicyKind kind, std::size_t batch,
                            const std::string& name, const Trace& trace,
                            std::size_t cache_pages) {
  auto policy = MakePolicy(kind, cache_pages, &trace, PaperClicOptions());
  const ReplayDigest batched = BatchedDigest(*policy, trace, batch);
  const ReplayDigest& reference = ScalarReference(kind, trace, cache_pages);
  if (!(batched == reference)) {
    std::fprintf(stderr,
                 "bench_micro_batch: %s DIVERGED from the scalar path "
                 "(batch=%zu): hits %llu vs %llu — the batched contract in "
                 "core/policy.h is broken\n",
                 name.c_str(), batch,
                 static_cast<unsigned long long>(batched.hits),
                 static_cast<unsigned long long>(reference.hits));
    std::exit(1);
  }
}

/// batch == 0 runs the scalar (pre-refactor) replay loop; otherwise the
/// batched loop with blocks of `batch`.
void MicroBatch(benchmark::State& state, PolicyKind kind, std::size_t batch,
                const std::string& name, const Trace& trace,
                std::size_t cache_pages) {
  if (batch != 0) VerifyBatchedDecisions(kind, batch, name, trace, cache_pages);

  SimResult result;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    auto policy = MakePolicy(kind, cache_pages, &trace, PaperClicOptions());
    result = batch == 0 ? ScalarReplay(*policy, trace)
                        : BatchedReplay(*policy, trace, batch);
    benchmark::DoNotOptimize(result);
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - t0;

  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
  state.counters["requests_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(trace.size()),
      benchmark::Counter::kIsRate);
  state.counters["read_hit_ratio"] = result.total.ReadHitRatio();
  if (elapsed.count() > 0.0) {
    BenchJsonRow row;
    row.bench = name;
    row.requests_per_sec = static_cast<double>(state.iterations()) *
                           static_cast<double>(trace.size()) /
                           elapsed.count();
    row.batch = batch;
    row.requests = trace.size();
    row.mode = batch == 0 ? "scalar" : "batch";
    AppendBenchJson(row);
  }
}

void RegisterMicroBatch() {
  // The classic guardrail workload, every policy in the zoo.
  for (PolicyKind kind :
       {PolicyKind::kLru, PolicyKind::kClock, PolicyKind::kArc,
        PolicyKind::kTwoQ, PolicyKind::kMq, PolicyKind::kTq,
        PolicyKind::kClic, PolicyKind::kOpt}) {
    for (std::size_t batch : {std::size_t{0}, std::size_t{256},
                              std::size_t{4096}}) {
      const std::string name =
          std::string("MicroBatch/") + PolicyName(kind) + "/" +
          (batch == 0 ? std::string("scalar")
                      : "batch:" + std::to_string(batch));
      benchmark::RegisterBenchmark(name.c_str(),
                                   [kind, batch, name](benchmark::State& s) {
                                     MicroBatch(s, kind, batch, name,
                                                MicroSyntheticTrace(),
                                                kCachePages);
                                   })
          ->Iterations(4)
          ->Unit(benchmark::kMillisecond);
    }
  }
  // Server-scale working set (page table + arenas overflow L2) for the
  // two policies the throughput floors track — where the batched
  // path's prefetch pipeline, not just the saved dispatch, shows up.
  for (PolicyKind kind : {PolicyKind::kLru, PolicyKind::kClic}) {
    for (std::size_t batch : {std::size_t{0}, std::size_t{4096}}) {
      const std::string name =
          std::string("MicroBatchXL/") + PolicyName(kind) + "/" +
          (batch == 0 ? std::string("scalar") : "batch:4096");
      benchmark::RegisterBenchmark(name.c_str(),
                                   [kind, batch, name](benchmark::State& s) {
                                     MicroBatch(s, kind, batch, name,
                                                MicroServerScaleTrace(),
                                                kCachePagesXL);
                                   })
          ->Iterations(2)
          ->Unit(benchmark::kMillisecond);
    }
  }
}
const int registered = (RegisterMicroBatch(), 0);

}  // namespace
}  // namespace clic::bench
