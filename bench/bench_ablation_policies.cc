// Ablation: extended policy comparison. Adds the related-work baselines
// (MQ, 2Q, CLOCK — Section 7) and a TQ write-bonus sweep to the Figure 6
// setting, on the DB2_C300 trace at 12K pages. The policy grid runs in
// parallel via `clic_sweep --figure=ablation`.
#include "bench_util.h"
#include "policies/tq.h"

namespace clic::bench {
namespace {

void TqBonus(benchmark::State& state, double bonus) {
  const Trace& trace = GetTrace("DB2_C300");
  SimResult result;
  for (auto _ : state) {
    TqPolicy tq(12'000, bonus);
    result = Simulate(trace, tq);
  }
  state.counters["read_hit_ratio"] = result.total.ReadHitRatio();
}

void RegisterAll() {
  sweep::SweepSpec spec = *sweep::FigureSpec("ablation");
  spec.clic = PaperClicOptions();
  RegisterSweepBenches("AblationPolicies", spec);

  for (double bonus : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    const std::string name =
        "AblationPolicies/DB2_C300/TQ_bonus=" + std::to_string(bonus);
    benchmark::RegisterBenchmark(
        name.c_str(), [bonus](benchmark::State& s) { TqBonus(s, bonus); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

const int registered = (RegisterAll(), 0);

}  // namespace
}  // namespace clic::bench
