// Shared infrastructure for the figure/table benches.
//
// Traces are generated at the DESIGN.md scaled lengths (capped by the
// CLIC_BENCH_REQUESTS environment variable if set) and cached on disk
// under CLIC_TRACE_CACHE_DIR (default: ./clic_trace_cache) through the
// process-wide sweep::TraceCache, so the fifteen bench binaries and
// clic_sweep never regenerate the same workloads.
#pragma once

#include <benchmark/benchmark.h>

#include <string>

#include "sim/policy_factory.h"
#include "sim/simulator.h"
#include "sweep/sweep.h"
#include "sweep/trace_cache.h"
#include "workload/trace_factory.h"

namespace clic::bench {

/// Returns the named trace, generated once per process and cached on
/// disk across processes. Thread-safe with per-trace granularity (see
/// sweep/trace_cache.h). Unknown names abort.
inline const Trace& GetTrace(const std::string& name) {
  return sweep::TraceCache::Global().Get(name);
}

/// CLIC options used throughout the evaluation (paper Section 6.1):
/// W scaled to 1e5, r = 1, Noutq = 5 per page, 1% metadata charge.
/// These are also ClicOptions' defaults; spelled out for readability.
inline ClicOptions PaperClicOptions() {
  ClicOptions options;
  options.window = 100'000;
  options.decay = 1.0;
  options.outqueue_per_page = 5.0;
  options.charge_metadata = true;
  return options;
}

/// Runs one (trace, policy, cache size) point and records the read hit
/// ratio as the benchmark's principal counter.
inline void RunPoint(benchmark::State& state, const Trace& trace,
                     PolicyKind kind, std::size_t cache_pages,
                     const ClicOptions& options = PaperClicOptions()) {
  SimResult result;
  for (auto _ : state) {
    auto policy = MakePolicy(kind, cache_pages, &trace, options);
    result = Simulate(trace, *policy);
  }
  state.counters["read_hit_ratio"] = result.total.ReadHitRatio();
  state.counters["reads"] = static_cast<double>(result.total.reads);
  state.counters["requests"] =
      static_cast<double>(result.total.reads + result.total.writes);
  state.SetItemsProcessed(static_cast<std::int64_t>(trace.size()) *
                          static_cast<std::int64_t>(state.iterations()));
}

/// Registers one benchmark per grid point of `spec`, named
/// `<prefix>/<trace>/<policy>/<cache_pages>` — the declarative form
/// shared by the Figure 6/7/8 and policy-ablation drivers. The same
/// spec fed to sweep::SweepRunner (what clic_sweep does) replays the
/// identical grid in parallel.
inline void RegisterSweepBenches(const std::string& prefix,
                                 const sweep::SweepSpec& spec) {
  for (const sweep::SweepPoint& p : sweep::ExpandGrid(spec)) {
    const std::string name = prefix + "/" + p.trace + "/" +
                             std::string(PolicyName(p.policy)) + "/" +
                             std::to_string(p.cache_pages);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [p, clic = spec.clic](benchmark::State& s) {
          RunPoint(s, GetTrace(p.trace), p.policy, p.cache_pages, clic);
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace clic::bench
