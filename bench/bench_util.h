// Shared infrastructure for the figure/table benches.
//
// Traces are generated at the DESIGN.md scaled lengths (capped by the
// CLIC_BENCH_REQUESTS environment variable if set) and cached on disk
// under CLIC_TRACE_CACHE_DIR (default: ./clic_trace_cache), so the
// fourteen bench binaries do not regenerate the same workloads.
#pragma once

#include <benchmark/benchmark.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <sys/stat.h>

#include "sim/policy_factory.h"
#include "sim/simulator.h"
#include "sim/trace_io.h"
#include "workload/trace_factory.h"

namespace clic::bench {

inline std::uint64_t RequestCap() {
  constexpr std::uint64_t kDefault = 2'000'000;  // full suite in minutes
  const char* env = std::getenv("CLIC_BENCH_REQUESTS");
  if (env == nullptr || *env == '\0') return kDefault;
  errno = 0;
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(env, &end, 10);
  if (errno != 0 || end == env || *end != '\0' || value == 0) {
    std::fprintf(stderr,
                 "CLIC_BENCH_REQUESTS='%s' is not a positive integer; "
                 "using default %llu\n",
                 env, static_cast<unsigned long long>(kDefault));
    return kDefault;
  }
  return value;
}

inline std::string CacheDir() {
  if (const char* env = std::getenv("CLIC_TRACE_CACHE_DIR")) return env;
  return "clic_trace_cache";
}

/// Returns the named trace, generated once per process and cached on disk
/// across processes. Thread-safe. Unknown names abort: silently replaying
/// an empty trace would report fake hit ratios.
inline const Trace& GetTrace(const std::string& name) {
  static std::mutex mutex;
  static std::map<std::string, std::unique_ptr<Trace>> traces;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = traces.find(name);
  if (it != traces.end()) return *it->second;

  std::uint64_t target = 0;
  bool known = false;
  for (const NamedTraceInfo& info : NamedTraces()) {
    if (info.name == name) {
      target = info.target_requests;
      known = true;
    }
  }
  if (!known) {
    std::fprintf(stderr, "GetTrace: unknown trace '%s' (see NamedTraces())\n",
                 name.c_str());
    std::exit(1);
  }
  target = std::min(target, RequestCap());

  const std::string dir = CacheDir();
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "GetTrace: mkdir('%s') failed: %s\n", dir.c_str(),
                 std::strerror(errno));
    std::exit(1);
  }
  // Cache key = name + target length + generator version: any of the
  // three changing invalidates the cached file.
  const std::string path = dir + "/" + name + "_" +
                           std::to_string(target) + "_g" +
                           std::to_string(kTraceGeneratorVersion) + ".trc";
  if (auto loaded = LoadTrace(path, name)) {
    it = traces.emplace(name, std::make_unique<Trace>(std::move(*loaded)))
             .first;
    return *it->second;
  }
  Trace generated = MakeNamedTrace(name, target);
  if (!SaveTrace(generated, path)) {
    std::fprintf(stderr, "GetTrace: warning: could not cache trace to %s\n",
                 path.c_str());
  }
  it = traces.emplace(name, std::make_unique<Trace>(std::move(generated)))
           .first;
  return *it->second;
}

/// CLIC options used throughout the evaluation (paper Section 6.1):
/// W scaled to 1e5, r = 1, Noutq = 5 per page, 1% metadata charge.
inline ClicOptions PaperClicOptions() {
  ClicOptions options;
  options.window = 100'000;
  options.decay = 1.0;
  options.outqueue_per_page = 5.0;
  options.charge_metadata = true;
  return options;
}

/// Runs one (trace, policy, cache size) point and records the read hit
/// ratio as the benchmark's principal counter.
inline void RunPoint(benchmark::State& state, const Trace& trace,
                     PolicyKind kind, std::size_t cache_pages,
                     const ClicOptions& options = PaperClicOptions()) {
  SimResult result;
  for (auto _ : state) {
    auto policy = MakePolicy(kind, cache_pages, &trace, options);
    result = Simulate(trace, *policy);
  }
  state.counters["read_hit_ratio"] = result.total.ReadHitRatio();
  state.counters["reads"] = static_cast<double>(result.total.reads);
  state.counters["requests"] =
      static_cast<double>(result.total.reads + result.total.writes);
  state.SetItemsProcessed(static_cast<std::int64_t>(trace.size()) *
                          static_cast<std::int64_t>(state.iterations()));
}

}  // namespace clic::bench
