// Shared infrastructure for the figure/table benches.
//
// Traces are generated at the DESIGN.md scaled lengths (capped by the
// CLIC_BENCH_REQUESTS environment variable if set) and cached on disk
// under CLIC_TRACE_CACHE_DIR (default: ./clic_trace_cache) through the
// process-wide sweep::TraceCache, so the eighteen bench binaries and
// clic_sweep never regenerate the same workloads — named paper traces
// and scenario-engine workloads alike.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/rng.h"
#include "sim/policy_factory.h"
#include "sim/simulator.h"
#include "sweep/sweep.h"
#include "sweep/trace_cache.h"
#include "workload/trace_factory.h"

#ifndef CLIC_GIT_REV
#define CLIC_GIT_REV "unknown"
#endif

namespace clic::bench {

/// Returns the named trace, generated once per process and cached on
/// disk across processes. Thread-safe with per-trace granularity (see
/// sweep/trace_cache.h). Unknown names abort.
inline const Trace& GetTrace(const std::string& name) {
  return sweep::TraceCache::Global().Get(name);
}

/// CLIC options used throughout the evaluation (paper Section 6.1):
/// W scaled to 1e5, r = 1, Noutq = 5 per page, 1% metadata charge.
/// These are also ClicOptions' defaults; spelled out for readability.
inline ClicOptions PaperClicOptions() {
  ClicOptions options;
  options.window = 100'000;
  options.decay = 1.0;
  options.outqueue_per_page = 5.0;
  options.charge_metadata = true;
  return options;
}

/// Runs one (trace, policy, cache size) point and records the read hit
/// ratio as the benchmark's principal counter.
inline void RunPoint(benchmark::State& state, const Trace& trace,
                     PolicyKind kind, std::size_t cache_pages,
                     const ClicOptions& options = PaperClicOptions()) {
  SimResult result;
  for (auto _ : state) {
    auto policy = MakePolicy(kind, cache_pages, &trace, options);
    result = Simulate(trace, *policy);
  }
  state.counters["read_hit_ratio"] = result.total.ReadHitRatio();
  state.counters["reads"] = static_cast<double>(result.total.reads);
  state.counters["requests"] =
      static_cast<double>(result.total.reads + result.total.writes);
  state.SetItemsProcessed(static_cast<std::int64_t>(trace.size()) *
                          static_cast<std::int64_t>(state.iterations()));
}

/// One row of the machine-readable perf log (see AppendBenchJson). The
/// repo's perf memory: CI runs the micro benches with
/// CLIC_BENCH_JSON_OUT=BENCH_PR4.json, uploads the file as an artifact,
/// and fails the job when the LRU / CLIC floors are undershot.
struct BenchJsonRow {
  std::string bench;            // benchmark name, e.g. Micro/.../LRU
  double requests_per_sec = 0;  // the headline throughput
  std::uint64_t batch = 0;      // AccessBatch block size; 0 = scalar path
  std::uint64_t requests = 0;   // requests replayed per iteration
  std::string mode;             // free-form: "scalar", "batch", "overload"
  /// Extra pre-rendered JSON members spliced verbatim into the object
  /// (e.g. "\"shed\":12,\"timed_out\":0"). The caller owns validity;
  /// tools/check_bench_floors.py reads the overload accounting fields
  /// from here. Empty = none.
  std::string extra;
};

/// Appends `row` (plus the build's git revision) as one self-contained
/// JSON object per line to $CLIC_BENCH_JSON_OUT. JSON-Lines on purpose:
/// several bench binaries append to one file from separate processes,
/// which a single JSON array could not survive. No-op when the env var
/// is unset.
inline void AppendBenchJson(const BenchJsonRow& row) {
  const char* path = std::getenv("CLIC_BENCH_JSON_OUT");
  if (path == nullptr || *path == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot append to CLIC_BENCH_JSON_OUT=%s\n",
                 path);
    return;
  }
  std::string line = "{\"bench\":\"";
  line.append(sweep::JsonEscaped(row.bench));
  line.append("\",\"requests_per_sec\":");
  sweep::AppendDouble(&line, row.requests_per_sec);
  line.append(",\"batch\":");
  line.append(std::to_string(row.batch));
  line.append(",\"requests\":");
  line.append(std::to_string(row.requests));
  line.append(",\"mode\":\"");
  line.append(sweep::JsonEscaped(row.mode));
  line.push_back('"');
  if (!row.extra.empty()) {
    line.push_back(',');
    line.append(row.extra);
  }
  line.append(",\"git_rev\":\"");
  line.append(sweep::JsonEscaped(CLIC_GIT_REV));
  line.append("\"}\n");
  std::fwrite(line.data(), 1, line.size(), f);
  std::fclose(f);
}

namespace detail {
inline Trace MakeMicroTrace(std::uint64_t pages, double zipf_z,
                            std::size_t n) {
  Trace t;
  Rng rng(0xBEEF);
  ZipfGenerator zipf(pages, zipf_z);
  std::vector<HintSetId> hints;
  for (std::uint32_t i = 0; i < 64; ++i) {
    hints.push_back(t.hints->Intern(HintVector{0, {i}}));
  }
  t.requests.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Request r;
    r.page = zipf(rng);
    r.hint_set = hints[r.page % hints.size()];
    if (rng.Chance(0.3)) {
      r.op = OpType::kWrite;
      r.write_kind =
          rng.Chance(0.5) ? WriteKind::kReplacement : WriteKind::kRecovery;
    }
    t.requests.push_back(r);
  }
  t.CacheMaxClient();
  return t;
}
}  // namespace detail

/// The 1M-request synthetic Zipf trace (100k pages, 30% writes, 64 hint
/// sets) the micro throughput and batch-vs-scalar benches replay.
/// Deliberately independent of CLIC_BENCH_REQUESTS so the guardrail
/// numbers in bench/README.md are comparable across runs.
inline const Trace& MicroSyntheticTrace() {
  static const Trace trace = detail::MakeMicroTrace(100'000, 0.9, 1'000'000);
  return trace;
}

/// Server-scale variant: 4M pages, so the page table and slot arenas
/// overflow L2 and every access path pays real memory latency — the
/// regime heavy multi-tenant traffic puts a storage server in, and the
/// one where the batched hot path's software prefetching matters most.
inline const Trace& MicroServerScaleTrace() {
  static const Trace trace =
      detail::MakeMicroTrace(4'000'000, 0.8, 4'000'000);
  return trace;
}

/// Registers one benchmark per grid point of `spec`, named
/// `<prefix>/<trace>/<policy>/<cache_pages>` — the declarative form
/// shared by the Figure 6/7/8 and policy-ablation drivers. The same
/// spec fed to sweep::SweepRunner (what clic_sweep does) replays the
/// identical grid in parallel.
inline void RegisterSweepBenches(const std::string& prefix,
                                 const sweep::SweepSpec& spec) {
  for (const sweep::SweepPoint& p : sweep::ExpandGrid(spec)) {
    const std::string name = prefix + "/" + p.trace + "/" +
                             std::string(PolicyName(p.policy)) + "/" +
                             std::to_string(p.cache_pages);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [p, clic = spec.clic](benchmark::State& s) {
          RunPoint(s, GetTrace(p.trace), p.policy, p.cache_pages, clic);
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace clic::bench
