// Wire-level serving: throughput and robustness of the epoll network
// front end (server/net/) driving the sharded cache server over real
// loopback sockets. Two claims this bench pins down (bench/README.md
// records the baselines):
//
//   1. WireServing — closed-loop wire throughput with p50/p99
//      send-to-status latency, clients x 1 and x kClients.
//   2. WireResilience — misbehaving peers cost the healthy clients
//      almost nothing: with slowloris antagonists (valid header, then
//      silence, evicted by the read deadline) and churn antagonists
//      (checksum-corrupted frames, typed-error-closed, reconnecting in
//      a loop) hammering the same server, the healthy clients sustain
//      >= 90% of their fault-free wire throughput (healthy_ratio).
//
//   Accounting is exact at the wire edge in both: every request that
//   arrived in a frame whose header parsed is served, rejected by
//   admission, or rejected by the fail-closed parser — the bench
//   aborts on any imbalance, and the JSON rows (mode="net") carry the
//   raw fields for tools/check_bench_floors.py.
//
//   bench_net_serving [--workload=NAME_OR_SPEC]
//                     [--benchmark_filter=WireResilience/.*]
//
// The antagonists are real misbehaving TCP peers, not fault-plan
// clauses: the point is that the server's deadlines and fail-closed
// parsing contain actual protocol abuse, with the `net:` fault clauses
// covered separately by tests/test_net_server.cc and the CI chaos
// smoke.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/cli_util.h"
#include "server/net/net_server.h"
#include "server/net/wire_client.h"

namespace clic::bench {
namespace {

constexpr std::size_t kShards = 4;
constexpr std::size_t kClients = 4;
constexpr std::size_t kBatch = 256;
// 400 closed-loop batches per client: long enough (tens of ms on
// loopback) for the slowloris antagonists to cycle through several
// read-deadline evictions, short enough for CI.
constexpr std::uint64_t kPerClientBatches = 400;
constexpr double kReadTimeoutMs = 5.0;
// One of each abuse class. On a multi-core box their cost to the
// healthy clients is the server-side handling alone (the >= 90%
// claim); on a 1-core CI box they also steal the only CPU the server
// is saturating, which is why the floors gate prints healthy_ratio for
// the record instead of hard-failing (rows carry cores_detected).
constexpr std::size_t kSlowloris = 1;
constexpr std::size_t kChurn = 1;

[[noreturn]] void LedgerFailure(const char* what,
                                const server::AdmissionStats& a,
                                const server::net::NetStats& n,
                                const server::net::WireLoadResult& w) {
  std::fprintf(
      stderr,
      "bench_net_serving: WIRE LEDGER BROKEN (%s): adm submitted=%llu "
      "applied=%llu shed=%llu timed_out=%llu expired=%llu stopped=%llu | "
      "net frames=%llu frame_requests=%llu rejected=%llu/%llu | client "
      "submitted=%llu applied=%llu conn_lost=%llu\n",
      what, static_cast<unsigned long long>(a.submitted_requests),
      static_cast<unsigned long long>(a.applied_requests),
      static_cast<unsigned long long>(a.shed_requests),
      static_cast<unsigned long long>(a.timed_out_requests),
      static_cast<unsigned long long>(a.expired_requests),
      static_cast<unsigned long long>(a.stopped_requests),
      static_cast<unsigned long long>(n.frames),
      static_cast<unsigned long long>(n.frame_requests),
      static_cast<unsigned long long>(n.rejected_frames),
      static_cast<unsigned long long>(n.rejected_requests),
      static_cast<unsigned long long>(w.submitted_requests),
      static_cast<unsigned long long>(w.applied_requests),
      static_cast<unsigned long long>(w.conn_lost_requests));
  std::abort();
}

/// The wire-edge ledger, checked exactly: (1) every well-formed frame's
/// requests reached Submit (net.frame_requests == adm.submitted); (2)
/// the client-side tally of status replies balances against what it
/// sent. Antagonist traffic only ever lands in rejected_*.
void CheckWireLedger(const server::AdmissionStats& a,
                     const server::net::NetStats& n,
                     const server::net::WireLoadResult& w) {
  if (a.submitted_requests != n.frame_requests ||
      a.submitted_batches != n.frames) {
    LedgerFailure("frames vs submits", a, n, w);
  }
  if (w.submitted_requests !=
      w.applied_requests + w.shed_requests + w.timed_out_requests +
          w.expired_requests + w.stopped_requests + w.conn_lost_requests) {
    LedgerFailure("client request ledger", a, n, w);
  }
  if (w.submitted_batches !=
      w.applied_batches + w.shed_batches + w.timed_out_batches +
          w.expired_batches + w.stopped_batches + w.conn_lost_batches) {
    LedgerFailure("client batch ledger", a, n, w);
  }
}

server::net::NetServerOptions MakeServerOptions(std::size_t conn_limit,
                                                double read_timeout_ms) {
  server::net::NetServerOptions o;
  o.listen_addr = "127.0.0.1";
  o.port = 0;  // ephemeral
  o.io_threads = 2;
  o.conn_limit = conn_limit;
  o.read_timeout_ms = read_timeout_ms;
  o.max_batch = 4096;
  o.server.shards = kShards;
  o.server.cache_pages = 12'000;
  o.server.policy = PolicyKind::kLru;
  o.server.max_consumers = static_cast<unsigned>(kShards);
  return o;
}

/// Blocking loopback connect for the antagonist threads. Returns -1 on
/// failure (caller backs off and retries).
int RawConnect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// Reads until the server closes the connection (it always does after
/// an error reply or an eviction); the bytes themselves are discarded.
void DrainUntilClose(int fd) {
  char buf[256];
  while (::read(fd, buf, sizeof(buf)) > 0) {
  }
}

/// Slowloris antagonist: sends a syntactically valid frame prefix
/// (full header announcing a kBatch-request batch, plus a few payload
/// bytes) and then goes silent, holding a connection slot until the
/// read deadline evicts it. Loops until stopped.
void SlowlorisLoop(std::uint16_t port, const std::string& frame,
                   std::atomic<bool>* stop, std::atomic<std::uint64_t>* cycles) {
  const std::size_t prefix = server::net::kFrameHeaderBytes + 4;
  while (!stop->load(std::memory_order_acquire)) {
    const int fd = RawConnect(port);
    if (fd < 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    if (::write(fd, frame.data(), prefix) ==
        static_cast<ssize_t>(prefix)) {
      DrainUntilClose(fd);  // blocks until the eviction closes us
      cycles->fetch_add(1, std::memory_order_relaxed);
    }
    ::close(fd);
  }
}

/// Churn antagonist: sends a complete, well-formed frame with one
/// payload byte flipped — the header parses (so the server knows how
/// many requests it is rejecting) but the FNV-1a checksum fails, the
/// parser poisons, and the connection gets a typed error and a close.
/// Reconnects every millisecond: connection-table churn plus a steady
/// stream of wire-rejected requests for the ledger. The pause keeps
/// the measurement about protocol abuse, not about a busy-loop peer
/// monopolising a shared CPU core on a small CI box — the server's
/// cost per churn cycle (accept, parse, typed reject, close) is what
/// the healthy_ratio is supposed to price.
void ChurnLoop(std::uint16_t port, const std::string& frame,
               std::atomic<bool>* stop, std::atomic<std::uint64_t>* cycles) {
  std::string corrupt = frame;
  corrupt[server::net::kFrameHeaderBytes + 1] ^= 0xFF;
  while (!stop->load(std::memory_order_acquire)) {
    const int fd = RawConnect(port);
    if (fd >= 0) {
      if (::write(fd, corrupt.data(), corrupt.size()) ==
          static_cast<ssize_t>(corrupt.size())) {
        DrainUntilClose(fd);
        cycles->fetch_add(1, std::memory_order_relaxed);
      }
      ::close(fd);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

/// Emits one mode="net" JSON row. `submitted` covers every request that
/// arrived in a frame whose header parsed — well-formed or rejected —
/// so the floors gate's submitted == served + ... + wire_rejected
/// balance is exact by construction and any lost write breaks it.
void AppendNetRow(const std::string& name,
                  const server::AdmissionStats& a,
                  const server::net::NetStats& n,
                  const server::net::WireLoadResult& w,
                  double healthy_ratio) {
  BenchJsonRow row;
  row.bench = name;
  row.requests_per_sec = w.throughput_rps;
  row.batch = kBatch;
  row.requests = a.applied_requests;
  row.mode = "net";
  std::string extra = "\"submitted\":";
  extra.append(std::to_string(a.submitted_requests + n.rejected_requests));
  extra.append(",\"served\":");
  extra.append(std::to_string(a.applied_requests));
  extra.append(",\"shed\":");
  extra.append(std::to_string(a.shed_requests));
  extra.append(",\"timed_out\":");
  extra.append(std::to_string(a.timed_out_requests));
  extra.append(",\"expired\":");
  extra.append(std::to_string(a.expired_requests));
  extra.append(",\"stopped\":");
  extra.append(std::to_string(a.stopped_requests));
  extra.append(",\"wire_rejected\":");
  extra.append(std::to_string(n.rejected_requests));
  extra.append(",\"rejected_frames\":");
  extra.append(std::to_string(n.rejected_frames));
  extra.append(",\"evicted_read\":");
  extra.append(std::to_string(n.evicted_read));
  extra.append(",\"accepted\":");
  extra.append(std::to_string(n.accepted));
  extra.append(",\"conn_lost\":");
  extra.append(std::to_string(w.conn_lost_requests));
  extra.append(",\"cores_detected\":");
  extra.append(
      std::to_string(std::max(1u, std::thread::hardware_concurrency())));
  extra.append(",\"wire_p50_us\":");
  sweep::AppendDouble(&extra, w.p50_us);
  extra.append(",\"wire_p99_us\":");
  sweep::AppendDouble(&extra, w.p99_us);
  if (healthy_ratio >= 0.0) {
    extra.append(",\"healthy_ratio\":");
    sweep::AppendDouble(&extra, healthy_ratio);
  }
  row.extra = std::move(extra);
  AppendBenchJson(row);
}

/// One serve of the workload over loopback: start a NetServer on an
/// ephemeral port, drive it closed-loop with RunWireLoad, drain, check
/// the ledger. Returns the client-side result plus the quiescent
/// server-side stats through the out-params.
server::net::WireLoadResult ServeOnce(const Trace& trace,
                                      std::size_t clients,
                                      const server::net::NetServerOptions& so,
                                      server::AdmissionStats* adm,
                                      server::net::NetStats* net) {
  server::net::NetServer srv(so);
  server::net::WireLoadOptions lo;
  lo.port = srv.port();
  lo.clients = clients;
  lo.batch_size = kBatch;
  lo.request_budget = kPerClientBatches * kBatch * clients;
  server::net::WireLoadResult w = server::net::RunWireLoad(trace, lo);
  srv.Drain();
  *adm = srv.cache().TotalAdmission();
  *net = srv.Stats();
  CheckWireLedger(*adm, *net, w);
  return w;
}

void WireServing(benchmark::State& state, const std::string& workload,
                 const std::string& name, std::size_t clients) {
  const Trace& trace = GetTrace(workload);
  server::AdmissionStats adm;
  server::net::NetStats net;
  server::net::WireLoadResult w;
  for (auto _ : state) {
    w = ServeOnce(trace, clients, MakeServerOptions(clients, 0.0), &adm,
                  &net);
  }
  state.counters["requests_per_sec"] = w.throughput_rps;
  state.counters["wire_p50_us"] = w.p50_us;
  state.counters["wire_p99_us"] = w.p99_us;
  state.counters["served"] = static_cast<double>(adm.applied_requests);
  state.SetItemsProcessed(static_cast<std::int64_t>(adm.applied_requests));
  AppendNetRow(name, adm, net, w, -1.0);
}

void WireResilience(benchmark::State& state, const std::string& workload,
                    const std::string& name) {
  const Trace& trace = GetTrace(workload);

  // Antagonist frame material: one well-formed kBatch-request frame
  // built from the head of the workload (content is irrelevant — the
  // slowloris peer never finishes it, the churn peer corrupts it).
  std::string frame;
  server::net::AppendBatchFrame(trace.requests.data(),
                                std::min<std::size_t>(kBatch,
                                                      trace.requests.size()),
                                1, &frame);

  // Each rep runs both sides and keeps its best throughput: a single
  // scheduler preemption on a small CI box swamps a tens-of-ms run,
  // and the sustainable-rate ratio is what the >= 90% claim is about.
  constexpr int kReps = 2;
  server::AdmissionStats adm;
  server::net::NetStats net;
  server::net::WireLoadResult base, faulted;
  double best_base = 0.0, best_faulted = 0.0;
  std::uint64_t slow_cycles = 0, churn_cycles = 0;
  for (auto _ : state) {
    for (int rep = 0; rep < kReps; ++rep) {
      // Fault-free baseline: same server config (read deadline armed,
      // connection-table headroom present) minus the antagonists, so
      // the ratio isolates exactly the cost of the abuse.
      const auto so = MakeServerOptions(kClients + kSlowloris + kChurn + 4,
                                        kReadTimeoutMs);
      {
        server::AdmissionStats a;
        server::net::NetStats n;
        base = ServeOnce(trace, kClients, so, &a, &n);
        best_base = std::max(best_base, base.throughput_rps);
      }

      // Antagonist pass: the same closed-loop healthy load with
      // slowloris + churn peers hammering the same port throughout.
      server::net::NetServer srv(so);
      std::atomic<bool> stop{false};
      std::atomic<std::uint64_t> slow{0}, churn{0};
      std::vector<std::thread> antagonists;
      for (std::size_t i = 0; i < kSlowloris; ++i) {
        antagonists.emplace_back(SlowlorisLoop, srv.port(), frame, &stop,
                                 &slow);
      }
      for (std::size_t i = 0; i < kChurn; ++i) {
        antagonists.emplace_back(ChurnLoop, srv.port(), frame, &stop,
                                 &churn);
      }
      server::net::WireLoadOptions lo;
      lo.port = srv.port();
      lo.clients = kClients;
      lo.batch_size = kBatch;
      lo.request_budget = kPerClientBatches * kBatch * kClients;
      faulted = server::net::RunWireLoad(trace, lo);
      stop.store(true, std::memory_order_release);
      for (std::thread& t : antagonists) t.join();
      srv.Drain();
      adm = srv.cache().TotalAdmission();
      net = srv.Stats();
      CheckWireLedger(adm, net, faulted);
      best_faulted = std::max(best_faulted, faulted.throughput_rps);
      slow_cycles += slow.load(std::memory_order_relaxed);
      churn_cycles += churn.load(std::memory_order_relaxed);
    }
  }

  const double ratio = best_base > 0 ? best_faulted / best_base : 0.0;
  // The row and counters report the best faulted rate — the same
  // sustainable-rate estimate the ratio's numerator uses.
  faulted.throughput_rps = best_faulted;
  state.counters["healthy_ratio"] = ratio;
  state.counters["requests_per_sec"] = best_faulted;
  state.counters["baseline_rps"] = best_base;
  state.counters["wire_p99_us"] = faulted.p99_us;
  state.counters["slowloris_evictions"] =
      static_cast<double>(net.evicted_read);
  state.counters["churn_rejects"] = static_cast<double>(churn_cycles);
  state.SetItemsProcessed(static_cast<std::int64_t>(adm.applied_requests));

  if (net.evicted_read == 0 || net.rejected_requests == 0) {
    // The antagonists must actually have bitten — a resilience number
    // measured against peers that never misbehaved is vacuous.
    std::fprintf(stderr,
                 "bench_net_serving: antagonists did not engage "
                 "(evicted_read=%llu wire_rejected=%llu slowloris=%llu "
                 "churn=%llu)\n",
                 static_cast<unsigned long long>(net.evicted_read),
                 static_cast<unsigned long long>(net.rejected_requests),
                 static_cast<unsigned long long>(slow_cycles),
                 static_cast<unsigned long long>(churn_cycles));
    std::abort();
  }
  AppendNetRow(name, adm, net, faulted, ratio);
}

void RegisterNetServing(const std::string& workload) {
  for (std::size_t clients : {std::size_t{1}, kClients}) {
    const std::string name = std::string("WireServing/") + workload +
                             "/clients:" + std::to_string(clients) +
                             "/batch:" + std::to_string(kBatch);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [workload, name, clients](benchmark::State& s) {
          WireServing(s, workload, name, clients);
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  const std::string name =
      std::string("WireResilience/") + workload + "/slow-readers";
  benchmark::RegisterBenchmark(name.c_str(),
                               [workload, name](benchmark::State& s) {
                                 WireResilience(s, workload, name);
                               })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

}  // namespace
}  // namespace clic::bench

int main(int argc, char** argv) {
  std::string workload = "DB2_C60";
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--workload=";
    if (arg.rfind(prefix, 0) == 0) {
      workload = arg.substr(prefix.size());
    } else {
      args.push_back(argv[i]);
    }
  }
  clic::cli::RequireKnownWorkload("bench_net_serving", "--workload",
                                  workload);
  clic::bench::RegisterNetServing(workload);
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
