// Figure 11: multiple storage clients. Three DB2 TPC-C clients (the C60,
// C300 and C540 traces) are interleaved round-robin and share one
// 18K-page CLIC cache (k = 100); for comparison, each full-length trace
// runs against a private 6K-page CLIC cache (equal static partitioning).
// The bench reports the per-client and overall read hit ratios of both
// configurations — the bars of Figure 11.
#include <memory>
#include <mutex>

#include "bench_util.h"
#include "sim/trace_ops.h"

namespace clic::bench {
namespace {

constexpr const char* kClients[3] = {"DB2_C60", "DB2_C300", "DB2_C540"};

const Trace& MergedTrace() {
  static std::mutex mutex;
  static std::unique_ptr<Trace> merged;
  std::lock_guard<std::mutex> lock(mutex);
  if (!merged) {
    merged = std::make_unique<Trace>(
        Interleave("3xTPCC", {&GetTrace(kClients[0]), &GetTrace(kClients[1]),
                              &GetTrace(kClients[2])}));
  }
  return *merged;
}

ClicOptions Fig11Options() {
  ClicOptions options = PaperClicOptions();
  options.tracker = TrackerKind::kSpaceSaving;
  options.top_k = 100;
  return options;
}

void SharedCache(benchmark::State& state) {
  const Trace& merged = MergedTrace();
  SimResult result;
  for (auto _ : state) {
    ClicPolicy clic(18'000, Fig11Options());
    result = Simulate(merged, clic);
  }
  for (int i = 0; i < 3; ++i) {
    const auto it = result.per_client.find(static_cast<ClientId>(i));
    state.counters[std::string(kClients[i]) + "_hit_ratio"] =
        it == result.per_client.end() ? 0.0 : it->second.ReadHitRatio();
  }
  state.counters["overall_hit_ratio"] = result.total.ReadHitRatio();
}

void PrivateCaches(benchmark::State& state) {
  double hits = 0.0, reads = 0.0;
  std::map<std::string, double> per_client;
  for (auto _ : state) {
    hits = reads = 0.0;
    for (const char* client : kClients) {
      ClicPolicy clic(6'000, Fig11Options());
      const SimResult r = Simulate(GetTrace(client), clic);
      per_client[client] = r.total.ReadHitRatio();
      hits += static_cast<double>(r.total.read_hits);
      reads += static_cast<double>(r.total.reads);
    }
  }
  for (const auto& [client, ratio] : per_client) {
    state.counters[client + "_hit_ratio"] = ratio;
  }
  state.counters["overall_hit_ratio"] = reads == 0.0 ? 0.0 : hits / reads;
}

BENCHMARK(SharedCache)->Name("Fig11/shared_18K")->Iterations(1)->Unit(
    benchmark::kMillisecond);
BENCHMARK(PrivateCaches)
    ->Name("Fig11/private_3x6K")
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace clic::bench
