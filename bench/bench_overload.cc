// Overload resilience: throughput and degradation of the online cache
// server under an injected single-shard stall, across an admission
// policy x queue-cap x burst grid. The proof this bench exists to pin
// down (bench/README.md records the baselines):
//
//   1. With bounded admission, a stalled shard degrades only the
//      traffic routed at it: clients of the healthy shards sustain
//      >= 90% of their fault-free closed-loop throughput.
//   2. Accounting is exact under chaos: submitted == applied + shed +
//      timed_out + expired + stopped, request- and batch-granular.
//      The bench aborts on any imbalance, so a CI run doubles as the
//      accounting gate.
//
//   bench_overload [--workload=NAME_OR_SPEC]
//                  [--benchmark_filter=Overload/.*/shed/.*]
//
// Traffic model: the workload is hash-partitioned by shard and each
// client's batches target exactly one shard (what a routing front end
// produces), so shard 0's stall pressure lands on client 0 alone.
// Client 0 drives open-loop (SubmitAsync) into the stall; the healthy
// clients drive closed-loop so their per-driver wall time measures
// real end-to-end drain speed. Each grid point first runs fault-free
// for the baseline, then with the stall plan.
//
// Counters: nonstalled_ratio (min healthy-client faulted/baseline
// throughput ratio — the headline), shed_rate / timeout_rate /
// expired_rate over client 0's offered load, and drain p50/p99 under
// faults. JSON rows carry mode="overload" plus the raw accounting
// fields for tools/check_bench_floors.py.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/cli_util.h"
#include "server/cache_server.h"
#include "server/fault_injection.h"

namespace clic::bench {
namespace {

constexpr std::size_t kShards = 4;
constexpr std::size_t kBatch = 256;
// 40 batches per client per pass: big enough that the healthy clients'
// wall times are measurable, small enough that the worst grid point
// (block admission riding out every stall) stays in CI budget.
constexpr std::uint64_t kPerClientRequests = 40 * kBatch;
constexpr double kStallMs = 20.0;
constexpr double kWatchdogMs = 10.0;

struct DriverOutcome {
  std::uint64_t submitted_batches = 0;
  double wall_seconds = 0.0;  // closed-loop drivers: submit-to-applied
};

struct RunOutcome {
  server::AdmissionStats adm;
  std::vector<std::uint64_t> shard_requests;  // applied, per shard
  std::vector<DriverOutcome> drivers;
  std::uint64_t watchdog_sheds = 0;
  unsigned consumers = 0;  // owning-consumer threads the server ran
  double wall_seconds = 0.0;
  double drain_p50_us = 0.0;
  double drain_p99_us = 0.0;
};

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t rank = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(sorted.size() - 1),
                       q * static_cast<double>(sorted.size() - 1)));
  return sorted[rank];
}

[[noreturn]] void AccountingFailure(const char* what,
                                    const server::AdmissionStats& a) {
  std::fprintf(
      stderr,
      "bench_overload: ACCOUNTING BROKEN (%s): submitted=%llu/%llu "
      "enqueued=%llu applied=%llu shed=%llu timed_out=%llu expired=%llu "
      "stopped=%llu (batches/requests)\n",
      what, static_cast<unsigned long long>(a.submitted_batches),
      static_cast<unsigned long long>(a.submitted_requests),
      static_cast<unsigned long long>(a.enqueued_batches),
      static_cast<unsigned long long>(a.applied_batches),
      static_cast<unsigned long long>(a.shed_batches),
      static_cast<unsigned long long>(a.timed_out_batches),
      static_cast<unsigned long long>(a.expired_batches),
      static_cast<unsigned long long>(a.stopped_batches));
  std::abort();
}

/// Every batch must be accounted for exactly once; see the
/// AdmissionStats invariants in server/cache_server.h.
void CheckAccounting(const server::AdmissionStats& a,
                     std::uint64_t driver_submitted_batches) {
  if (a.submitted_batches != driver_submitted_batches) {
    AccountingFailure("driver/server submitted mismatch", a);
  }
  if (a.submitted_batches != a.applied_batches + a.shed_batches +
                                 a.timed_out_batches + a.expired_batches +
                                 a.stopped_batches) {
    AccountingFailure("batch ledger imbalance", a);
  }
  if (a.submitted_requests != a.applied_requests + a.shed_requests +
                                  a.timed_out_requests + a.expired_requests +
                                  a.stopped_requests) {
    AccountingFailure("request ledger imbalance", a);
  }
}

/// One full serve of the partitioned workload. Client c's batches all
/// hash to shard c. Client 0 is open-loop; clients 1.. are closed-loop
/// with per-driver wall measured submit-to-applied.
RunOutcome RunOnce(const std::vector<Trace>& parts,
                   server::AdmissionPolicy admission, std::size_t queue_cap,
                   std::uint64_t burst, const server::fault::FaultPlan* plan) {
  server::ServerOptions options;
  options.shards = kShards;
  options.cache_pages = 12'000;
  options.policy = PolicyKind::kLru;
  // One owning consumer per shard even on a small CI box: a stalled
  // owner sleeps, so the healthy owners keep their shards fed.
  options.max_consumers = static_cast<unsigned>(kShards);
  options.queue_cap = queue_cap;
  options.admission = admission;
  options.submit_timeout_ms = 5.0;
  options.batch_deadline_ms = 50.0;
  options.watchdog_ms = kWatchdogMs;
  options.record_drain_latency = true;
  options.fault = plan;

  server::CacheServer server(options, kShards);
  RunOutcome out;
  out.drivers.resize(kShards);

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> drivers;
  for (std::size_t c = 0; c < kShards; ++c) {
    drivers.emplace_back([&, c] {
      const std::vector<Request>& reqs = parts[c].requests;
      const std::uint64_t n =
          std::min<std::uint64_t>(reqs.size(), kPerClientRequests);
      DriverOutcome& d = out.drivers[c];
      const auto t0 = std::chrono::steady_clock::now();
      for (std::uint64_t pass = 0; pass < burst; ++pass) {
        for (std::uint64_t pos = 0; pos < n; pos += kBatch) {
          const std::size_t count =
              static_cast<std::size_t>(std::min<std::uint64_t>(kBatch, n - pos));
          ++d.submitted_batches;
          if (c == 0) {
            server.SubmitAsync(c, reqs.data() + pos, count);
          } else {
            server.Submit(c, reqs.data() + pos, count);
          }
        }
      }
      server.Finish(c);
      // For closed-loop drivers the loop only exits once the last batch
      // was applied, so this really is end-to-end drain time.
      d.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
    });
  }
  for (std::thread& t : drivers) t.join();
  server.Shutdown();
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  out.adm = server.TotalAdmission();
  out.watchdog_sheds = server.watchdog_sheds();
  out.consumers = server.consumers();
  for (const CacheStats& s : server.PerShardStats()) {
    out.shard_requests.push_back(s.reads + s.writes);
  }
  const std::vector<double> drain_us = server.DrainLatenciesUs();
  out.drain_p50_us = Percentile(drain_us, 0.50);
  out.drain_p99_us = Percentile(drain_us, 0.99);

  std::uint64_t driver_batches = 0;
  for (const DriverOutcome& d : out.drivers) {
    driver_batches += d.submitted_batches;
  }
  CheckAccounting(out.adm, driver_batches);
  return out;
}

void Overload(benchmark::State& state, const std::string& workload,
              const std::string& name, server::AdmissionPolicy admission,
              std::size_t queue_cap, std::uint64_t burst) {
  const Trace& trace = GetTrace(workload);
  const std::vector<Trace> parts = server::PartitionByShard(trace, kShards);
  for (const Trace& p : parts) {
    if (p.requests.size() < kBatch) {
      std::fprintf(stderr,
                   "bench_overload: workload '%s' leaves shard partition "
                   "'%s' with %zu < %zu requests\n",
                   workload.c_str(), p.name.c_str(), p.requests.size(),
                   kBatch);
      std::abort();
    }
  }

  // A long run of 20ms stalls on shard 0: slow enough to trip the 10ms
  // watchdog, long enough to outlast the run.
  server::fault::FaultPlan plan;
  plan.burst = burst;
  server::fault::ShardStall stall;
  stall.shard = 0;
  stall.after_drain = 0;
  stall.drains = 1'000'000;
  stall.ms = kStallMs;
  plan.stalls.push_back(stall);

  // A healthy client drains its whole stream in a few hundred
  // microseconds, where a single scheduler preemption swamps the
  // measurement; each side gets kReps runs and each driver keeps its
  // best wall — the sustainable-throughput estimate the >= 90%
  // criterion is about.
  constexpr int kReps = 3;
  std::vector<double> base_wall(kShards, 1e30), fault_wall(kShards, 1e30);
  RunOutcome base, faulted;
  for (auto _ : state) {
    for (int rep = 0; rep < kReps; ++rep) {
      base = RunOnce(parts, admission, queue_cap, burst, nullptr);
      faulted = RunOnce(parts, admission, queue_cap, burst, &plan);
      for (std::size_t c = 0; c < kShards; ++c) {
        base_wall[c] = std::min(base_wall[c], base.drivers[c].wall_seconds);
        fault_wall[c] =
            std::min(fault_wall[c], faulted.drivers[c].wall_seconds);
      }
    }
  }

  // Headline: the worst healthy client's throughput retention (both
  // sides replay the identical stream, so the wall ratio IS the
  // throughput ratio).
  double ratio = 1.0;
  for (std::size_t c = 1; c < kShards; ++c) {
    if (fault_wall[c] > 0) {
      ratio = std::min(ratio, base_wall[c] / fault_wall[c]);
    }
  }

  const server::AdmissionStats& a = faulted.adm;
  const double offered = static_cast<double>(a.submitted_requests);
  state.counters["nonstalled_ratio"] = ratio;
  state.counters["shed_rate"] =
      offered > 0 ? static_cast<double>(a.shed_requests) / offered : 0.0;
  state.counters["timeout_rate"] =
      offered > 0 ? static_cast<double>(a.timed_out_requests) / offered : 0.0;
  state.counters["expired_rate"] =
      offered > 0 ? static_cast<double>(a.expired_requests) / offered : 0.0;
  state.counters["drain_p50_us"] = faulted.drain_p50_us;
  state.counters["drain_p99_us"] = faulted.drain_p99_us;
  state.counters["watchdog_sheds"] =
      static_cast<double>(faulted.watchdog_sheds);
  const double applied_rps =
      faulted.wall_seconds > 0
          ? static_cast<double>(a.applied_requests) / faulted.wall_seconds
          : 0.0;
  state.counters["requests_per_sec"] = applied_rps;
  state.SetItemsProcessed(static_cast<std::int64_t>(a.applied_requests));

  BenchJsonRow row;
  row.bench = name;
  row.requests_per_sec = applied_rps;
  row.batch = kBatch;
  row.requests = a.applied_requests;
  row.mode = "overload";
  std::string extra = "\"submitted\":";
  extra.append(std::to_string(a.submitted_requests));
  extra.append(",\"served\":");
  extra.append(std::to_string(a.applied_requests));
  extra.append(",\"shed\":");
  extra.append(std::to_string(a.shed_requests));
  extra.append(",\"timed_out\":");
  extra.append(std::to_string(a.timed_out_requests));
  extra.append(",\"expired\":");
  extra.append(std::to_string(a.expired_requests));
  extra.append(",\"stopped\":");
  extra.append(std::to_string(a.stopped_requests));
  extra.append(",\"watchdog_sheds\":");
  extra.append(std::to_string(faulted.watchdog_sheds));
  extra.append(",\"consumers\":");
  extra.append(std::to_string(faulted.consumers));
  extra.append(",\"cores_detected\":");
  extra.append(std::to_string(
      std::max(1u, std::thread::hardware_concurrency())));
  extra.append(",\"per_core_rps\":");
  sweep::AppendDouble(
      &extra, applied_rps / static_cast<double>(std::max(1u, faulted.consumers)));
  extra.append(",\"nonstalled_ratio\":");
  sweep::AppendDouble(&extra, ratio);
  row.extra = std::move(extra);
  AppendBenchJson(row);
}

void RegisterOverload(const std::string& workload) {
  struct Policy {
    server::AdmissionPolicy admission;
    const char* name;
  };
  const Policy policies[] = {
      {server::AdmissionPolicy::kShed, "shed"},
      {server::AdmissionPolicy::kBlockWithDeadline, "deadline"},
      {server::AdmissionPolicy::kBlock, "block"},
  };
  for (const Policy& p : policies) {
    for (std::size_t queue_cap : {4ul, 16ul}) {
      for (std::uint64_t burst : {1ull, 2ull}) {
        const std::string name =
            std::string("Overload/") + workload + "/" + p.name +
            "/cap:" + std::to_string(queue_cap) +
            "/burst:" + std::to_string(burst);
        const auto admission = p.admission;
        benchmark::RegisterBenchmark(
            name.c_str(),
            [workload, name, admission, queue_cap,
             burst](benchmark::State& s) {
              Overload(s, workload, name, admission, queue_cap, burst);
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace
}  // namespace clic::bench

int main(int argc, char** argv) {
  std::string workload = "DB2_C60";
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--workload=";
    if (arg.rfind(prefix, 0) == 0) {
      workload = arg.substr(prefix.size());
    } else {
      args.push_back(argv[i]);
    }
  }
  clic::cli::RequireKnownWorkload("bench_overload", "--workload", workload);
  clic::bench::RegisterOverload(workload);
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
