// Scenario comparison: read hit ratio and replay throughput of the
// online-servable policies (LRU, ARC, CLIC) across every scenario
// preset of the workload engine (workload/scenario.h). The headline is
// the scan-pollution column the paper motivates: LRU lets periodic
// sequential scans flush the Zipf hot set, ARC resists with its ghost
// lists, and CLIC — told by the client which accesses *are* scans —
// ranks scan-hinted pages below the hot bands and should match or beat
// both at the paper's cache sizes (CI smoke-checks CLIC >= LRU here).
//
// The phase-change presets (phase-abrupt, phase-gradual, zipf-shifted)
// additionally run a CLIC-adaptive variant — the churn-triggered
// adaptive window of core/clic.h with its default knobs — next to the
// fixed paper window, so the adaptive-vs-fixed recovery gap is a
// first-class bench row (and a CI gate; see
// tools/check_bench_floors.py).
//
//   bench_scenarios [--benchmark_filter='Scenario/scan-pollute/.*']
//
// Each benchmark emits one point named
// `Scenario/<preset>/<policy>/<cache_pages>` with read_hit_ratio and
// requests_per_sec counters, and appends a mode="scenario" JSON-Lines
// row to $CLIC_BENCH_JSON_OUT carrying the hit ratio and an `adaptive`
// flag (same file format as the micro benches; see bench/README.md).
#include <chrono>
#include <string>

#include "bench_util.h"
#include "workload/scenario.h"

namespace clic::bench {
namespace {

void ScenarioPoint(benchmark::State& state, const std::string& preset,
                   PolicyKind kind, std::size_t cache_pages,
                   const std::string& name, const ClicOptions& clic) {
  const Trace& trace = GetTrace(preset);
  SimResult result;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    auto policy = MakePolicy(kind, cache_pages, &trace, clic);
    result = Simulate(trace, *policy);
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - t0;
  state.counters["read_hit_ratio"] = result.total.ReadHitRatio();
  state.counters["requests_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(trace.size()),
      benchmark::Counter::kIsRate);
  state.SetItemsProcessed(static_cast<std::int64_t>(trace.size()) *
                          static_cast<std::int64_t>(state.iterations()));
  if (elapsed.count() > 0.0) {
    BenchJsonRow row;
    row.bench = name;
    row.requests_per_sec = static_cast<double>(state.iterations()) *
                           static_cast<double>(trace.size()) /
                           elapsed.count();
    row.batch = kSimulateBatch;
    row.requests = trace.size();
    row.mode = "scenario";
    row.extra = "\"adaptive\":";
    row.extra.append(clic.adaptive_window ? "true" : "false");
    row.extra.append(",\"cache_pages\":");
    row.extra.append(std::to_string(cache_pages));
    row.extra.append(",\"read_hit_ratio\":");
    sweep::AppendDouble(&row.extra, result.total.ReadHitRatio());
    AppendBenchJson(row);
  }
}

/// Presets whose access pattern actually moves mid-trace: the ones
/// where the adaptive window has something to react to. Stationary
/// presets are deliberately excluded here — test_adaptive_window pins
/// that adaptive CLIC is bit-identical to fixed on zipf-hot, so a bench
/// row would duplicate the fixed one.
bool HasPhaseChange(const std::string& preset) {
  return preset == "phase-abrupt" || preset == "phase-gradual" ||
         preset == "zipf-shifted";
}

void RegisterScenarios() {
  const std::vector<std::size_t> base_caches = {6'000, 12'000, 24'000};
  // The headline scenario gets the full paper cache-size axis.
  const std::vector<std::size_t> paper_caches = {6'000, 12'000, 18'000,
                                                 24'000, 30'000};
  for (const ScenarioPreset& preset : ScenarioPresets()) {
    const std::string preset_name = preset.name;
    const std::vector<std::size_t>& caches =
        preset_name == "scan-pollute" ? paper_caches : base_caches;
    for (PolicyKind kind :
         {PolicyKind::kLru, PolicyKind::kArc, PolicyKind::kClic}) {
      for (std::size_t cache_pages : caches) {
        const std::string name = std::string("Scenario/") + preset_name +
                                 "/" + PolicyName(kind) + "/" +
                                 std::to_string(cache_pages);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [preset_name, kind, cache_pages, name](benchmark::State& s) {
              ScenarioPoint(s, preset_name, kind, cache_pages, name,
                            PaperClicOptions());
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
    if (!HasPhaseChange(preset_name)) continue;
    for (std::size_t cache_pages : caches) {
      const std::string name = std::string("Scenario/") + preset_name +
                               "/CLIC-adaptive/" +
                               std::to_string(cache_pages);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [preset_name, cache_pages, name](benchmark::State& s) {
            ClicOptions clic = PaperClicOptions();
            clic.adaptive_window = true;
            ScenarioPoint(s, preset_name, PolicyKind::kClic, cache_pages,
                          name, clic);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

const int registered = (RegisterScenarios(), 0);

}  // namespace
}  // namespace clic::bench
