// Figure 5: the I/O request trace inventory table. Generates all eight
// scaled traces and prints the same columns the paper reports: DBMS,
// workload, DB size, client buffer size, number of requests, distinct
// hint sets, distinct pages.
#include <cstdio>

#include "bench_util.h"

namespace clic::bench {
namespace {

void Fig5(benchmark::State& state) {
  std::uint64_t total_requests = 0;
  for (auto _ : state) {
    std::printf(
        "\n# Figure 5: I/O request traces (page counts at 1/10 paper "
        "scale)\n");
    std::printf("%-10s %-6s %-6s %10s %10s %12s %10s %10s\n", "trace",
                "dbms", "wkld", "db_pages", "buf_pages", "requests",
                "hintsets", "pages");
    for (const NamedTraceInfo& info : NamedTraces()) {
      const Trace& trace = GetTrace(info.name);
      const TraceStats stats = ComputeStats(trace);
      std::printf("%-10s %-6s %-6s %10llu %10llu %12llu %10llu %10llu\n",
                  info.name.c_str(), info.dbms.c_str(),
                  info.workload.c_str(),
                  static_cast<unsigned long long>(info.db_pages),
                  static_cast<unsigned long long>(info.buffer_pages),
                  static_cast<unsigned long long>(stats.requests),
                  static_cast<unsigned long long>(stats.distinct_hint_sets),
                  static_cast<unsigned long long>(stats.distinct_pages));
      total_requests += stats.requests;
    }
  }
  state.counters["total_requests"] = static_cast<double>(total_requests);
}

BENCHMARK(Fig5)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace clic::bench
