// Ablation: window length W and decay rate r (Section 3.2). The paper
// fixes W = 1e6 (1e5 at our 1/10 scale) and r = 1; this bench sweeps both
// on the DB2_C300 trace, quantifying how reactivity vs stability of the
// priority estimates affects the hit ratio. Each (W, r) point also runs
// an adaptive column — the same W as the scheduled window but with the
// churn-triggered early close armed (core/clic.h defaults) — showing
// what the adaptive controller costs or buys on a trace with no
// engineered phase change.
#include "bench_util.h"

namespace clic::bench {
namespace {

void Window(benchmark::State& state, std::uint64_t w, double r,
            bool adaptive) {
  ClicOptions options = PaperClicOptions();
  options.window = w;
  options.decay = r;
  options.adaptive_window = adaptive;
  RunPoint(state, GetTrace("DB2_C300"), PolicyKind::kClic, 12'000, options);
}

void RegisterAll() {
  for (std::uint64_t w : {25'000u, 50'000u, 100'000u, 200'000u, 400'000u}) {
    for (double r : {0.25, 0.5, 1.0}) {
      for (bool adaptive : {false, true}) {
        const std::string name = "AblationWindow/DB2_C300/W=" +
                                 std::to_string(w) + "/r=" +
                                 std::to_string(r) +
                                 (adaptive ? "/adaptive" : "/fixed");
        benchmark::RegisterBenchmark(
            name.c_str(),
            [w, r, adaptive](benchmark::State& s) {
              Window(s, w, r, adaptive);
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

const int registered = (RegisterAll(), 0);

}  // namespace
}  // namespace clic::bench
