// Ablation: window length W and decay rate r (Section 3.2). The paper
// fixes W = 1e6 (1e5 at our 1/10 scale) and r = 1; this bench sweeps both
// on the DB2_C300 trace, quantifying how reactivity vs stability of the
// priority estimates affects the hit ratio.
#include "bench_util.h"

namespace clic::bench {
namespace {

void Window(benchmark::State& state, std::uint64_t w, double r) {
  ClicOptions options = PaperClicOptions();
  options.window = w;
  options.decay = r;
  RunPoint(state, GetTrace("DB2_C300"), PolicyKind::kClic, 12'000, options);
}

void RegisterAll() {
  for (std::uint64_t w : {25'000u, 50'000u, 100'000u, 200'000u, 400'000u}) {
    for (double r : {0.25, 0.5, 1.0}) {
      const std::string name = "AblationWindow/DB2_C300/W=" +
                               std::to_string(w) + "/r=" + std::to_string(r);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [w, r](benchmark::State& s) { Window(s, w, r); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

const int registered = (RegisterAll(), 0);

}  // namespace
}  // namespace clic::bench
