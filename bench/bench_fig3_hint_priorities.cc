// Figure 3: caching priority vs frequency of occurrence for every hint
// set in the DB2_C60 trace. The paper plots one point per hint set; this
// bench prints the same scatter as rows (frequency, priority,
// description) after running CLIC's exact hint analysis over the trace,
// and reports summary counters (hint sets seen / with non-zero priority).
#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "bench_util.h"
#include "core/clic.h"

namespace clic::bench {
namespace {

void Fig3(benchmark::State& state) {
  const Trace& trace = GetTrace("DB2_C60");

  ClicOptions options = PaperClicOptions();
  // One window covering the whole trace, so the reported priorities are
  // the Equation-2 analysis of the complete request stream, like the
  // figure. (+1 so the automatic boundary never fires; the explicit
  // ForceEndWindow below is the single harvest.)
  options.window = trace.size() + 1;

  ClicPolicy clic(18'000, options);
  std::unordered_map<HintSetId, std::uint64_t> frequency;
  for (auto _ : state) {
    SeqNum seq = 0;
    for (const Request& r : trace.requests) {
      clic.Access(r, seq++);
      ++frequency[r.hint_set];
    }
    clic.ForceEndWindow();
  }

  struct Row {
    std::uint64_t freq;
    double priority;
    HintSetId hint;
  };
  std::vector<Row> rows;
  for (const auto& [hint, pr] : clic.Priorities()) {
    rows.push_back(Row{frequency[hint], pr, hint});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.freq > b.freq; });

  std::printf("\n# Figure 3: hint set priorities for the DB2_C60 trace\n");
  std::printf("# (all hint sets with non-zero caching priority)\n");
  std::printf("%12s %14s  %s\n", "frequency", "priority", "hint set");
  for (const Row& row : rows) {
    if (row.priority <= 0.0) continue;
    std::printf("%12llu %14.3e  %s\n",
                static_cast<unsigned long long>(row.freq), row.priority,
                trace.hints->Describe(row.hint).c_str());
  }

  state.counters["hint_sets_total"] = static_cast<double>(frequency.size());
  state.counters["hint_sets_nonzero_priority"] = static_cast<double>(
      std::count_if(rows.begin(), rows.end(),
                    [](const Row& r) { return r.priority > 0.0; }));
}

BENCHMARK(Fig3)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace clic::bench
