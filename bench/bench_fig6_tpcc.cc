// Figure 6: read hit ratio of OPT, TQ, LRU, ARC and CLIC as a function of
// the storage-server cache size, for the three DB2 TPC-C traces
// (DB2_C60 / DB2_C300 / DB2_C540). Cache sizes are 1/10 of the paper's
// 60K-300K page sweep. Each benchmark emits one plotted point as the
// read_hit_ratio counter. The same grid runs in parallel via
// `clic_sweep --figure=6`.
#include "bench_util.h"

namespace clic::bench {
namespace {

void RegisterAll() {
  sweep::SweepSpec spec = *sweep::FigureSpec("6");
  spec.clic = PaperClicOptions();
  RegisterSweepBenches("Fig6", spec);
}

const int registered = (RegisterAll(), 0);

}  // namespace
}  // namespace clic::bench
