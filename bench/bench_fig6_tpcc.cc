// Figure 6: read hit ratio of OPT, TQ, LRU, ARC and CLIC as a function of
// the storage-server cache size, for the three DB2 TPC-C traces
// (DB2_C60 / DB2_C300 / DB2_C540). Cache sizes are 1/10 of the paper's
// 60K-300K page sweep. Each benchmark emits one plotted point as the
// read_hit_ratio counter.
#include "bench_util.h"

namespace clic::bench {
namespace {

void Fig6(benchmark::State& state, const std::string& trace_name,
          PolicyKind kind, std::size_t cache_pages) {
  RunPoint(state, GetTrace(trace_name), kind, cache_pages);
}

void RegisterAll() {
  for (const char* trace : {"DB2_C60", "DB2_C300", "DB2_C540"}) {
    for (PolicyKind kind : PaperPolicies()) {
      for (std::size_t cache : {6'000u, 12'000u, 18'000u, 24'000u, 30'000u}) {
        const std::string name = std::string("Fig6/") + trace + "/" +
                                 std::string(PolicyName(kind)) + "/" +
                                 std::to_string(cache);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [trace = std::string(trace), kind, cache](benchmark::State& s) {
              Fig6(s, trace, kind, cache);
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

const int registered = (RegisterAll(), 0);

}  // namespace
}  // namespace clic::bench
