// Ablation: outqueue size. The paper fixes Noutq at 5 entries per cache
// page (Section 6.1); this bench sweeps 0..10 entries per page on the
// DB2_C300 trace to show the sensitivity of CLIC's re-reference detection
// to its tracking memory.
#include "bench_util.h"

namespace clic::bench {
namespace {

void Outqueue(benchmark::State& state, double per_page) {
  ClicOptions options = PaperClicOptions();
  options.outqueue_per_page = per_page;
  RunPoint(state, GetTrace("DB2_C300"), PolicyKind::kClic, 12'000, options);
}

void RegisterAll() {
  for (double per_page : {0.0, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    const std::string name =
        "AblationOutqueue/DB2_C300/per_page=" + std::to_string(per_page);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [per_page](benchmark::State& s) { Outqueue(s, per_page); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

const int registered = (RegisterAll(), 0);

}  // namespace
}  // namespace clic::bench
