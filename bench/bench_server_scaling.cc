// Server scaling: throughput of the online sharded cache server as the
// shard count and client count grow. The per-shard locking plus batched
// ingestion should scale request throughput with shards until the
// machine runs out of cores; this driver pins the numbers down
// (bench/README.md records the baselines).
//
//   bench_server_scaling [--benchmark_filter=ServerScaling/LRU/.*]
//
// Counter `requests_per_sec` is the headline; `p99_us` tracks tail
// batch latency so a throughput win can't silently buy unbounded
// queueing delay.
#include <string>

#include "bench_util.h"
#include "server/cache_server.h"

namespace clic::bench {
namespace {

void ServerScaling(benchmark::State& state, PolicyKind kind,
                   const std::string& name) {
  const std::size_t shards = static_cast<std::size_t>(state.range(0));
  const std::size_t clients = static_cast<std::size_t>(state.range(1));
  const Trace& trace = GetTrace("DB2_C60");

  server::ServerOptions options;
  options.shards = shards;
  options.cache_pages = 12'000;
  options.policy = kind;
  options.clic = PaperClicOptions();

  server::LoadOptions load;
  load.clients = clients;
  load.batch_size = 256;

  server::ServeResult result;
  for (auto _ : state) {
    result = server::ServeTrace(trace, options, load);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(result.requests) *
                          static_cast<std::int64_t>(state.iterations()));
  state.counters["requests_per_sec"] = benchmark::Counter(
      static_cast<double>(result.requests) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["p50_us"] = result.p50_us;
  state.counters["p99_us"] = result.p99_us;
  state.counters["read_hit_ratio"] = result.total.ReadHitRatio();
  // Consumer-side batching efficiency: how much of the submitted batch
  // size survives hash-sharding (requests per shard-lock acquisition).
  state.counters["avg_drained_batch"] = result.avg_drained_batch;

  BenchJsonRow row;
  row.bench = name;
  row.requests_per_sec = result.throughput_rps;
  row.batch = static_cast<std::uint64_t>(result.avg_drained_batch);
  row.requests = result.requests;
  row.mode = "server";
  AppendBenchJson(row);
}

void RegisterServerScaling() {
  for (PolicyKind kind : {PolicyKind::kLru, PolicyKind::kClic}) {
    for (long shards : {1L, 2L, 4L, 8L}) {
      for (long clients : {1L, 4L}) {
        const std::string name = std::string("ServerScaling/") +
                                 PolicyName(kind) + "/shards:" +
                                 std::to_string(shards) + "/clients:" +
                                 std::to_string(clients);
        benchmark::RegisterBenchmark(name.c_str(),
                                     [kind, name](benchmark::State& s) {
                                       ServerScaling(s, kind, name);
                                     })
            ->Args({shards, clients})
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}
const int registered = (RegisterServerScaling(), 0);

}  // namespace
}  // namespace clic::bench
