// Server scaling: throughput of the online sharded cache server as the
// shard count and client count grow. The per-shard locking plus batched
// ingestion should scale request throughput with shards until the
// machine runs out of cores; this driver pins the numbers down
// (bench/README.md records the baselines).
//
//   bench_server_scaling [--workload=NAME_OR_SPEC]
//                        [--benchmark_filter=ServerScaling/.*/LRU/.*]
//
// --workload (default DB2_C60) drives the server with any workload
// token: a named paper trace, a scenario preset such as scan-pollute,
// or an inline spec like 'zipf:pages=120000,theta=0.9' — this binary
// owns its main() so the flag can be stripped before google-benchmark
// parses the rest.
//
// Counter `requests_per_sec` is the headline; `p99_us` tracks tail
// batch latency so a throughput win can't silently buy unbounded
// queueing delay.
#include <algorithm>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/cli_util.h"
#include "server/cache_server.h"

namespace clic::bench {
namespace {

void ServerScaling(benchmark::State& state, PolicyKind kind,
                   const std::string& workload, const std::string& name) {
  const std::size_t shards = static_cast<std::size_t>(state.range(0));
  const std::size_t clients = static_cast<std::size_t>(state.range(1));
  const Trace& trace = GetTrace(workload);

  server::ServerOptions options;
  options.shards = shards;
  options.cache_pages = 12'000;
  options.policy = kind;
  options.clic = PaperClicOptions();

  server::LoadOptions load;
  load.clients = clients;
  load.batch_size = 256;

  server::ServeResult result;
  for (auto _ : state) {
    result = server::ServeTrace(trace, options, load);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(result.requests) *
                          static_cast<std::int64_t>(state.iterations()));
  state.counters["requests_per_sec"] = benchmark::Counter(
      static_cast<double>(result.requests) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["p50_us"] = result.p50_us;
  state.counters["p99_us"] = result.p99_us;
  state.counters["read_hit_ratio"] = result.total.ReadHitRatio();
  // Consumer-side batching efficiency: how much of the submitted batch
  // size survives hash-sharding (requests per owning-core drain).
  state.counters["avg_drained_batch"] = result.avg_drained_batch;
  // Ownership topology: how many owning-consumer threads actually ran,
  // what the machine offered, and the per-core rate. A 1-core container
  // reports cores_detected=1 so tools/check_bench_floors.py knows not
  // to demand shard scaling from it.
  const double per_core_rps =
      result.throughput_rps / static_cast<double>(std::max(1u, result.consumers));
  state.counters["consumers"] = static_cast<double>(result.consumers);
  state.counters["per_core_rps"] = per_core_rps;

  BenchJsonRow row;
  row.bench = name;
  row.requests_per_sec = result.throughput_rps;
  row.batch = static_cast<std::uint64_t>(result.avg_drained_batch);
  row.requests = result.requests;
  row.mode = "server";
  row.extra = "\"consumers\":" + std::to_string(result.consumers) +
              ",\"cores_detected\":" + std::to_string(result.cores_detected) +
              ",\"per_core_rps\":" + std::to_string(per_core_rps);
  AppendBenchJson(row);
}

void RegisterServerScaling(const std::string& workload) {
  for (PolicyKind kind : {PolicyKind::kLru, PolicyKind::kClic}) {
    for (long shards : {1L, 2L, 4L, 8L}) {
      for (long clients : {1L, 4L}) {
        const std::string name = std::string("ServerScaling/") + workload +
                                 "/" + PolicyName(kind) + "/shards:" +
                                 std::to_string(shards) + "/clients:" +
                                 std::to_string(clients);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [kind, workload, name](benchmark::State& s) {
              ServerScaling(s, kind, workload, name);
            })
            ->Args({shards, clients})
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace
}  // namespace clic::bench

int main(int argc, char** argv) {
  std::string workload = "DB2_C60";
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--workload=";
    if (arg.rfind(prefix, 0) == 0) {
      workload = arg.substr(prefix.size());
    } else {
      args.push_back(argv[i]);
    }
  }
  clic::cli::RequireKnownWorkload("bench_server_scaling", "--workload",
                                  workload);
  clic::bench::RegisterServerScaling(workload);
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
