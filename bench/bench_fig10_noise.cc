// Figure 10: effect of injecting T useless "noise" hint types (domain
// D = 10, Zipf z = 1) on CLIC's read hit ratio, with top-k tracking fixed
// at k = 100 and an 18K-page server cache (1/10 of the paper's 180K),
// for the DB2 TPC-C traces.
#include <memory>
#include <mutex>

#include "bench_util.h"
#include "sim/trace_ops.h"

namespace clic::bench {
namespace {

const Trace& NoisyTrace(const std::string& base, int t) {
  static std::mutex mutex;
  static std::map<std::string, std::unique_ptr<Trace>> cache;
  std::lock_guard<std::mutex> lock(mutex);
  const std::string key = base + "+T" + std::to_string(t);
  auto it = cache.find(key);
  if (it == cache.end()) {
    Trace noisy = InjectNoiseHints(GetTrace(base), t, /*domain_size=*/10,
                                   /*zipf_z=*/1.0, /*seed=*/0xF16 + t);
    it = cache.emplace(key, std::make_unique<Trace>(std::move(noisy))).first;
  }
  return *it->second;
}

void Fig10(benchmark::State& state, const std::string& trace_name, int t) {
  ClicOptions options = PaperClicOptions();
  options.tracker = TrackerKind::kSpaceSaving;
  options.top_k = 100;  // paper: k fixed at 100 as noise grows
  const Trace& trace = NoisyTrace(trace_name, t);
  RunPoint(state, trace, PolicyKind::kClic, 18'000, options);
  state.counters["distinct_hint_sets"] =
      static_cast<double>(ComputeStats(trace).distinct_hint_sets);
}

void RegisterAll() {
  for (const char* trace : {"DB2_C60", "DB2_C300", "DB2_C540"}) {
    for (int t : {0, 1, 2, 3}) {
      const std::string name =
          std::string("Fig10/") + trace + "/T=" + std::to_string(t);
      benchmark::RegisterBenchmark(
          name.c_str(), [trace = std::string(trace), t](benchmark::State& s) {
            Fig10(s, trace, t);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

const int registered = (RegisterAll(), 0);

}  // namespace
}  // namespace clic::bench
