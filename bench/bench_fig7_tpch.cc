// Figure 7: read hit ratio vs server cache size for the DB2 TPC-H traces
// (DB2_H80 / DB2_H400 / DB2_H720), all five policies. Cache sizes are
// 1/10 of the paper's sweep.
#include "bench_util.h"

namespace clic::bench {
namespace {

void RegisterAll() {
  for (const char* trace : {"DB2_H80", "DB2_H400", "DB2_H720"}) {
    for (PolicyKind kind : PaperPolicies()) {
      for (std::size_t cache : {6'000u, 12'000u, 18'000u, 24'000u, 30'000u}) {
        const std::string name = std::string("Fig7/") + trace + "/" +
                                 std::string(PolicyName(kind)) + "/" +
                                 std::to_string(cache);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [trace = std::string(trace), kind, cache](benchmark::State& s) {
              RunPoint(s, GetTrace(trace), kind, cache);
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

const int registered = (RegisterAll(), 0);

}  // namespace
}  // namespace clic::bench
