// Figure 7: read hit ratio vs server cache size for the DB2 TPC-H traces
// (DB2_H80 / DB2_H400 / DB2_H720), all five policies. Cache sizes are
// 1/10 of the paper's sweep. The same grid runs in parallel via
// `clic_sweep --figure=7`.
#include "bench_util.h"

namespace clic::bench {
namespace {

void RegisterAll() {
  sweep::SweepSpec spec = *sweep::FigureSpec("7");
  spec.clic = PaperClicOptions();
  RegisterSweepBenches("Fig7", spec);
}

const int registered = (RegisterAll(), 0);

}  // namespace
}  // namespace clic::bench
