// Figure 9: effect of top-k hint-set filtering (Section 5) on the read
// hit ratio, for the DB2 TPC-C and TPC-H traces with an 18K-page server
// cache (1/10 of the paper's 180K). k sweeps 1..128 plus "all" (exact
// tracking), mirroring the paper's log-scale x axis.
#include "bench_util.h"

namespace clic::bench {
namespace {

void Fig9(benchmark::State& state, const std::string& trace_name,
          std::size_t k) {
  ClicOptions options = PaperClicOptions();
  if (k == 0) {
    options.tracker = TrackerKind::kExact;  // "all hint sets" reference
  } else {
    options.tracker = TrackerKind::kSpaceSaving;
    options.top_k = k;
  }
  RunPoint(state, GetTrace(trace_name), PolicyKind::kClic, 18'000, options);
}

void RegisterAll() {
  for (const char* trace : {"DB2_C60", "DB2_C300", "DB2_C540", "DB2_H80",
                            "DB2_H400", "DB2_H720"}) {
    for (std::size_t k : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 0u}) {
      const std::string name = std::string("Fig9/") + trace + "/k=" +
                               (k == 0 ? std::string("all")
                                       : std::to_string(k));
      benchmark::RegisterBenchmark(
          name.c_str(),
          [trace = std::string(trace), k](benchmark::State& s) {
            Fig9(s, trace, k);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

const int registered = (RegisterAll(), 0);

}  // namespace
}  // namespace clic::bench
