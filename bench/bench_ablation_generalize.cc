// Ablation: decision-tree hint generalization (the paper's Section 8
// future-work extension) under the Section 6.3 noise injection. Repeats
// the Figure 10 sweep with and without the HintClassTree; the tree groups
// noisy hint-set variants back into their real classes, recovering part
// of the performance lost to dilution.
#include <memory>
#include <mutex>

#include "bench_util.h"
#include "sim/trace_ops.h"

namespace clic::bench {
namespace {

const Trace& NoisyTrace(int t) {
  static std::mutex mutex;
  static std::map<int, std::unique_ptr<Trace>> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(t);
  if (it == cache.end()) {
    Trace noisy = InjectNoiseHints(GetTrace("DB2_C300"), t,
                                   /*domain_size=*/10, /*zipf_z=*/1.0,
                                   /*seed=*/0xABC + t);
    it = cache.emplace(t, std::make_unique<Trace>(std::move(noisy))).first;
  }
  return *it->second;
}

void Generalize(benchmark::State& state, int t, bool with_tree) {
  const Trace& trace = NoisyTrace(t);
  ClicOptions options = PaperClicOptions();
  options.tracker = TrackerKind::kSpaceSaving;
  options.top_k = 100;
  if (with_tree) {
    options.generalize = true;
    options.hint_space = trace.hints;
  }
  RunPoint(state, trace, PolicyKind::kClic, 18'000, options);
}

void RegisterAll() {
  for (int t : {0, 1, 2, 3}) {
    for (bool with_tree : {false, true}) {
      const std::string name = "AblationGeneralize/DB2_C300/T=" +
                               std::to_string(t) +
                               (with_tree ? "/tree" : "/plain");
      benchmark::RegisterBenchmark(
          name.c_str(), [t, with_tree](benchmark::State& s) {
            Generalize(s, t, with_tree);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

const int registered = (RegisterAll(), 0);

}  // namespace
}  // namespace clic::bench
