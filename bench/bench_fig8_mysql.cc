// Figure 8: read hit ratio vs server cache size for the MySQL TPC-H
// traces (MY_H65 / MY_H98), all five policies. Cache sizes are 1/10 of
// the paper's 50K/75K/100K sweep.
#include "bench_util.h"

namespace clic::bench {
namespace {

void RegisterAll() {
  for (const char* trace : {"MY_H65", "MY_H98"}) {
    for (PolicyKind kind : PaperPolicies()) {
      for (std::size_t cache : {5'000u, 7'500u, 10'000u}) {
        const std::string name = std::string("Fig8/") + trace + "/" +
                                 std::string(PolicyName(kind)) + "/" +
                                 std::to_string(cache);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [trace = std::string(trace), kind, cache](benchmark::State& s) {
              RunPoint(s, GetTrace(trace), kind, cache);
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

const int registered = (RegisterAll(), 0);

}  // namespace
}  // namespace clic::bench
