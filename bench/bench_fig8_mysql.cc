// Figure 8: read hit ratio vs server cache size for the MySQL TPC-H
// traces (MY_H65 / MY_H98), all five policies. Cache sizes are 1/10 of
// the paper's 50K/75K/100K sweep. The same grid runs in parallel via
// `clic_sweep --figure=8`.
#include "bench_util.h"

namespace clic::bench {
namespace {

void RegisterAll() {
  sweep::SweepSpec spec = *sweep::FigureSpec("8");
  spec.clic = PaperClicOptions();
  RegisterSweepBenches("Fig8", spec);
}

const int registered = (RegisterAll(), 0);

}  // namespace
}  // namespace clic::bench
