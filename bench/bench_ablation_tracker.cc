// Ablation: hint-statistics backend. The paper chose Space-Saving for its
// top-k filtering (Section 5, citing the Cormode/Hadjieleftheriou study);
// this bench compares exact tracking, Space-Saving and Lossy Counting at
// equivalent memory budgets on an OLTP and a DSS trace.
#include "bench_util.h"

namespace clic::bench {
namespace {

void Tracker(benchmark::State& state, const std::string& trace,
             TrackerKind kind, std::size_t k) {
  ClicOptions options = PaperClicOptions();
  options.tracker = kind;
  options.top_k = k;
  RunPoint(state, GetTrace(trace), PolicyKind::kClic, 12'000, options);
}

const char* KindName(TrackerKind kind) {
  switch (kind) {
    case TrackerKind::kExact:
      return "exact";
    case TrackerKind::kSpaceSaving:
      return "space_saving";
    case TrackerKind::kLossyCounting:
      return "lossy_counting";
  }
  return "?";
}

void RegisterAll() {
  for (const char* trace : {"DB2_C300", "DB2_H400"}) {
    for (TrackerKind kind :
         {TrackerKind::kExact, TrackerKind::kSpaceSaving,
          TrackerKind::kLossyCounting}) {
      for (std::size_t k : {10u, 100u}) {
        if (kind == TrackerKind::kExact && k != 10) continue;  // k unused
        const std::string name =
            std::string("AblationTracker/") + trace + "/" + KindName(kind) +
            (kind == TrackerKind::kExact ? "" : "/k=" + std::to_string(k));
        benchmark::RegisterBenchmark(
            name.c_str(), [trace = std::string(trace), kind,
                           k](benchmark::State& s) {
              Tracker(s, trace, kind, k);
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

const int registered = (RegisterAll(), 0);

}  // namespace
}  // namespace clic::bench
