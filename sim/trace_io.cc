#include "sim/trace_io.h"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include <unistd.h>

#include "common/fnv1a.h"

namespace clic {
namespace {

constexpr std::uint32_t kMagic = 0x434C5452;  // "CLTR"
constexpr std::uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteRaw(std::FILE* f, Fnv1a& sum, const void* data, std::size_t n) {
  sum.Mix(data, n);
  return std::fwrite(data, 1, n, f) == n;
}

bool ReadRaw(std::FILE* f, Fnv1a& sum, void* data, std::size_t n) {
  if (std::fread(data, 1, n, f) != n) return false;
  sum.Mix(data, n);
  return true;
}

template <typename T>
bool WriteScalar(std::FILE* f, Fnv1a& sum, T value) {
  return WriteRaw(f, sum, &value, sizeof(value));
}

template <typename T>
bool ReadScalar(std::FILE* f, Fnv1a& sum, T* value) {
  return ReadRaw(f, sum, value, sizeof(*value));
}

}  // namespace

bool SaveTrace(const Trace& trace, const std::string& path) {
  // Unique temp name per (process, call): concurrent savers of the same
  // trace never interleave writes into one file, and the final path only
  // ever appears via the atomic rename() below — readers see a complete
  // checksummed file or nothing.
  static std::atomic<std::uint64_t> save_counter{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
      std::to_string(save_counter.fetch_add(1, std::memory_order_relaxed));
  FilePtr file(std::fopen(tmp.c_str(), "wb"));
  if (!file) return false;
  std::FILE* f = file.get();
  Fnv1a sum;

  bool ok = WriteScalar(f, sum, kMagic) && WriteScalar(f, sum, kVersion);
  const std::uint32_t name_len =
      static_cast<std::uint32_t>(trace.name.size());
  ok = ok && WriteScalar(f, sum, name_len) &&
       WriteRaw(f, sum, trace.name.data(), name_len);

  const std::uint64_t num_hints = trace.hints->size();
  ok = ok && WriteScalar(f, sum, num_hints);
  for (std::uint64_t i = 0; ok && i < num_hints; ++i) {
    const HintVector& v = trace.hints->Get(static_cast<HintSetId>(i));
    const std::uint32_t nattrs = static_cast<std::uint32_t>(v.attrs.size());
    ok = WriteScalar(f, sum, v.client) && WriteScalar(f, sum, nattrs) &&
         (nattrs == 0 ||
          WriteRaw(f, sum, v.attrs.data(), nattrs * sizeof(std::uint32_t)));
  }

  const std::uint64_t num_requests = trace.requests.size();
  ok = ok && WriteScalar(f, sum, num_requests);
  for (std::uint64_t i = 0; ok && i < num_requests; ++i) {
    const Request& r = trace.requests[i];
    ok = WriteScalar(f, sum, r.page) && WriteScalar(f, sum, r.hint_set) &&
         WriteScalar(f, sum, r.client) &&
         WriteScalar(f, sum, static_cast<std::uint8_t>(r.op)) &&
         WriteScalar(f, sum, static_cast<std::uint8_t>(r.write_kind));
  }

  if (ok) {
    const std::uint64_t checksum = sum.value();
    ok = std::fwrite(&checksum, 1, sizeof(checksum), f) == sizeof(checksum);
  }
  file.reset();  // flush + close before rename
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<Trace> LoadTrace(const std::string& path,
                               const std::string& expected_name) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (!file) return std::nullopt;
  std::FILE* f = file.get();
  // File size bounds every element count below, so a corrupted count
  // can never trigger a huge allocation before the checksum check.
  if (std::fseek(f, 0, SEEK_END) != 0) return std::nullopt;
  const long file_size = std::ftell(f);
  if (file_size < 0 || std::fseek(f, 0, SEEK_SET) != 0) return std::nullopt;
  Fnv1a sum;

  std::uint32_t magic = 0, version = 0, name_len = 0;
  if (!ReadScalar(f, sum, &magic) || magic != kMagic) return std::nullopt;
  if (!ReadScalar(f, sum, &version) || version != kVersion) {
    return std::nullopt;
  }
  if (!ReadScalar(f, sum, &name_len) || name_len > 4096) return std::nullopt;
  std::string name(name_len, '\0');
  if (name_len > 0 && !ReadRaw(f, sum, name.data(), name_len)) {
    return std::nullopt;
  }
  if (name != expected_name) return std::nullopt;

  Trace trace;
  trace.name = name;
  std::uint64_t num_hints = 0;
  if (!ReadScalar(f, sum, &num_hints) ||
      num_hints > static_cast<std::uint64_t>(file_size) / 6) {
    return std::nullopt;  // each hint entry is at least 6 bytes
  }
  for (std::uint64_t i = 0; i < num_hints; ++i) {
    HintVector v;
    std::uint32_t nattrs = 0;
    if (!ReadScalar(f, sum, &v.client) || !ReadScalar(f, sum, &nattrs) ||
        nattrs > 4096) {
      return std::nullopt;
    }
    v.attrs.resize(nattrs);
    if (nattrs > 0 &&
        !ReadRaw(f, sum, v.attrs.data(), nattrs * sizeof(std::uint32_t))) {
      return std::nullopt;
    }
    // Ids must come back dense and in order.
    if (trace.hints->Intern(std::move(v)) != i) return std::nullopt;
  }

  std::uint64_t num_requests = 0;
  if (!ReadScalar(f, sum, &num_requests) ||
      num_requests > static_cast<std::uint64_t>(file_size) / 12) {
    return std::nullopt;  // each request record is 12 bytes on disk
  }
  trace.requests.resize(num_requests);
  ClientId max_client = 0;
  for (std::uint64_t i = 0; i < num_requests; ++i) {
    Request& r = trace.requests[i];
    std::uint8_t op = 0, write_kind = 0;
    if (!ReadScalar(f, sum, &r.page) || !ReadScalar(f, sum, &r.hint_set) ||
        !ReadScalar(f, sum, &r.client) || !ReadScalar(f, sum, &op) ||
        !ReadScalar(f, sum, &write_kind)) {
      return std::nullopt;
    }
    if (op > 1 || write_kind > 2) return std::nullopt;
    // Every request's hint id must index the registry; a trace with
    // requests but no interned hints is malformed.
    if (r.hint_set >= num_hints) return std::nullopt;
    r.op = static_cast<OpType>(op);
    r.write_kind = static_cast<WriteKind>(write_kind);
    if (r.client > max_client) max_client = r.client;
  }
  // Requests stream through this loop anyway, so the client bound comes
  // for free — Simulate() then never re-scans a loaded trace.
  trace.client_bound = static_cast<std::uint32_t>(max_client) + 1;

  std::uint64_t stored = 0;
  if (std::fread(&stored, 1, sizeof(stored), f) != sizeof(stored)) {
    return std::nullopt;
  }
  if (stored != sum.value()) return std::nullopt;
  return trace;
}

}  // namespace clic
