// Trace-driven cache simulation: replays a request trace through a
// replacement policy and accounts read/write hits, overall and per
// client (Figure 11 needs the per-client split).
#pragma once

#include <map>

#include "core/policy.h"
#include "core/trace.h"

namespace clic {

struct CacheStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t read_hits = 0;
  std::uint64_t write_hits = 0;

  double ReadHitRatio() const {
    return reads ? static_cast<double>(read_hits) /
                       static_cast<double>(reads)
                 : 0.0;
  }
  double WriteHitRatio() const {
    return writes ? static_cast<double>(write_hits) /
                        static_cast<double>(writes)
                  : 0.0;
  }
};

struct SimResult {
  CacheStats total;
  std::map<ClientId, CacheStats> per_client;
};

/// Replays `trace` through `policy` from a cold cache. Passes seq =
/// request index to Policy::Access (OPT depends on this).
SimResult Simulate(const Trace& trace, Policy& policy);

}  // namespace clic
