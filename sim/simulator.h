// Trace-driven cache simulation: replays a request trace through a
// replacement policy and accounts read/write hits, overall and per
// client (Figure 11 needs the per-client split).
#pragma once

#include <map>

#include "core/policy.h"
#include "core/trace.h"

namespace clic {

struct CacheStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t read_hits = 0;
  std::uint64_t write_hits = 0;

  /// The one place hit/miss bookkeeping lives: the simulator and the
  /// online server both account through this, so a new counter can
  /// never be added to one replay path and missed in the other.
  /// Branchless on purpose — the batched stats pass runs this back to
  /// back over a block of requests and op is data-dependent, so a
  /// conditional here would be the "one stats branch per request" the
  /// batch refactor removed.
  void Record(const Request& r, bool hit) {
    const std::uint64_t is_read = r.op == OpType::kRead ? 1 : 0;
    const std::uint64_t h = hit ? 1 : 0;
    reads += is_read;
    read_hits += is_read & h;
    writes += 1 - is_read;
    write_hits += (1 - is_read) & h;
  }

  CacheStats& operator+=(const CacheStats& o) {
    reads += o.reads;
    writes += o.writes;
    read_hits += o.read_hits;
    write_hits += o.write_hits;
    return *this;
  }

  double ReadHitRatio() const {
    return reads ? static_cast<double>(read_hits) /
                       static_cast<double>(reads)
                 : 0.0;
  }
  double WriteHitRatio() const {
    return writes ? static_cast<double>(write_hits) /
                        static_cast<double>(writes)
                  : 0.0;
  }
};

struct SimResult {
  CacheStats total;
  std::map<ClientId, CacheStats> per_client;
};

/// Requests per AccessBatch call in Simulate()'s replay loop. Large
/// enough that the one virtual dispatch, the CLIC window-boundary
/// hoist, and the stats pass are all amortized to noise; small enough
/// that the hit buffer stays in L1. Exported so the bench JSON rows
/// report the block size actually used.
inline constexpr std::size_t kSimulateBatch = 4096;

/// Replays `trace` through `policy` from a cold cache, in blocks of a
/// few thousand requests per Policy::AccessBatch call (seq = request
/// index, which OPT depends on); decisions are identical to sequential
/// Access() by the batched-contract guarantee in core/policy.h.
/// Per-client accumulation is flat-vector for dense client ids (sized
/// from the trace's cached client bound) and falls back to a map when
/// the id space is much larger than the trace, so a stray huge
/// ClientId cannot blow up the accumulator allocation.
SimResult Simulate(const Trace& trace, Policy& policy);

}  // namespace clic
