// Trace-driven cache simulation: replays a request trace through a
// replacement policy and accounts read/write hits, overall and per
// client (Figure 11 needs the per-client split).
#pragma once

#include <map>

#include "core/policy.h"
#include "core/trace.h"

namespace clic {

struct CacheStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t read_hits = 0;
  std::uint64_t write_hits = 0;

  /// The one place hit/miss bookkeeping lives: the simulator and the
  /// online server both account through this, so a new counter can
  /// never be added to one replay path and missed in the other.
  void Record(const Request& r, bool hit) {
    if (r.op == OpType::kRead) {
      ++reads;
      read_hits += hit;
    } else {
      ++writes;
      write_hits += hit;
    }
  }

  CacheStats& operator+=(const CacheStats& o) {
    reads += o.reads;
    writes += o.writes;
    read_hits += o.read_hits;
    write_hits += o.write_hits;
    return *this;
  }

  double ReadHitRatio() const {
    return reads ? static_cast<double>(read_hits) /
                       static_cast<double>(reads)
                 : 0.0;
  }
  double WriteHitRatio() const {
    return writes ? static_cast<double>(write_hits) /
                        static_cast<double>(writes)
                  : 0.0;
  }
};

struct SimResult {
  CacheStats total;
  std::map<ClientId, CacheStats> per_client;
};

/// Replays `trace` through `policy` from a cold cache. Passes seq =
/// request index to Policy::Access (OPT depends on this). Per-client
/// accumulation is flat-vector for dense client ids and falls back to
/// a map when the id space is much larger than the trace, so a stray
/// huge ClientId cannot blow up the accumulator allocation.
SimResult Simulate(const Trace& trace, Policy& policy);

}  // namespace clic
