#include "sim/simulator.h"

#include <vector>

namespace clic {

SimResult Simulate(const Trace& trace, Policy& policy) {
  SimResult result;
  // Client ids are usually small dense integers, so the common path
  // uses flat per-client accumulators pre-sized by one cheap scan (no
  // growth branch in the replay loop), folded into the map afterwards.
  // One stray huge ClientId must not turn that pre-size into a massive
  // allocation, so a density bound guards the flat path: when the id
  // space is much larger than the trace itself, fall back to the map.
  ClientId max_client = 0;
  for (const Request& r : trace.requests) {
    if (r.client > max_client) max_client = r.client;
  }
  const std::size_t spread =
      trace.requests.empty() ? 0 : static_cast<std::size_t>(max_client) + 1;
  const bool dense = spread <= 1024 || spread <= 2 * trace.requests.size();
  SeqNum seq = 0;
  if (dense) {
    std::vector<CacheStats> clients(spread);
    for (const Request& r : trace.requests) {
      const bool hit = policy.Access(r, seq++);
      result.total.Record(r, hit);
      clients[r.client].Record(r, hit);
    }
    for (std::size_t i = 0; i < clients.size(); ++i) {
      const CacheStats& c = clients[i];
      if (c.reads + c.writes == 0) continue;
      result.per_client.emplace(static_cast<ClientId>(i), c);
    }
  } else {
    // Sparse ids: accumulate straight into the result map. Slower per
    // request, but only ever taken for degenerate traces where a flat
    // vector would waste far more memory than the trace occupies.
    for (const Request& r : trace.requests) {
      const bool hit = policy.Access(r, seq++);
      result.total.Record(r, hit);
      result.per_client[r.client].Record(r, hit);
    }
  }
  return result;
}

}  // namespace clic
