#include "sim/simulator.h"

#include <vector>

namespace clic {

SimResult Simulate(const Trace& trace, Policy& policy) {
  SimResult result;
  // Client ids are usually small dense integers, so the common path
  // uses flat per-client accumulators pre-sized from the trace's cached
  // client bound (computed once at build/load time; legacy traces fall
  // back to one scan inside MaxClient()), folded into the map
  // afterwards. One stray huge ClientId must not turn that pre-size
  // into a massive allocation, so a density bound guards the flat path:
  // when the id space is much larger than the trace itself, fall back
  // to the map.
  const std::size_t spread =
      trace.requests.empty() ? 0
                             : static_cast<std::size_t>(trace.MaxClient()) + 1;
  const bool dense = spread <= 1024 || spread <= 2 * trace.requests.size();
  // The replay loop is batched: one AccessBatch call per block of
  // requests, then one stats pass over the block's hit bytes. Policies
  // guarantee the decisions are bit-identical to sequential Access().
  // Stats are touched once per batch and only per client — the total is
  // folded from the per-client accumulators at the end (it is additive),
  // so the old loop's two Record() calls per request become one
  // branchless one, with a zero-indexing fast path for the single-
  // client traces the microbenches replay.
  const Request* reqs = trace.requests.data();
  const std::size_t total = trace.requests.size();
  std::uint8_t hits[kSimulateBatch];
  if (dense) {
    std::vector<CacheStats> clients(spread);
    CacheStats* const client_stats = clients.data();
    const bool single_client = spread <= 1;
    for (std::size_t pos = 0; pos < total; pos += kSimulateBatch) {
      const std::size_t count = std::min(kSimulateBatch, total - pos);
      policy.AccessBatch(reqs + pos, pos, count, hits);
      if (single_client) {
        CacheStats& c = client_stats[0];
        for (std::size_t i = 0; i < count; ++i) {
          c.Record(reqs[pos + i], hits[i] != 0);
        }
      } else {
        for (std::size_t i = 0; i < count; ++i) {
          const Request& r = reqs[pos + i];
          client_stats[r.client].Record(r, hits[i] != 0);
        }
      }
    }
    for (std::size_t i = 0; i < clients.size(); ++i) {
      const CacheStats& c = clients[i];
      if (c.reads + c.writes == 0) continue;
      result.total += c;
      result.per_client.emplace(static_cast<ClientId>(i), c);
    }
  } else {
    // Sparse ids: accumulate straight into the result map. Slower per
    // request, but only ever taken for degenerate traces where a flat
    // vector would waste far more memory than the trace occupies.
    for (std::size_t pos = 0; pos < total; pos += kSimulateBatch) {
      const std::size_t count = std::min(kSimulateBatch, total - pos);
      policy.AccessBatch(reqs + pos, pos, count, hits);
      for (std::size_t i = 0; i < count; ++i) {
        const Request& r = reqs[pos + i];
        result.per_client[r.client].Record(r, hits[i] != 0);
      }
    }
    for (const auto& [client, stats] : result.per_client) {
      result.total += stats;
    }
  }
  return result;
}

}  // namespace clic
