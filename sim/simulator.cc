#include "sim/simulator.h"

#include <vector>

namespace clic {

SimResult Simulate(const Trace& trace, Policy& policy) {
  SimResult result;
  // Flat per-client accumulators, pre-sized by a single cheap scan so
  // the replay loop carries no growth branch; folded into the map
  // afterwards. Client ids are small dense integers.
  ClientId max_client = 0;
  for (const Request& r : trace.requests) {
    if (r.client > max_client) max_client = r.client;
  }
  std::vector<CacheStats> clients(
      trace.requests.empty() ? 0 : static_cast<std::size_t>(max_client) + 1);
  SeqNum seq = 0;
  for (const Request& r : trace.requests) {
    const bool hit = policy.Access(r, seq++);
    CacheStats& c = clients[r.client];
    if (r.op == OpType::kRead) {
      ++result.total.reads;
      ++c.reads;
      if (hit) {
        ++result.total.read_hits;
        ++c.read_hits;
      }
    } else {
      ++result.total.writes;
      ++c.writes;
      if (hit) {
        ++result.total.write_hits;
        ++c.write_hits;
      }
    }
  }
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const CacheStats& c = clients[i];
    if (c.reads + c.writes == 0) continue;
    result.per_client.emplace(static_cast<ClientId>(i), c);
  }
  return result;
}

}  // namespace clic
