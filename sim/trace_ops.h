// Trace transformations used by the evaluation: noise-hint injection
// (Section 6.3) and multi-client interleaving (Figure 11).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/trace.h"

namespace clic {

/// Appends `num_types` noise attributes to every request's hint vector,
/// with values drawn per request from Zipf(domain_size, zipf_z). This
/// multiplies the number of distinct hint sets without adding any
/// information, diluting CLIC's statistics exactly as the paper's
/// Section 6.3 experiment does. Deterministic in `seed`.
Trace InjectNoiseHints(const Trace& base, int num_types, int domain_size,
                       double zipf_z, std::uint64_t seed);

/// Round-robin interleaving of several client traces into one shared
/// stream. Requests are re-tagged with their source index as ClientId
/// and hint vectors are re-interned with that client id, so hint sets
/// from different clients stay distinct (as the paper's multi-client
/// experiment requires).
Trace Interleave(const std::string& name,
                 const std::vector<const Trace*>& sources);

}  // namespace clic
