// Binary trace serialization. A .trc file stores the trace name, the
// full hint registry (so Describe() works after loading) and the packed
// request records, protected by an FNV-1a checksum. LoadTrace returns
// nullopt on any mismatch — wrong name, version, truncation, corruption
// — so callers fall back to regeneration.
#pragma once

#include <optional>
#include <string>

#include "core/trace.h"

namespace clic {

bool SaveTrace(const Trace& trace, const std::string& path);

std::optional<Trace> LoadTrace(const std::string& path,
                               const std::string& expected_name);

}  // namespace clic
