#include "sim/trace_ops.h"

#include <algorithm>

#include "common/rng.h"

namespace clic {

Trace InjectNoiseHints(const Trace& base, int num_types, int domain_size,
                       double zipf_z, std::uint64_t seed) {
  Trace out;
  out.name = base.name + "+noise" + std::to_string(num_types);
  out.requests.reserve(base.requests.size());
  if (num_types <= 0) {
    // No noise: copy the requests and deep-copy the registry. Sharing
    // base.hints would alias mutable interning state — a later Intern()
    // through either trace would mutate both.
    out.hints = std::make_shared<HintRegistry>(*base.hints);
    out.requests = base.requests;
    out.client_bound = base.client_bound;  // same clients; reuse or stay lazy
    return out;
  }
  Rng rng(seed);
  ZipfGenerator zipf(static_cast<std::uint64_t>(std::max(1, domain_size)),
                     zipf_z);
  for (const Request& r : base.requests) {
    HintVector v = base.hints->Get(r.hint_set);
    for (int t = 0; t < num_types; ++t) {
      v.attrs.push_back(zipf(rng));
    }
    Request nr = r;
    nr.hint_set = out.hints->Intern(std::move(v));
    out.requests.push_back(nr);
  }
  out.client_bound = base.client_bound;  // clients are copied unchanged
  return out;
}

Trace Interleave(const std::string& name,
                 const std::vector<const Trace*>& sources) {
  Trace out;
  out.name = name;
  std::size_t total = 0;
  for (const Trace* t : sources) total += t->size();
  out.requests.reserve(total);
  std::vector<std::size_t> pos(sources.size(), 0);
  // Pre-intern a hint-id translation table per source to keep the merge
  // loop free of hashing for already-seen ids.
  std::vector<std::vector<std::uint32_t>> remap(sources.size());
  for (std::size_t s = 0; s < sources.size(); ++s) {
    remap[s].assign(sources[s]->hints->size(), kInvalidIndex);
  }
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t s = 0; s < sources.size(); ++s) {
      if (pos[s] >= sources[s]->size()) continue;
      progressed = true;
      Request r = sources[s]->requests[pos[s]++];
      r.client = static_cast<ClientId>(s);
      std::uint32_t& mapped = remap[s][r.hint_set];
      if (mapped == kInvalidIndex) {
        HintVector v = sources[s]->hints->Get(r.hint_set);
        v.client = static_cast<ClientId>(s);
        mapped = out.hints->Intern(std::move(v));
      }
      r.hint_set = mapped;
      out.requests.push_back(r);
    }
  }
  out.CacheMaxClient();
  return out;
}

}  // namespace clic
