// Policy registry for the evaluation: the paper's five figure policies
// plus the related-work baselines used by the policy ablation.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "core/clic.h"
#include "core/policy.h"
#include "core/trace.h"

namespace clic {

enum class PolicyKind {
  kOpt,    // Belady upper bound
  kTq,     // write-hint two-queue (Li et al., FAST '05)
  kLru,
  kArc,    // Megiddo & Modha, FAST '03
  kClic,   // this paper
  kClock,  // related-work baselines (Section 7)
  kTwoQ,
  kMq,
};

const char* PolicyName(PolicyKind kind);

/// Case-insensitive inverse of PolicyName ("lru", "2q", "CLIC", ...).
/// Returns nullopt for unknown names.
std::optional<PolicyKind> ParsePolicyKind(std::string_view name);

/// Every kind: the paper's legend order, then the related-work
/// baselines. Used by `clic_sweep --list` and flag validation.
const std::vector<PolicyKind>& AllPolicies();

/// The five policies plotted in Figures 6-8, in the paper's legend order.
inline std::array<PolicyKind, 5> PaperPolicies() {
  return {PolicyKind::kOpt, PolicyKind::kTq, PolicyKind::kLru,
          PolicyKind::kArc, PolicyKind::kClic};
}

/// Builds a policy instance for one simulation run. `trace` must outlive
/// the policy and is required by kOpt (clairvoyant next-use oracle);
/// `options` applies to kClic only.
std::unique_ptr<Policy> MakePolicy(PolicyKind kind, std::size_t cache_pages,
                                   const Trace* trace,
                                   const ClicOptions& options);

}  // namespace clic
