#include "sim/policy_factory.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "policies/arc.h"
#include "policies/clock.h"
#include "policies/lru.h"
#include "policies/mq.h"
#include "policies/opt.h"
#include "policies/tq.h"
#include "policies/two_q.h"

namespace clic {

const char* PolicyName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kOpt:
      return "OPT";
    case PolicyKind::kTq:
      return "TQ";
    case PolicyKind::kLru:
      return "LRU";
    case PolicyKind::kArc:
      return "ARC";
    case PolicyKind::kClic:
      return "CLIC";
    case PolicyKind::kClock:
      return "CLOCK";
    case PolicyKind::kTwoQ:
      return "2Q";
    case PolicyKind::kMq:
      return "MQ";
  }
  return "?";
}

const std::vector<PolicyKind>& AllPolicies() {
  static const std::vector<PolicyKind> kinds = {
      PolicyKind::kOpt,   PolicyKind::kTq,  PolicyKind::kLru,
      PolicyKind::kArc,   PolicyKind::kClic, PolicyKind::kClock,
      PolicyKind::kTwoQ,  PolicyKind::kMq,
  };
  return kinds;
}

std::optional<PolicyKind> ParsePolicyKind(std::string_view name) {
  auto equals_ignore_case = [](std::string_view a, std::string_view b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (std::toupper(static_cast<unsigned char>(a[i])) !=
          std::toupper(static_cast<unsigned char>(b[i]))) {
        return false;
      }
    }
    return true;
  };
  for (PolicyKind kind : AllPolicies()) {
    if (equals_ignore_case(name, PolicyName(kind))) return kind;
  }
  if (equals_ignore_case(name, "TWOQ")) return PolicyKind::kTwoQ;
  return std::nullopt;
}

std::unique_ptr<Policy> MakePolicy(PolicyKind kind, std::size_t cache_pages,
                                   const Trace* trace,
                                   const ClicOptions& options) {
  switch (kind) {
    case PolicyKind::kOpt:
      if (trace == nullptr) {
        std::fprintf(stderr, "MakePolicy(kOpt) requires a trace\n");
        std::exit(1);
      }
      return std::make_unique<OptPolicy>(cache_pages, *trace);
    case PolicyKind::kTq:
      return std::make_unique<TqPolicy>(cache_pages);
    case PolicyKind::kLru:
      return std::make_unique<LruPolicy>(cache_pages);
    case PolicyKind::kArc:
      return std::make_unique<ArcPolicy>(cache_pages);
    case PolicyKind::kClic:
      return std::make_unique<ClicPolicy>(cache_pages, options);
    case PolicyKind::kClock:
      return std::make_unique<ClockPolicy>(cache_pages);
    case PolicyKind::kTwoQ:
      return std::make_unique<TwoQPolicy>(cache_pages);
    case PolicyKind::kMq:
      return std::make_unique<MqPolicy>(cache_pages);
  }
  return nullptr;
}

}  // namespace clic
