#include "workload/trace_factory.h"

#include <array>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/fnv1a.h"
#include "common/rng.h"
#include "workload/server_trace_builder.h"

namespace clic {
namespace {

// Hint attribute layout (DB2-style): {pool, object, object_type,
// access_type}. MySQL traces use the coarser {pool, object, access_type}
// (no object-type attribute) to model its less informative hints.
enum AccessType : std::uint32_t {
  kLookup = 0,
  kScan = 1,
  kInsert = 2,
  kCheckpoint = 3,
};

struct ObjectSpec {
  std::uint32_t pages = 0;
  double weight = 0.0;      // relative access frequency (OLTP mix)
  double dirty_prob = 0.0;  // chance a logical access dirties the page
  std::uint8_t obj_type = 0;  // 0 = data, 1 = index
  double theta = 0.7;         // Zipf skew within the object
  std::uint8_t pool = 0;      // client buffer pool attribute
};

std::uint64_t SeedFromName(const std::string& name) {
  return Fnv1aHash(name) ^ 0xC11C0FA57ull;  // repo-wide trace-seed salt
}

class ObjectSet {
 public:
  ObjectSet(Trace* trace, std::vector<ObjectSpec> specs, bool db2_hints)
      : specs_(std::move(specs)), db2_hints_(db2_hints) {
    double cumulative = 0.0;
    PageId base = 0;
    for (const ObjectSpec& spec : specs_) {
      bases_.push_back(base);
      base += spec.pages;
      cumulative += spec.weight;
      cumulative_weight_.push_back(cumulative);
      zipf_.emplace_back(spec.pages, spec.theta);
    }
    total_weight_ = cumulative;
    // Pre-intern one hint set per (object, access type).
    hint_ids_.resize(specs_.size());
    for (std::size_t o = 0; o < specs_.size(); ++o) {
      for (std::uint32_t a = 0; a <= kCheckpoint; ++a) {
        HintVector v;
        v.client = 0;
        if (db2_hints_) {
          v.attrs = {specs_[o].pool, static_cast<std::uint32_t>(o),
                     specs_[o].obj_type, a};
        } else {
          v.attrs = {specs_[o].pool, static_cast<std::uint32_t>(o), a};
        }
        hint_ids_[o][a] = trace->hints->Intern(std::move(v));
      }
    }
  }

  std::size_t size() const { return specs_.size(); }
  const ObjectSpec& spec(std::size_t o) const { return specs_[o]; }
  PageId base(std::size_t o) const { return bases_[o]; }
  HintSetId hint(std::size_t o, AccessType a) const {
    return hint_ids_[o][a];
  }

  std::size_t PickByWeight(Rng& rng) const {
    const double x = rng.NextDouble() * total_weight_;
    for (std::size_t o = 0; o < cumulative_weight_.size(); ++o) {
      if (x < cumulative_weight_[o]) return o;
    }
    return cumulative_weight_.size() - 1;
  }

  PageId PickPage(std::size_t o, Rng& rng) {
    return bases_[o] + zipf_[o](rng);
  }

 private:
  std::vector<ObjectSpec> specs_;
  std::vector<PageId> bases_;
  std::vector<double> cumulative_weight_;
  std::vector<ZipfGenerator> zipf_;
  std::vector<std::array<HintSetId, kCheckpoint + 1>> hint_ids_;
  double total_weight_ = 0.0;
  bool db2_hints_;
};

// ---- TPC-C-shaped OLTP (the DB2_C* traces) --------------------------------

Trace MakeOltpTrace(const NamedTraceInfo& info, std::uint64_t target) {
  Trace trace;
  trace.name = info.name;
  trace.requests.reserve(target + 8);
  Rng rng(SeedFromName(info.name));

  // 120K-page TPC-C-like database: pools group related tables, indexes
  // are small and hot, order/order-line are insert-heavy.
  std::vector<ObjectSpec> specs = {
      {50, 6.0, 0.40, 0, 0.30, 0},     // warehouse
      {100, 6.0, 0.40, 0, 0.30, 0},    // district
      {8000, 8.0, 0.00, 0, 0.70, 1},   // item data (read only)
      {500, 8.0, 0.00, 1, 0.50, 1},    // item index
      {18000, 12.0, 0.30, 0, 0.80, 2},  // customer data
      {1500, 12.0, 0.05, 1, 0.60, 2},   // customer index
      {30000, 22.0, 0.50, 0, 0.75, 3},  // stock data
      {2500, 22.0, 0.05, 1, 0.55, 3},   // stock index
      {14000, 7.0, 0.60, 0, 0.90, 4},   // orders data
      {1350, 7.0, 0.30, 1, 0.80, 4},    // orders index
      {40000, 14.0, 0.60, 0, 0.85, 4},  // order-line data
      {4000, 2.0, 0.80, 0, 0.95, 5},    // history (append)
  };
  ObjectSet objects(&trace, std::move(specs), /*db2_hints=*/true);

  ServerTraceBuilder builder(&trace, info.buffer_pages, target);
  constexpr std::uint64_t kCheckpointEvery = 60'000;  // logical accesses
  std::uint64_t next_checkpoint = kCheckpointEvery;
  while (!builder.Done()) {
    const std::size_t o = objects.PickByWeight(rng);
    const ObjectSpec& spec = objects.spec(o);
    const PageId page = objects.PickPage(o, rng);
    AccessType access = kLookup;
    if (spec.obj_type == 0 && spec.dirty_prob >= 0.6 && rng.Chance(0.5)) {
      access = kInsert;  // append-heavy tables
    }
    builder.LogicalAccess(page, objects.hint(o, access),
                          rng.Chance(spec.dirty_prob));
    if (builder.logical_accesses() >= next_checkpoint) {
      next_checkpoint += kCheckpointEvery;
      builder.Checkpoint(2'000, objects.hint(o, kCheckpoint));
    }
  }
  trace.requests.resize(target);
  return trace;
}

// ---- TPC-H-shaped DSS (the DB2_H* and MY_H* traces) -----------------------

struct DssLayout {
  std::vector<ObjectSpec> specs;
  std::vector<std::size_t> fact_objects;  // scanned
  std::vector<std::size_t> dim_objects;   // index-looked-up
  std::size_t temp_object = 0;
};

DssLayout Db2DssLayout() {
  DssLayout layout;
  layout.specs = {
      {90'000, 0, 0.00, 0, 0.0, 0},  // 0 lineitem (fact)
      {30'000, 0, 0.00, 0, 0.0, 0},  // 1 orders (fact)
      {24'000, 0, 0.00, 0, 0.0, 1},  // 2 partsupp (fact)
      {12'000, 4, 0.00, 0, 0.80, 2},  // 3 part data
      {800, 8, 0.00, 1, 0.60, 2},     // 4 part index
      {4'000, 3, 0.00, 0, 0.70, 2},   // 5 supplier data
      {300, 6, 0.00, 1, 0.50, 2},     // 6 supplier index
      {8'000, 4, 0.00, 0, 0.80, 3},   // 7 customer data
      {500, 8, 0.00, 1, 0.60, 3},     // 8 customer index
      {40, 6, 0.00, 0, 0.30, 3},      // 9 nation/region
      {10'360, 0, 1.00, 0, 0.0, 4},   // 10 temp / sort spill
  };
  layout.fact_objects = {0, 1, 2};
  layout.dim_objects = {3, 4, 5, 6, 7, 8, 9};
  layout.temp_object = 10;
  return layout;
}

DssLayout MySqlDssLayout() {
  DssLayout layout;
  layout.specs = {
      {80'000, 0, 0.00, 0, 0.0, 0},  // 0 lineitem (fact)
      {25'000, 0, 0.00, 0, 0.0, 0},  // 1 orders (fact)
      {10'000, 4, 0.00, 0, 0.80, 0},  // 2 part data
      {700, 8, 0.00, 1, 0.60, 0},     // 3 part index
      {3'000, 3, 0.00, 0, 0.70, 0},   // 4 supplier data
      {250, 6, 0.00, 1, 0.50, 0},     // 5 supplier index
      {7'000, 4, 0.00, 0, 0.80, 0},   // 6 customer data
      {450, 8, 0.00, 1, 0.60, 0},     // 7 customer index
      {30, 6, 0.00, 0, 0.30, 0},      // 8 nation/region
      {23'570, 0, 1.00, 0, 0.0, 0},   // 9 temp / sort spill
  };
  layout.fact_objects = {0, 1};
  layout.dim_objects = {2, 3, 4, 5, 6, 7, 8};
  layout.temp_object = 9;
  return layout;
}

Trace MakeDssTrace(const NamedTraceInfo& info, std::uint64_t target,
                   DssLayout layout, bool db2_hints) {
  Trace trace;
  trace.name = info.name;
  trace.requests.reserve(target + 8);
  Rng rng(SeedFromName(info.name));
  ObjectSet objects(&trace, std::move(layout.specs), db2_hints);

  // Weighted pick over dimension objects only.
  double dim_total = 0.0;
  std::vector<double> dim_cumulative;
  for (std::size_t d : layout.dim_objects) {
    dim_total += objects.spec(d).weight;
    dim_cumulative.push_back(dim_total);
  }
  auto pick_dim = [&]() {
    const double x = rng.NextDouble() * dim_total;
    for (std::size_t i = 0; i < dim_cumulative.size(); ++i) {
      if (x < dim_cumulative[i]) return layout.dim_objects[i];
    }
    return layout.dim_objects.back();
  };

  ServerTraceBuilder builder(&trace, info.buffer_pages, target);
  const std::size_t temp = layout.temp_object;
  const std::uint32_t temp_pages = objects.spec(temp).pages;
  PageId temp_cursor = 0;
  PageId prev_run_start = 0;
  std::uint32_t prev_run_len = 0;

  // Query mix: large fact scans with correlated dimension lookups,
  // pure index-lookup queries, and sort spills into the temp area that
  // are written, evicted (replacement writes), and read back.
  while (!builder.Done()) {
    if (rng.Chance(0.55)) {
      // Scan query over one fact table.
      const std::size_t fact =
          layout.fact_objects[rng.Below(layout.fact_objects.size())];
      const std::uint32_t pages = objects.spec(fact).pages;
      const std::uint32_t len = static_cast<std::uint32_t>(
          pages / 10 + rng.Below(pages / 2));
      PageId cursor = static_cast<PageId>(rng.Below(pages));
      const HintSetId scan_hint = objects.hint(fact, kScan);
      for (std::uint32_t i = 0; i < len && !builder.Done(); ++i) {
        builder.LogicalAccess(objects.base(fact) + cursor, scan_hint,
                              /*dirty=*/false);
        cursor = cursor + 1 == pages ? 0 : cursor + 1;
        if (rng.Chance(0.08)) {
          // Correlated nested-loop dimension lookup.
          const std::size_t d = pick_dim();
          builder.LogicalAccess(objects.PickPage(d, rng),
                                objects.hint(d, kLookup),
                                /*dirty=*/false);
        }
      }
      if (rng.Chance(0.4)) {
        // Sort spill: write a fresh temp run now, and read back the
        // *previous* run — by now the intervening scan has pushed it out
        // of the client buffer, so the read-back hits the server on
        // pages it recently saw as replacement writes. This is the
        // write-then-re-read pattern TQ and CLIC both exploit.
        const std::uint32_t run = static_cast<std::uint32_t>(
            200 + rng.Below(2'000));
        const PageId run_start = temp_cursor;
        const HintSetId temp_hint = objects.hint(temp, kInsert);
        for (std::uint32_t i = 0; i < run && !builder.Done(); ++i) {
          builder.LogicalAccess(objects.base(temp) + temp_cursor, temp_hint,
                                /*dirty=*/true);
          temp_cursor = temp_cursor + 1 == temp_pages ? 0 : temp_cursor + 1;
        }
        PageId read_cursor = prev_run_start;
        const HintSetId temp_read = objects.hint(temp, kLookup);
        for (std::uint32_t i = 0; i < prev_run_len && !builder.Done(); ++i) {
          builder.LogicalAccess(objects.base(temp) + read_cursor, temp_read,
                                /*dirty=*/false);
          read_cursor = read_cursor + 1 == temp_pages ? 0 : read_cursor + 1;
        }
        prev_run_start = run_start;
        prev_run_len = run;
      }
    } else {
      // Index-lookup query burst.
      const std::uint64_t lookups = 200 + rng.Below(1'800);
      for (std::uint64_t i = 0; i < lookups && !builder.Done(); ++i) {
        const std::size_t d = pick_dim();
        builder.LogicalAccess(objects.PickPage(d, rng),
                              objects.hint(d, kLookup),
                              /*dirty=*/false);
      }
    }
  }
  trace.requests.resize(target);
  return trace;
}

}  // namespace

const std::vector<NamedTraceInfo>& NamedTraces() {
  static const std::vector<NamedTraceInfo> traces = {
      {"DB2_C60", "DB2", "TPCC", 120'000, 6'000, 2'000'000},
      {"DB2_C300", "DB2", "TPCC", 120'000, 30'000, 2'000'000},
      {"DB2_C540", "DB2", "TPCC", 120'000, 54'000, 2'000'000},
      {"DB2_H80", "DB2", "TPCH", 180'000, 8'000, 1'500'000},
      {"DB2_H400", "DB2", "TPCH", 180'000, 40'000, 1'500'000},
      {"DB2_H720", "DB2", "TPCH", 180'000, 72'000, 1'500'000},
      {"MY_H65", "MySQL", "TPCH", 150'000, 6'500, 1'000'000},
      {"MY_H98", "MySQL", "TPCH", 150'000, 9'800, 1'000'000},
  };
  return traces;
}

Trace MakeNamedTrace(const std::string& name,
                     std::uint64_t target_requests) {
  for (const NamedTraceInfo& info : NamedTraces()) {
    if (info.name != name) continue;
    std::uint64_t target = info.target_requests;
    if (target_requests != 0 && target_requests < target) {
      target = target_requests;
    }
    Trace trace =
        info.workload == "TPCC"
            ? MakeOltpTrace(info, target)
            : MakeDssTrace(info, target,
                           info.dbms == "DB2" ? Db2DssLayout()
                                              : MySqlDssLayout(),
                           info.dbms == "DB2");
    trace.CacheMaxClient();
    return trace;
  }
  std::fprintf(stderr, "MakeNamedTrace: unknown trace '%s'\n", name.c_str());
  std::exit(1);
}

}  // namespace clic
