// Workload scenario engine: declarative synthetic workloads beyond the
// paper's eight fixed traces. A WorkloadSpec is parsed from a compact
// text grammar
//
//   <kind>[:<key>=<value>[,<key>=<value>...]]
//
// with kinds `zipf` (stationary, optionally rank-shifted, popularity),
// `scan` (pure cyclic sequential scan), `scan-mix` (Zipf working set
// polluted by periodic scan bursts), `phase` (working set that shifts
// abruptly or slides gradually), and `tenants` (N clients with
// per-client skew and weighted arrival interleave). Every generator
// pushes its logical access stream through the simulated client buffer
// (ServerTraceBuilder), so the emitted Trace carries the same
// second-tier miss/writeback shape and CLIC-consumable hint
// annotations as the named paper traces. Generation is deterministic:
// the same spec (including `seed=`) yields a byte-identical trace on
// every machine, and cache files embed kScenarioGeneratorVersion so a
// generator change never silently reuses stale .trc files.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/trace.h"

namespace clic {

/// Bump whenever any scenario generator's output changes for the same
/// spec. Scenario cache filenames embed it (see sweep/trace_cache.cc).
inline constexpr int kScenarioGeneratorVersion = 1;

enum class ScenarioKind : std::uint8_t {
  kZipf,     // stationary Zipf popularity, optional rank shift
  kScan,     // pure cyclic sequential scan
  kScanMix,  // Zipf hot set + periodic sequential scan bursts
  kPhase,    // phase-shifting working set (abrupt jump or gradual slide)
  kTenants,  // multi-tenant skew mix with weighted arrival interleave
};

const char* ScenarioKindName(ScenarioKind kind);

/// A parsed scenario description. Defaults below are what an omitted
/// key means; `text` preserves the token the spec was resolved from
/// (preset name or the inline spec string) and becomes the Trace name.
struct WorkloadSpec {
  ScenarioKind kind = ScenarioKind::kZipf;
  std::string text;

  // Common keys (all kinds).
  std::uint64_t pages = 120'000;     // pages=    database size
  std::uint64_t requests = 600'000;  // n=        server-trace length
  std::uint64_t seed = 1;            // seed=     RNG seed
  std::uint64_t buffer = 2'000;      // buffer=   client buffer pages
  double write = 0.10;               // write=    dirty probability

  // zipf / scan-mix / phase / tenants.
  double theta = 0.9;       // theta=  Zipf skew (0 = uniform)
  std::uint64_t shift = 0;  // shift=  rank->page rotation (zipf, scan-mix)

  // scan-mix.
  std::uint64_t scan_every = 40'000;  // scan-every= hot accesses per burst
  std::uint64_t scan_len = 60'000;    // scan-len=   pages per burst

  // phase.
  std::uint64_t phase_len = 150'000;  // phase-len= accesses per phase
  std::uint64_t hot_pages = 15'000;   // hot-pages= working-set size
  bool gradual = false;               // gradual=   1: slide, 0: jump

  // tenants.
  std::uint64_t tenants = 4;  // tenants= client count
};

/// Named scenario presets — the scenario analogue of NamedTraces().
/// Preset names are valid workload tokens everywhere a named trace is
/// (clic_sweep --traces, clic_serve --trace/--workload, TraceCache).
struct ScenarioPreset {
  const char* name;
  const char* spec;   // the inline spec the name expands to
  const char* blurb;  // one-line description for --list / docs
};

const std::vector<ScenarioPreset>& ScenarioPresets();

/// Parses an inline spec string. Unknown kinds/keys, malformed values,
/// and out-of-range parameters (e.g. buffer >= pages, which could never
/// miss and would starve generation) yield nullopt with a one-line
/// reason in *error. Never exits: CLIs wrap this in their own Die().
std::optional<WorkloadSpec> ParseWorkloadSpec(const std::string& text,
                                              std::string* error = nullptr);

/// Resolves a workload token: a ScenarioPresets() name, else an inline
/// spec via ParseWorkloadSpec. The returned spec's `text` is the token
/// as given, so the generated Trace's name round-trips through .trc
/// caching and CSV/JSON rows.
std::optional<WorkloadSpec> ResolveWorkload(const std::string& name_or_spec,
                                            std::string* error = nullptr);

/// Filename-safe cache stem for a workload token: the token itself when
/// it is already safe (preset names), else "scn" + 16 hex digits of its
/// FNV-1a hash (inline specs contain '=', ',' and ':').
std::string ScenarioCacheStem(const std::string& name_or_spec);

/// Generates the scenario trace, capped at `target_requests` when
/// non-zero and smaller than the spec's `n`. Deterministic in the spec
/// alone. The spec must have come from ParseWorkloadSpec/
/// ResolveWorkload (parameters validated there).
Trace MakeScenarioTrace(const WorkloadSpec& spec,
                        std::uint64_t target_requests = 0);

}  // namespace clic
