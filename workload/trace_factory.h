// Named synthetic traces standing in for the paper's Figure 5 inventory
// (DB2 and MySQL clients running TPC-C / TPC-H with various client
// buffer sizes), generated at 1/10 page scale. See DESIGN.md for the
// scaling rules and the per-trace target lengths.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/trace.h"

namespace clic {

struct NamedTraceInfo {
  std::string name;
  std::string dbms;      // "DB2" / "MySQL"
  std::string workload;  // "TPCC" / "TPCH"
  std::uint64_t db_pages = 0;
  std::uint64_t buffer_pages = 0;      // client buffer pool size
  std::uint64_t target_requests = 0;   // DESIGN.md scaled trace length
};

/// Bump whenever any generator's output changes for the same
/// (name, target) pair. Cache filenames embed it (see bench_util.h), so
/// stale .trc files are never silently reused.
inline constexpr int kTraceGeneratorVersion = 1;

/// The eight traces of the evaluation, in Figure 5 order.
const std::vector<NamedTraceInfo>& NamedTraces();

/// Generates the named trace with at most `target_requests` requests
/// (0 means the full DESIGN.md length). Deterministic: the seed is
/// derived from the trace name only, so the same (name, target) pair is
/// byte-identical on every machine. Exits with an error for unknown
/// names.
Trace MakeNamedTrace(const std::string& name,
                     std::uint64_t target_requests = 0);

}  // namespace clic
