// Feeds a logical (client-side) access stream through a ClientBuffer
// and records the resulting server-side request trace: buffer-miss
// reads, replacement writebacks of dirty victims, and checkpoint
// recovery writes. Every trace generator in workload/ — the eight named
// paper traces and the scenario engine — emits requests through this
// one funnel, so all of them produce the same hint-annotated request
// shapes the CLIC engine consumes.
#pragma once

#include <cstdint>

#include "core/trace.h"
#include "workload/client_buffer.h"

namespace clic {

class ServerTraceBuilder {
 public:
  /// Requests are appended to `trace` and tagged with `client` (the
  /// named paper traces use the default 0; the tenant-mix scenario
  /// builds one builder per tenant). `target` is the request count at
  /// which Done() flips; with several builders sharing one trace it is
  /// the *shared* total, so interleaved tenants stop together.
  ServerTraceBuilder(Trace* trace, std::size_t client_buffer_pages,
                     std::uint64_t target, ClientId client = 0)
      : trace_(trace),
        buffer_(client_buffer_pages),
        target_(target),
        client_(client) {}

  bool Done() const { return trace_->requests.size() >= target_; }
  std::uint64_t logical_accesses() const { return logical_; }

  void LogicalAccess(PageId page, HintSetId hint, bool dirty) {
    ++logical_;
    const ClientBuffer::AccessResult result =
        buffer_.Access(page, dirty, hint);
    if (result.miss) {
      Request r;
      r.page = page;
      r.hint_set = hint;
      r.client = client_;
      r.op = OpType::kRead;
      trace_->requests.push_back(r);
    }
    if (result.evicted && result.evicted_dirty) {
      Request w;
      w.page = result.evicted_page;
      w.hint_set = result.evicted_hint;
      w.client = client_;
      w.op = OpType::kWrite;
      w.write_kind = WriteKind::kReplacement;
      trace_->requests.push_back(w);
    }
  }

  void Checkpoint(std::size_t max_pages, HintSetId hint) {
    buffer_.FlushDirty(max_pages, [&](PageId page, HintSetId /*last*/) {
      Request w;
      w.page = page;
      w.hint_set = hint;
      w.client = client_;
      w.op = OpType::kWrite;
      w.write_kind = WriteKind::kRecovery;
      trace_->requests.push_back(w);
    });
  }

 private:
  Trace* trace_;
  ClientBuffer buffer_;
  std::uint64_t target_;
  std::uint64_t logical_ = 0;
  ClientId client_ = 0;
};

}  // namespace clic
