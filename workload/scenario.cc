#include "workload/scenario.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/fnv1a.h"
#include "common/rng.h"
#include "workload/server_trace_builder.h"

namespace clic {
namespace {

// Hint attribute layout shared by every scenario generator:
// {region, access_type}. `region` is a popularity band (log2 of the
// Zipf rank) for skewed accesses, a spatial region for phase working
// sets, and kScanRegion for sequential scans; access_type separates
// lookups from scans. This is the client knowledge the paper's hints
// model — the client can tell the server what kind of access it is
// making — and it is exactly what lets CLIC rank scan-polluted traffic
// below the hot set.
enum AccessType : std::uint32_t { kLookup = 0, kScanAccess = 1 };
inline constexpr std::uint32_t kScanRegion = 255;
inline constexpr std::uint32_t kMaxRegions = 256;

// Generation backstop: a pathological spec whose client buffers absorb
// nearly every logical access would otherwise loop forever waiting for
// misses. Parse-time validation rules the common cases out (buffer <
// pages, and < pages/tenants); this bounds the rest — generation stops
// after this many logical accesses per emitted request and the trace
// comes out short, with a loud warning, instead of hanging.
inline constexpr std::uint64_t kMaxLogicalPerRequest = 1'000;

std::uint64_t SeedOf(const WorkloadSpec& spec) {
  Fnv1a h;
  h.MixScalar(static_cast<std::uint32_t>(spec.kind));
  h.MixScalar(spec.seed);
  return h.value() ^ 0x5CE7A410C11Cull;  // scenario-engine seed salt
}

/// Popularity band of a Zipf rank: 0 for the ~64 hottest pages, then
/// one band per rank octave, capped at 15. Coarse enough that bands
/// gather solid per-window statistics, fine enough that CLIC can rank
/// the head of the distribution above the tail.
std::uint32_t RankBand(std::uint64_t rank) {
  std::uint64_t r = rank >> 6;
  std::uint32_t band = 0;
  while (r != 0 && band < 15) {
    ++band;
    r >>= 1;
  }
  return band;
}

/// Lazily interns the (region, access_type) hint sets of one client.
/// First-seen interning order is a deterministic function of the access
/// stream, which keeps regenerated traces byte-identical.
class ScenarioHints {
 public:
  ScenarioHints(Trace* trace, ClientId client)
      : trace_(trace), client_(client), ids_(kMaxRegions * 2, kInvalidIndex) {}

  HintSetId Get(std::uint32_t region, AccessType access) {
    const std::size_t slot = region * 2 + access;
    if (ids_[slot] == kInvalidIndex) {
      HintVector v;
      v.client = client_;
      v.attrs = {region, static_cast<std::uint32_t>(access)};
      ids_[slot] = trace_->hints->Intern(std::move(v));
    }
    return ids_[slot];
  }

 private:
  Trace* trace_;
  ClientId client_;
  std::vector<HintSetId> ids_;
};

// ---- generators ------------------------------------------------------------

/// One Zipf-popularity lookup, shared by the zipf and scan-mix
/// generators so their hot-set semantics (rank draw, `shift` rotation
/// of the rank->page mapping, band hinting, dirty probability) can
/// never drift apart — "scan-pollute is zipf-hot plus bursts" must
/// stay literally true.
void ZipfAccess(const WorkloadSpec& spec, Rng& rng, ZipfGenerator& zipf,
                ScenarioHints& hints, ServerTraceBuilder& b) {
  const std::uint64_t rank = zipf(rng);
  // `shift` rotates the rank->page mapping: the same popularity curve
  // lands on a different page set, which is what makes `zipf-shifted`
  // a cold-cache restart of `zipf-hot` rather than a new distribution.
  const PageId page = static_cast<PageId>((rank + spec.shift) % spec.pages);
  b.LogicalAccess(page, hints.Get(RankBand(rank), kLookup),
                  rng.Chance(spec.write));
}

void GenZipf(const WorkloadSpec& spec, std::uint64_t target,
             std::uint64_t budget, Trace* trace) {
  Rng rng(SeedOf(spec));
  ZipfGenerator zipf(spec.pages, spec.theta);
  ServerTraceBuilder b(trace, spec.buffer, target);
  ScenarioHints hints(trace, 0);
  while (!b.Done() && b.logical_accesses() < budget) {
    ZipfAccess(spec, rng, zipf, hints, b);
  }
}

void GenScan(const WorkloadSpec& spec, std::uint64_t target,
             std::uint64_t budget, Trace* trace) {
  ServerTraceBuilder b(trace, spec.buffer, target);
  ScenarioHints hints(trace, 0);
  const HintSetId scan_hint = hints.Get(kScanRegion, kScanAccess);
  PageId cursor = 0;
  while (!b.Done() && b.logical_accesses() < budget) {
    b.LogicalAccess(cursor, scan_hint, /*dirty=*/false);
    cursor = cursor + 1 == spec.pages ? 0 : cursor + 1;
  }
}

void GenScanMix(const WorkloadSpec& spec, std::uint64_t target,
                std::uint64_t budget, Trace* trace) {
  Rng rng(SeedOf(spec));
  ZipfGenerator zipf(spec.pages, spec.theta);
  ServerTraceBuilder b(trace, spec.buffer, target);
  ScenarioHints hints(trace, 0);
  PageId cursor = 0;  // scan position persists across bursts (cyclic)
  while (!b.Done() && b.logical_accesses() < budget) {
    for (std::uint64_t i = 0;
         i < spec.scan_every && !b.Done() && b.logical_accesses() < budget;
         ++i) {
      ZipfAccess(spec, rng, zipf, hints, b);
    }
    const HintSetId scan_hint = hints.Get(kScanRegion, kScanAccess);
    for (std::uint64_t i = 0;
         i < spec.scan_len && !b.Done() && b.logical_accesses() < budget;
         ++i) {
      b.LogicalAccess(cursor, scan_hint, /*dirty=*/false);
      cursor = cursor + 1 == spec.pages ? 0 : cursor + 1;
    }
  }
}

void GenPhase(const WorkloadSpec& spec, std::uint64_t target,
              std::uint64_t budget, Trace* trace) {
  Rng rng(SeedOf(spec));
  const std::uint64_t window = spec.hot_pages;  // validated <= pages
  ZipfGenerator zipf(window, spec.theta);
  ServerTraceBuilder b(trace, spec.buffer, target);
  ScenarioHints hints(trace, 0);
  // Hints name *spatial* regions (page / region_size), not phases, so a
  // region's statistics persist when the working set returns to it.
  const std::uint64_t region_size = std::max<std::uint64_t>(1, spec.pages / 32);
  // Abrupt mode: the working-set offset jumps by a full window every
  // phase_len logical accesses, cycling through floor(pages / window)
  // disjoint positions. Gradual mode: the offset slides one page every
  // step_every accesses, covering one full window per phase_len.
  const std::uint64_t positions =
      std::max<std::uint64_t>(1, spec.pages / window);
  const std::uint64_t step_every =
      std::max<std::uint64_t>(1, spec.phase_len / window);
  const std::uint64_t slide_span = spec.pages - window + 1;
  while (!b.Done() && b.logical_accesses() < budget) {
    const std::uint64_t logical = b.logical_accesses();
    const std::uint64_t offset =
        spec.gradual
            ? (logical / step_every) % slide_span
            : ((logical / spec.phase_len) % positions) * window;
    const std::uint64_t rank = zipf(rng);
    const PageId page = static_cast<PageId>(offset + rank);
    const std::uint32_t region = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(page / region_size, kScanRegion - 1));
    b.LogicalAccess(page, hints.Get(region, kLookup), rng.Chance(spec.write));
  }
}

void GenTenants(const WorkloadSpec& spec, std::uint64_t target,
                std::uint64_t budget, Trace* trace) {
  Rng rng(SeedOf(spec));
  const std::size_t tenants = static_cast<std::size_t>(spec.tenants);
  const std::uint64_t region =
      std::max<std::uint64_t>(1, spec.pages / tenants);
  std::vector<ServerTraceBuilder> builders;
  std::vector<ScenarioHints> hints;
  std::vector<ZipfGenerator> zipf;
  std::vector<double> cumulative;
  builders.reserve(tenants);
  hints.reserve(tenants);
  zipf.reserve(tenants);
  cumulative.reserve(tenants);
  double total = 0.0;
  for (std::size_t t = 0; t < tenants; ++t) {
    builders.emplace_back(trace, spec.buffer, target,
                          static_cast<ClientId>(t));
    hints.emplace_back(trace, static_cast<ClientId>(t));
    // Per-tenant skew fans out from the spec's theta: tenant 0 is the
    // most skewed, later tenants progressively flatter (toward uniform).
    zipf.emplace_back(region,
                      std::max(0.0, spec.theta - 0.15 * static_cast<double>(t)));
    // Harmonic arrival weights: tenant t arrives with weight 1/(t+1),
    // so the mix is dominated by the first tenants but every tenant
    // stays active.
    total += 1.0 / static_cast<double>(t + 1);
    cumulative.push_back(total);
  }
  std::uint64_t steps = 0;
  while (trace->requests.size() < target && steps < budget) {
    ++steps;
    const double x = rng.NextDouble() * total;
    std::size_t t = 0;
    while (t + 1 < tenants && x >= cumulative[t]) ++t;
    const std::uint64_t rank = zipf[t](rng);
    const PageId page = static_cast<PageId>(t * region + rank);
    builders[t].LogicalAccess(page, hints[t].Get(RankBand(rank), kLookup),
                              rng.Chance(spec.write));
  }
}

// ---- spec parsing ----------------------------------------------------------

bool ParseU64Value(const std::string& value, std::uint64_t* out) {
  if (value.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const std::uint64_t parsed = std::strtoull(value.c_str(), &end, 10);
  if (errno != 0 || end == value.c_str() || *end != '\0') return false;
  *out = parsed;
  return true;
}

bool ParseDoubleValue(const std::string& value, double* out) {
  if (value.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (errno != 0 || end == value.c_str() || *end != '\0' ||
      !std::isfinite(parsed)) {
    return false;
  }
  *out = parsed;
  return true;
}

constexpr char kValidKeys[] =
    "pages, n, seed, buffer, write, theta, shift, scan-every, scan-len, "
    "phase-len, hot-pages, gradual, tenants";

}  // namespace

const char* ScenarioKindName(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kZipf:
      return "zipf";
    case ScenarioKind::kScan:
      return "scan";
    case ScenarioKind::kScanMix:
      return "scan-mix";
    case ScenarioKind::kPhase:
      return "phase";
    case ScenarioKind::kTenants:
      return "tenants";
  }
  return "?";
}

const std::vector<ScenarioPreset>& ScenarioPresets() {
  static const std::vector<ScenarioPreset> presets = {
      {"zipf-hot", "zipf:pages=120000,theta=0.9,buffer=2000,n=600000",
       "stationary Zipf(0.9) popularity over 120k pages"},
      {"zipf-shifted",
       "zipf:pages=120000,theta=0.9,shift=60000,buffer=2000,n=600000",
       "same Zipf skew with the rank->page mapping rotated by 60k pages"},
      {"seq-scan", "scan:pages=120000,buffer=2000,n=400000",
       "pure cyclic sequential scan (every server policy should miss)"},
      {"scan-pollute",
       "scan-mix:pages=120000,theta=0.9,scan-every=40000,scan-len=60000,"
       "buffer=2000,n=800000",
       "Zipf hot set polluted by periodic 60k-page scan bursts"},
      {"phase-abrupt",
       "phase:pages=120000,hot-pages=15000,phase-len=150000,buffer=2000,"
       "n=800000",
       "15k-page working set jumping to a disjoint region every 150k "
       "accesses"},
      {"phase-gradual",
       "phase:pages=120000,hot-pages=15000,phase-len=150000,gradual=1,"
       "buffer=2000,n=800000",
       "15k-page working set sliding one window per 150k accesses"},
      {"tenant-mix4",
       "tenants:pages=160000,tenants=4,theta=0.95,buffer=1500,n=800000",
       "4 tenants, per-tenant skew 0.95/0.80/0.65/0.50, harmonic arrivals"},
  };
  return presets;
}

std::optional<WorkloadSpec> ParseWorkloadSpec(const std::string& text,
                                              std::string* error) {
  auto fail = [&](const std::string& why) -> std::optional<WorkloadSpec> {
    if (error) *error = why;
    return std::nullopt;
  };

  const std::size_t colon = text.find(':');
  const std::string kind_tok =
      colon == std::string::npos ? text : text.substr(0, colon);
  WorkloadSpec spec;
  if (kind_tok == "zipf") {
    spec.kind = ScenarioKind::kZipf;
  } else if (kind_tok == "scan") {
    spec.kind = ScenarioKind::kScan;
  } else if (kind_tok == "scan-mix") {
    spec.kind = ScenarioKind::kScanMix;
  } else if (kind_tok == "phase") {
    spec.kind = ScenarioKind::kPhase;
  } else if (kind_tok == "tenants") {
    spec.kind = ScenarioKind::kTenants;
  } else {
    return fail("unknown scenario kind '" + kind_tok +
                "' (valid kinds: zipf, scan, scan-mix, phase, tenants)");
  }
  spec.text = text;

  if (colon != std::string::npos) {
    const std::string body = text.substr(colon + 1);
    std::size_t start = 0;
    for (;;) {
      const std::size_t comma = body.find(',', start);
      const std::size_t end =
          comma == std::string::npos ? body.size() : comma;
      const std::string pair = body.substr(start, end - start);
      const std::size_t eq = pair.find('=');
      if (pair.empty() || eq == std::string::npos || eq == 0) {
        return fail("malformed key=value token '" + pair + "' in '" + text +
                    "'");
      }
      const std::string key = pair.substr(0, eq);
      const std::string value = pair.substr(eq + 1);
      bool ok = true;
      if (key == "pages") {
        ok = ParseU64Value(value, &spec.pages);
      } else if (key == "n") {
        ok = ParseU64Value(value, &spec.requests);
      } else if (key == "seed") {
        ok = ParseU64Value(value, &spec.seed);
      } else if (key == "buffer") {
        ok = ParseU64Value(value, &spec.buffer);
      } else if (key == "write") {
        ok = ParseDoubleValue(value, &spec.write);
      } else if (key == "theta") {
        ok = ParseDoubleValue(value, &spec.theta);
      } else if (key == "shift") {
        ok = ParseU64Value(value, &spec.shift);
      } else if (key == "scan-every") {
        ok = ParseU64Value(value, &spec.scan_every);
      } else if (key == "scan-len") {
        ok = ParseU64Value(value, &spec.scan_len);
      } else if (key == "phase-len") {
        ok = ParseU64Value(value, &spec.phase_len);
      } else if (key == "hot-pages") {
        ok = ParseU64Value(value, &spec.hot_pages);
      } else if (key == "gradual") {
        std::uint64_t flag = 0;
        ok = ParseU64Value(value, &flag) && flag <= 1;
        spec.gradual = flag != 0;
      } else if (key == "tenants") {
        ok = ParseU64Value(value, &spec.tenants);
      } else {
        return fail("unknown key '" + key + "' in '" + text +
                    "' (valid keys: " + kValidKeys + ")");
      }
      if (!ok) {
        return fail("bad value '" + value + "' for key '" + key + "' in '" +
                    text + "'");
      }
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }

  // Range validation: every limit here protects an invariant of the
  // generators or the flat direct-indexed PageTable downstream.
  if (spec.pages < 16 || spec.pages > 16'777'216) {
    return fail("pages=" + std::to_string(spec.pages) +
                " out of range [16, 16777216]");
  }
  if (spec.requests < 1 || spec.requests > 100'000'000) {
    return fail("n=" + std::to_string(spec.requests) +
                " out of range [1, 100000000]");
  }
  if (spec.write < 0.0 || spec.write > 1.0) {
    return fail("write must be a probability in [0, 1]");
  }
  if (spec.theta < 0.0 || spec.theta > 1.2) {
    return fail("theta out of range [0, 1.2]");
  }
  // Kind-specific parameters are validated only for the kind that
  // reads them, so e.g. a small `pages` never trips over the default
  // `hot-pages` of a generator that is not even selected.
  if (spec.shift >= spec.pages) {
    return fail("shift must be smaller than pages");
  }
  if (spec.kind == ScenarioKind::kScanMix &&
      (spec.scan_every < 1 || spec.scan_len < 1)) {
    return fail("scan-every and scan-len must be >= 1");
  }
  if (spec.kind == ScenarioKind::kPhase) {
    if (spec.phase_len < 1) {
      return fail("phase-len must be >= 1");
    }
    if (spec.hot_pages < 1 || spec.hot_pages > spec.pages) {
      return fail("hot-pages out of range [1, pages]");
    }
  }
  if (spec.kind == ScenarioKind::kTenants &&
      (spec.tenants < 1 || spec.tenants > 256)) {
    return fail("tenants out of range [1, 256]");
  }
  // A client buffer that covers its whole page domain stops missing
  // after one pass, so the server trace would starve (the generation
  // budget would then truncate it).
  const std::uint64_t domain = spec.kind == ScenarioKind::kTenants
                                   ? spec.pages / spec.tenants
                                   : spec.pages;
  if (spec.buffer >= domain) {
    return fail("buffer=" + std::to_string(spec.buffer) +
                " must be smaller than the per-client page domain (" +
                std::to_string(domain) +
                "): a buffer covering the whole domain never misses");
  }
  return spec;
}

std::optional<WorkloadSpec> ResolveWorkload(const std::string& name_or_spec,
                                            std::string* error) {
  for (const ScenarioPreset& preset : ScenarioPresets()) {
    if (name_or_spec != preset.name) continue;
    std::optional<WorkloadSpec> spec = ParseWorkloadSpec(preset.spec, error);
    if (!spec) {
      // A preset that fails its own parser is a programming error; the
      // scenario tests pin every preset, so this cannot ship.
      std::fprintf(stderr, "ResolveWorkload: preset '%s' is invalid: %s\n",
                   preset.name, error ? error->c_str() : "");
      std::abort();
    }
    spec->text = name_or_spec;
    return spec;
  }
  return ParseWorkloadSpec(name_or_spec, error);
}

std::string ScenarioCacheStem(const std::string& name_or_spec) {
  bool safe = !name_or_spec.empty();
  for (char c : name_or_spec) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    safe = safe && ok;
  }
  if (safe) return name_or_spec;
  char buf[24];
  std::snprintf(buf, sizeof(buf), "scn%016llx",
                static_cast<unsigned long long>(Fnv1aHash(name_or_spec)));
  return buf;
}

Trace MakeScenarioTrace(const WorkloadSpec& spec,
                        std::uint64_t target_requests) {
  std::uint64_t target = spec.requests;
  if (target_requests != 0 && target_requests < target) {
    target = target_requests;
  }
  Trace trace;
  trace.name = spec.text;
  trace.requests.reserve(target + 8);
  const std::uint64_t budget = kMaxLogicalPerRequest * target + 1'000'000;
  switch (spec.kind) {
    case ScenarioKind::kZipf:
      GenZipf(spec, target, budget, &trace);
      break;
    case ScenarioKind::kScan:
      GenScan(spec, target, budget, &trace);
      break;
    case ScenarioKind::kScanMix:
      GenScanMix(spec, target, budget, &trace);
      break;
    case ScenarioKind::kPhase:
      GenPhase(spec, target, budget, &trace);
      break;
    case ScenarioKind::kTenants:
      GenTenants(spec, target, budget, &trace);
      break;
  }
  if (trace.requests.size() < target) {
    std::fprintf(stderr,
                 "MakeScenarioTrace: '%s' starved (%zu of %llu requests "
                 "emitted before the logical-access budget ran out)\n",
                 spec.text.c_str(), trace.requests.size(),
                 static_cast<unsigned long long>(target));
  }
  if (trace.requests.size() > target) {
    trace.requests.resize(target);
  }
  trace.CacheMaxClient();
  return trace;
}

}  // namespace clic
