// A simulated client (DBMS) buffer pool. The storage server only sees
// the client's buffer *misses* and writebacks, which is what makes
// second-tier caching hard: the client strips the short-term locality
// out of the request stream before it ever reaches the server. All the
// named traces are produced by pushing a logical access stream through
// one of these and recording what falls out the bottom.
#pragma once

#include <cstdint>
#include <vector>

#include "core/trace.h"
#include "policies/common.h"

namespace clic {

class ClientBuffer {
 public:
  struct AccessResult {
    bool miss = false;            // the client had to read from the server
    bool evicted = false;         // an eviction happened
    bool evicted_dirty = false;   // ... and the victim needs writing back
    PageId evicted_page = 0;
    HintSetId evicted_hint = 0;   // hint of the victim's last access
  };

  explicit ClientBuffer(std::size_t pages)
      : arena_(pages == 0 ? 1 : pages) {}

  AccessResult Access(PageId page, bool dirty, HintSetId hint) {
    AccessResult result;
    const std::uint32_t slot = table_.Get(page);
    if (slot != kInvalidIndex) {
      auto& payload = arena_[slot].payload;
      payload.dirty |= dirty ? 1 : 0;
      payload.hint = hint;
      arena_.MoveToFront(lru_, slot);
      return result;
    }
    result.miss = true;
    if (arena_.Full()) {
      const std::uint32_t victim = arena_.PopBack(lru_);
      result.evicted = true;
      result.evicted_page = arena_[victim].page;
      result.evicted_dirty = arena_[victim].payload.dirty != 0;
      result.evicted_hint = arena_[victim].payload.hint;
      table_.Clear(arena_[victim].page);
      arena_.Free(victim);
    }
    const std::uint32_t node = arena_.Alloc(page);
    arena_[node].payload.dirty = dirty ? 1 : 0;
    arena_[node].payload.hint = hint;
    arena_.PushFront(lru_, node);
    table_.Set(page, node);
    return result;
  }

  /// Cleans up to `max_pages` dirty pages (coldest first), invoking
  /// emit(page, hint) for each — the checkpoint / recovery write stream.
  template <typename Emit>
  std::size_t FlushDirty(std::size_t max_pages, Emit&& emit) {
    std::size_t flushed = 0;
    for (std::uint32_t i = lru_.tail;
         i != kInvalidIndex && flushed < max_pages; i = arena_[i].prev) {
      auto& payload = arena_[i].payload;
      if (!payload.dirty) continue;
      payload.dirty = 0;
      emit(arena_[i].page, payload.hint);
      ++flushed;
    }
    return flushed;
  }

 private:
  struct Payload {
    std::uint8_t dirty = 0;
    HintSetId hint = 0;
  };

  PageTable table_;
  ListArena<Payload> arena_;
  ListHead lru_;
};

}  // namespace clic
