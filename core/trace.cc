#include "core/trace.h"

#include <algorithm>

#include "common/fnv1a.h"

namespace clic {

std::size_t HintRegistry::Hash::operator()(const HintVector& v) const {
  Fnv1a h;
  h.MixScalar(v.client);
  for (std::uint32_t a : v.attrs) h.MixScalar(a);
  return static_cast<std::size_t>(h.value());
}

HintSetId HintRegistry::Intern(const HintVector& v) {
  auto it = index_.find(v);
  if (it != index_.end()) return it->second;
  const HintSetId id = static_cast<HintSetId>(sets_.size());
  sets_.push_back(v);
  index_.emplace(sets_.back(), id);
  return id;
}

HintSetId HintRegistry::Intern(HintVector&& v) {
  auto it = index_.find(v);
  if (it != index_.end()) return it->second;
  const HintSetId id = static_cast<HintSetId>(sets_.size());
  sets_.push_back(std::move(v));
  index_.emplace(sets_.back(), id);
  return id;
}

std::string HintRegistry::Describe(HintSetId id) const {
  if (id >= sets_.size()) return "<unknown>";
  const HintVector& v = sets_[id];
  std::string out = "c" + std::to_string(v.client) + ":{";
  for (std::size_t i = 0; i < v.attrs.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(v.attrs[i]);
  }
  out += "}";
  return out;
}

ClientId Trace::MaxClient() const {
  if (client_bound > 0) return static_cast<ClientId>(client_bound - 1);
  ClientId max_client = 0;
  for (const Request& r : requests) {
    if (r.client > max_client) max_client = r.client;
  }
  return max_client;
}

void Trace::CacheMaxClient() {
  client_bound = 0;  // invalidate so MaxClient() scans the final state
  client_bound = static_cast<std::uint32_t>(MaxClient()) + 1;
}

TraceStats ComputeStats(const Trace& trace) {
  TraceStats stats;
  stats.requests = trace.requests.size();
  PageId max_page = 0;
  HintSetId max_hint = 0;
  ClientId max_client = 0;
  for (const Request& r : trace.requests) {
    max_page = std::max(max_page, r.page);
    max_hint = std::max(max_hint, r.hint_set);
    max_client = std::max(max_client, r.client);
  }
  std::vector<bool> page_seen(static_cast<std::size_t>(max_page) + 1, false);
  std::vector<bool> hint_seen(static_cast<std::size_t>(max_hint) + 1, false);
  std::vector<bool> client_seen(static_cast<std::size_t>(max_client) + 1,
                                false);
  for (const Request& r : trace.requests) {
    if (r.op == OpType::kRead) {
      ++stats.reads;
    } else {
      ++stats.writes;
    }
    if (!page_seen[r.page]) {
      page_seen[r.page] = true;
      ++stats.distinct_pages;
    }
    if (!hint_seen[r.hint_set]) {
      hint_seen[r.hint_set] = true;
      ++stats.distinct_hint_sets;
    }
    if (!client_seen[r.client]) {
      client_seen[r.client] = true;
      ++stats.distinct_clients;
    }
  }
  return stats;
}

}  // namespace clic
