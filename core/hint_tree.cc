#include "core/hint_tree.h"

#include <algorithm>

namespace clic {
namespace {

constexpr std::uint32_t kMissingAttr = 0xFFFFFFFFu;

std::uint32_t AttrAt(const HintVector& v, std::size_t pos) {
  return pos < v.attrs.size() ? v.attrs[pos] : kMissingAttr;
}

/// (attribute value, member index) pairs — the flat grouping structure
/// this file uses instead of a map of vectors: one sort, then groups
/// are contiguous runs of equal .first. Members arrive in ascending
/// index order (the root set is 0..n and every split preserves relative
/// order), so a plain pair sort also keeps each run's members in their
/// original order, exactly as the map-of-vectors grouping did.
using KeyedMember = std::pair<std::uint32_t, std::uint32_t>;

/// Fills `keyed` with members grouped (sorted) by their value at `pos`.
void GroupByAttr(const HintRegistry& space,
                 const std::vector<HintSample>& samples,
                 const std::vector<std::uint32_t>& members, std::size_t pos,
                 std::vector<KeyedMember>* keyed) {
  keyed->clear();
  keyed->reserve(members.size());
  for (std::uint32_t m : members) {
    keyed->emplace_back(AttrAt(space.Get(samples[m].hint), pos), m);
  }
  std::sort(keyed->begin(), keyed->end());
}

/// Weighted variance of the samples' rates.
double WeightedVariance(const std::vector<HintSample>& samples,
                        const std::vector<std::uint32_t>& members,
                        double* total_weight_out) {
  double w = 0.0, mean = 0.0;
  for (std::uint32_t m : members) {
    w += static_cast<double>(samples[m].weight);
    mean += static_cast<double>(samples[m].weight) * samples[m].rate;
  }
  if (w <= 0.0) {
    if (total_weight_out) *total_weight_out = 0.0;
    return 0.0;
  }
  mean /= w;
  double var = 0.0;
  for (std::uint32_t m : members) {
    const double d = samples[m].rate - mean;
    var += static_cast<double>(samples[m].weight) * d * d;
  }
  if (total_weight_out) *total_weight_out = w;
  return var / w;
}

/// WeightedVariance over one contiguous run of a keyed grouping.
double RunVariance(const std::vector<HintSample>& samples,
                   const KeyedMember* run, std::size_t count,
                   double* total_weight_out) {
  double w = 0.0, mean = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const HintSample& s = samples[run[i].second];
    w += static_cast<double>(s.weight);
    mean += static_cast<double>(s.weight) * s.rate;
  }
  if (w <= 0.0) {
    if (total_weight_out) *total_weight_out = 0.0;
    return 0.0;
  }
  mean /= w;
  double var = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const HintSample& s = samples[run[i].second];
    const double d = s.rate - mean;
    var += static_cast<double>(s.weight) * d * d;
  }
  if (total_weight_out) *total_weight_out = w;
  return var / w;
}

}  // namespace

HintClassTree::HintClassTree(const HintRegistry& space,
                             const std::vector<HintSample>& samples)
    : HintClassTree(space, samples, Params{}) {}

HintClassTree::HintClassTree(const HintRegistry& space,
                             const std::vector<HintSample>& samples,
                             const Params& params) {
  std::vector<std::uint32_t> all(samples.size());
  for (std::uint32_t i = 0; i < samples.size(); ++i) all[i] = i;
  class_of_.reserve(samples.size());
  Split(space, samples, all, /*used_mask=*/0, /*depth=*/0, params);
}

void HintClassTree::Split(const HintRegistry& space,
                          const std::vector<HintSample>& samples,
                          std::vector<std::uint32_t>& members,
                          std::uint64_t used_mask, int depth,
                          const Params& params) {
  auto make_leaf = [&] {
    const std::uint32_t cls = num_classes_++;
    for (std::uint32_t m : members) class_of_[samples[m].hint] = cls;
  };

  double total_weight = 0.0;
  const double parent_var = WeightedVariance(samples, members, &total_weight);
  if (depth >= params.max_depth || members.size() <= 1 ||
      total_weight < static_cast<double>(params.min_weight) ||
      parent_var <= 0.0) {
    make_leaf();
    return;
  }

  std::size_t max_attrs = 0;
  for (std::uint32_t m : members) {
    max_attrs =
        std::max(max_attrs, space.Get(samples[m].hint).attrs.size());
  }
  max_attrs = std::min<std::size_t>(max_attrs, 64);  // used_mask width

  int best_pos = -1;
  double best_gain = 0.0;
  std::vector<KeyedMember> keyed;
  for (std::size_t pos = 0; pos < max_attrs; ++pos) {
    if (used_mask & (1ull << pos)) continue;
    // Group members by the value at this position (flat sorted pairs;
    // groups = runs of equal value) and compute the weighted
    // within-group variance.
    GroupByAttr(space, samples, members, pos, &keyed);
    std::size_t groups = 0;
    double within = 0.0;
    for (std::size_t begin = 0; begin < keyed.size();) {
      std::size_t end = begin + 1;
      while (end < keyed.size() && keyed[end].first == keyed[begin].first) {
        ++end;
      }
      ++groups;
      double w = 0.0;
      const double var =
          RunVariance(samples, keyed.data() + begin, end - begin, &w);
      within += var * w;
      begin = end;
    }
    if (groups <= 1) continue;
    within /= total_weight;
    const double gain = (parent_var - within) / parent_var;
    if (gain > best_gain) {
      best_gain = gain;
      best_pos = static_cast<int>(pos);
    }
  }

  if (best_pos < 0 || best_gain < params.min_gain) {
    make_leaf();
    return;
  }

  // Recurse over the winning position's runs in ascending value order
  // (the order the map-based grouping iterated in).
  GroupByAttr(space, samples, members, static_cast<std::size_t>(best_pos),
              &keyed);
  std::vector<std::uint32_t> group;
  for (std::size_t begin = 0; begin < keyed.size();) {
    std::size_t end = begin + 1;
    while (end < keyed.size() && keyed[end].first == keyed[begin].first) {
      ++end;
    }
    group.clear();
    group.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      group.push_back(keyed[i].second);
    }
    Split(space, samples, group, used_mask | (1ull << best_pos), depth + 1,
          params);
    begin = end;
  }
}

}  // namespace clic
