#include "core/hint_tree.h"

#include <algorithm>
#include <map>

namespace clic {
namespace {

constexpr std::uint32_t kMissingAttr = 0xFFFFFFFFu;

std::uint32_t AttrAt(const HintVector& v, std::size_t pos) {
  return pos < v.attrs.size() ? v.attrs[pos] : kMissingAttr;
}

/// Weighted variance of the samples' rates.
double WeightedVariance(const std::vector<HintSample>& samples,
                        const std::vector<std::uint32_t>& members,
                        double* total_weight_out) {
  double w = 0.0, mean = 0.0;
  for (std::uint32_t m : members) {
    w += static_cast<double>(samples[m].weight);
    mean += static_cast<double>(samples[m].weight) * samples[m].rate;
  }
  if (w <= 0.0) {
    if (total_weight_out) *total_weight_out = 0.0;
    return 0.0;
  }
  mean /= w;
  double var = 0.0;
  for (std::uint32_t m : members) {
    const double d = samples[m].rate - mean;
    var += static_cast<double>(samples[m].weight) * d * d;
  }
  if (total_weight_out) *total_weight_out = w;
  return var / w;
}

}  // namespace

HintClassTree::HintClassTree(const HintRegistry& space,
                             const std::vector<HintSample>& samples)
    : HintClassTree(space, samples, Params{}) {}

HintClassTree::HintClassTree(const HintRegistry& space,
                             const std::vector<HintSample>& samples,
                             const Params& params) {
  std::vector<std::uint32_t> all(samples.size());
  for (std::uint32_t i = 0; i < samples.size(); ++i) all[i] = i;
  class_of_.reserve(samples.size());
  Split(space, samples, all, /*used_mask=*/0, /*depth=*/0, params);
}

void HintClassTree::Split(const HintRegistry& space,
                          const std::vector<HintSample>& samples,
                          std::vector<std::uint32_t>& members,
                          std::uint64_t used_mask, int depth,
                          const Params& params) {
  auto make_leaf = [&] {
    const std::uint32_t cls = num_classes_++;
    for (std::uint32_t m : members) class_of_[samples[m].hint] = cls;
  };

  double total_weight = 0.0;
  const double parent_var = WeightedVariance(samples, members, &total_weight);
  if (depth >= params.max_depth || members.size() <= 1 ||
      total_weight < static_cast<double>(params.min_weight) ||
      parent_var <= 0.0) {
    make_leaf();
    return;
  }

  std::size_t max_attrs = 0;
  for (std::uint32_t m : members) {
    max_attrs =
        std::max(max_attrs, space.Get(samples[m].hint).attrs.size());
  }
  max_attrs = std::min<std::size_t>(max_attrs, 64);  // used_mask width

  int best_pos = -1;
  double best_gain = 0.0;
  for (std::size_t pos = 0; pos < max_attrs; ++pos) {
    if (used_mask & (1ull << pos)) continue;
    // Group members by the value at this position and compute the
    // weighted within-group variance.
    std::map<std::uint32_t, std::vector<std::uint32_t>> groups;
    for (std::uint32_t m : members) {
      groups[AttrAt(space.Get(samples[m].hint), pos)].push_back(m);
    }
    if (groups.size() <= 1) continue;
    double within = 0.0;
    for (auto& [value, group] : groups) {
      double w = 0.0;
      const double var = WeightedVariance(samples, group, &w);
      within += var * w;
    }
    within /= total_weight;
    const double gain = (parent_var - within) / parent_var;
    if (gain > best_gain) {
      best_gain = gain;
      best_pos = static_cast<int>(pos);
    }
  }

  if (best_pos < 0 || best_gain < params.min_gain) {
    make_leaf();
    return;
  }

  std::map<std::uint32_t, std::vector<std::uint32_t>> groups;
  for (std::uint32_t m : members) {
    groups[AttrAt(space.Get(samples[m].hint), best_pos)].push_back(m);
  }
  for (auto& [value, group] : groups) {
    Split(space, samples, group, used_mask | (1ull << best_pos), depth + 1,
          params);
  }
}

}  // namespace clic
