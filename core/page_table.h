// Direct-indexed page -> slot map. Page ids in every workload are dense
// (0 .. db_pages), so this is a flat vector lookup — no hashing anywhere
// on any access path. Shared by the policy zoo and the CLIC engine.
#pragma once

#include <vector>

#include "core/trace.h"

namespace clic {

/// Grown on demand; the growth is amortized and stops once the largest
/// page id has been seen.
class PageTable {
 public:
  std::uint32_t Get(PageId page) const {
    return page < table_.size() ? table_[page] : kInvalidIndex;
  }
  void Set(PageId page, std::uint32_t slot) {
    if (page >= table_.size()) {
      table_.resize(static_cast<std::size_t>(page) + page / 2 + 64,
                    kInvalidIndex);
    }
    table_[page] = slot;
  }
  void Clear(PageId page) {
    if (page < table_.size()) table_[page] = kInvalidIndex;
  }
  /// Hints the cache that Get(page) is imminent. The batched access
  /// loops issue this for request i+k while processing request i, so
  /// the (random-access) page-table load is warm by the time it is
  /// needed. Read-only: never grows the table.
  void Prefetch(PageId page) const {
    if (page < table_.size()) __builtin_prefetch(&table_[page], 0, 1);
  }

 private:
  std::vector<std::uint32_t> table_;
};

}  // namespace clic
