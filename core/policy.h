// Replacement-policy interface shared by the simulator, the comparison
// policies, and the CLIC engine.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/trace.h"

namespace clic {

/// A cache replacement policy simulated over a request trace.
///
/// Access() decides hit vs miss for one request, updates internal
/// state, and (for implementations in this repo) allocates nothing on
/// the heap. `seq` is the 0-based index of the request in the trace;
/// Simulate() guarantees it increases by exactly 1 per call, which OPT
/// relies on for its next-use oracle.
///
/// AccessBatch() is the hot path the replay loops actually use: one
/// virtual call covers a whole block of requests, so dispatch, window
/// checks, and stats-array traffic are amortized over the batch.
/// Batched contract (see DESIGN.md "Batched hot path"):
///   - `hits_out[i]` is written 1 iff request i was resident before its
///     access, 0 otherwise — byte-for-byte the same decisions as n
///     sequential Access(reqs[i], first_seq + i) calls on the same
///     starting state. The equivalence suite
///     (tests/test_batch_equivalence.cc) pins this for every policy.
///   - The caller owns `hits_out` (at least n bytes) and `reqs`; both
///     must stay valid for the duration of the call only.
///   - Request i has seq == first_seq + i. Across consecutive batches
///     the caller keeps seq monotonic exactly as it would across
///     sequential Access() calls (first_seq' == first_seq + n).
///   - n == 0 is a no-op.
///
/// Thread ownership: a Policy instance is NOT thread-safe and has no
/// internal locking. Exactly one thread may be inside Access() or
/// AccessBatch() at a time, and implementations may assume their state
/// is never observed concurrently. The simulator satisfies this
/// trivially (one thread per policy); the sweep runner builds one
/// private policy per grid point; the online server
/// (server/cache_server.h) gives each shard its own policy and routes
/// every batch slice to the single consumer thread that owns the shard
/// — ownership, not locking, is the serialization — asserting the
/// single-entry discipline in debug builds. Any new caller must provide
/// the same external serialization.
class Policy {
 public:
  virtual ~Policy() = default;

  /// Returns true iff the page was resident before this access.
  virtual bool Access(const Request& r, SeqNum seq) = 0;

  /// Applies `n` consecutive requests with seqs [first_seq, first_seq+n)
  /// and records the hit/miss decisions in `hits_out`. The scalar
  /// default is the semantic reference; every policy in the zoo
  /// overrides it with a tight loop (hoisted branches, software
  /// prefetch of upcoming page-table slots, one stats touch per batch).
  virtual void AccessBatch(const Request* reqs, SeqNum first_seq,
                           std::size_t n, std::uint8_t* hits_out) {
    for (std::size_t i = 0; i < n; ++i) {
      hits_out[i] = Access(reqs[i], first_seq + i) ? 1 : 0;
    }
  }
};

}  // namespace clic
