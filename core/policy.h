// Replacement-policy interface shared by the simulator, the comparison
// policies, and the CLIC engine.
#pragma once

#include "core/trace.h"

namespace clic {

/// A cache replacement policy simulated over a request trace.
///
/// Access() is the hot path: it is called once per request, must decide
/// hit vs miss, update internal state, and (for implementations in this
/// repo) allocate nothing on the heap. `seq` is the 0-based index of the
/// request in the trace; Simulate() guarantees it increases by exactly 1
/// per call, which OPT relies on for its next-use oracle.
///
/// Thread ownership: a Policy instance is NOT thread-safe and has no
/// internal locking. Exactly one thread may be inside Access() at a
/// time, and implementations may assume their state is never observed
/// concurrently. The simulator satisfies this trivially (one thread per
/// policy); the sweep runner builds one private policy per grid point;
/// the online server (server/cache_server.h) gives each shard its own
/// policy and serializes every Access() behind that shard's mutex,
/// asserting the single-entry discipline in debug builds. Any new
/// caller must provide the same external serialization.
class Policy {
 public:
  virtual ~Policy() = default;

  /// Returns true iff the page was resident before this access.
  virtual bool Access(const Request& r, SeqNum seq) = 0;
};

}  // namespace clic
