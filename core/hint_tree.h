// Decision-tree hint-set generalization (the paper's Section 8
// extension, exercised by bench_ablation_generalize). Hint sets are
// grouped into classes by recursively splitting on the attribute
// position whose values best explain the observed re-reference rates;
// positions whose values carry no signal (e.g. injected noise
// attributes) are never selected, so noisy variants of one real hint set
// collapse back into a single class whose pooled statistics match the
// original.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/trace.h"

namespace clic {

struct HintSample {
  HintSetId hint = 0;
  std::uint64_t weight = 0;  // references in the window
  double rate = 0.0;         // re-references per reference
};

class HintClassTree {
 public:
  struct Params {
    int max_depth = 6;
    double min_gain = 1e-4;       // relative variance reduction floor
    std::uint64_t min_weight = 8; // don't split tiny populations
  };

  HintClassTree(const HintRegistry& space,
                const std::vector<HintSample>& samples);
  HintClassTree(const HintRegistry& space,
                const std::vector<HintSample>& samples,
                const Params& params);

  /// Class of a sampled hint set; hints not in the sample map to their
  /// own singleton class id (kUnsampled).
  static constexpr std::uint32_t kUnsampled = 0xFFFFFFFFu;
  std::uint32_t ClassOf(HintSetId h) const {
    auto it = class_of_.find(h);
    return it == class_of_.end() ? kUnsampled : it->second;
  }

  std::uint32_t num_classes() const { return num_classes_; }

 private:
  void Split(const HintRegistry& space,
             const std::vector<HintSample>& samples,
             std::vector<std::uint32_t>& members, std::uint64_t used_mask,
             int depth, const Params& params);

  std::unordered_map<HintSetId, std::uint32_t> class_of_;
  std::uint32_t num_classes_ = 0;
};

}  // namespace clic
