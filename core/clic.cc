#include "core/clic.h"

#include <algorithm>
#include <cmath>

#include "core/hint_tree.h"
#include "policies/common.h"

namespace clic {

ClicPolicy::ClicPolicy(std::size_t cache_pages, ClicOptions options)
    : options_(std::move(options)) {
  cache_pages = std::max<std::size_t>(1, cache_pages);
  outqueue_capacity_ = static_cast<std::size_t>(
      std::llround(std::max(0.0, options_.outqueue_per_page) *
                   static_cast<double>(cache_pages)));
  cache_capacity_ = cache_pages;
  if (options_.charge_metadata) {
    // Each outqueue entry costs ~1% of a page of metadata; the paper
    // charges CLIC for that space instead of letting it track for free.
    const std::size_t meta = (outqueue_capacity_ + 99) / 100;
    cache_capacity_ = cache_pages > meta ? cache_pages - meta : 1;
  }
  if (options_.window == 0) options_.window = 1;
  // Adaptive bounds resolve against the configured window: the floor
  // defaults to a sixteenth of it, the ceiling to the window itself, so
  // adaptation can only shorten the paper's W unless the caller widens
  // the ceiling explicitly.
  min_window_ = options_.min_window != 0
                    ? options_.min_window
                    : std::max<std::uint64_t>(1, options_.window / 16);
  max_window_ = options_.max_window != 0 ? options_.max_window
                                         : options_.window;
  if (min_window_ > max_window_) min_window_ = max_window_;
  effective_window_ = options_.adaptive_window
                          ? std::clamp(options_.window, min_window_,
                                       max_window_)
                          : options_.window;
  next_window_end_ = effective_window_;
  checkpoint_interval_ = std::max<std::uint64_t>(1, min_window_ / 2);
  // The first checkpoint of a window arms at start + min_window (not at
  // the cadence interval): no close may produce a window shorter than
  // the floor, so a floor-length window has no checkpoints at all.
  window_checkpoint_ = (options_.adaptive_window &&
                        options_.churn_threshold > 0.0 &&
                        min_window_ < effective_window_)
                           ? min_window_
                           : next_window_end_;
  next_event_ = window_checkpoint_;
  for (double& f : decay_ring_) f = options_.decay;

  slots_.resize(cache_capacity_ + outqueue_capacity_);
  free_slots_.reserve(slots_.size());
  for (std::size_t i = slots_.size(); i-- > 0;) {
    free_slots_.push_back(static_cast<std::uint32_t>(i));
  }
  buckets_.assign(1, List{});
  bitmap_.assign(1, 0);
  bitmap_summary_.assign(1, 0);

  if (options_.tracker == TrackerKind::kSpaceSaving) {
    space_saving_ = std::make_unique<SpaceSaving<HintSetId>>(
        std::max<std::size_t>(1, options_.top_k));
  } else if (options_.tracker == TrackerKind::kLossyCounting) {
    lossy_counting_ = std::make_unique<LossyCounting<HintSetId>>(
        1.0 / static_cast<double>(std::max<std::size_t>(1, options_.top_k)));
  }
}

ClicPolicy::~ClicPolicy() = default;

void ClicPolicy::EnsureHint(HintSetId h) {
  if (h < hints_.size()) return;
  const std::size_t n = static_cast<std::size_t>(h) + 1;
  hints_.refs_w.resize(n, 0);
  hints_.rerefs_w.resize(n, 0);
  hints_.cur.resize(n, 0);
  hints_.area.resize(n, 0);
  hints_.last_change.resize(n, window_start_);
  hints_.acc_r.resize(n, 0.0);
  hints_.acc_s.resize(n, 0.0);
  hints_.priority.resize(n, 0.0);
  hints_.rank.resize(n, 0);
  touched_flag_.resize(n, 0);
  acc_window_.resize(n, windows_completed_);
  pos_index_.resize(n, kInvalidIndex);
  eligible_.resize(n, 0);
  win_r_.resize(n, 0.0);
  win_s_.resize(n, 0.0);
}

void ClicPolicy::FlushArea(HintSetId h, SeqNum now) {
  // Every cur / annotation change flows through here, so flushing also
  // registers the hint set as an incremental-window candidate.
  Touch(h);
  hints_.area[h] += static_cast<std::uint64_t>(hints_.cur[h]) *
                    (now - hints_.last_change[h]);
  hints_.last_change[h] = now;
}

void ClicPolicy::Annotate(Slot& slot, HintSetId hint, SeqNum now) {
  if (slot.hint == hint) return;
  FlushArea(slot.hint, now);
  --hints_.cur[slot.hint];
  FlushArea(hint, now);
  ++hints_.cur[hint];
  slot.hint = hint;
}

// ---- intrusive lists ------------------------------------------------------

void ClicPolicy::GListPushFront(List& list, std::uint32_t i) {
  slots_[i].g_prev = kInvalidIndex;
  slots_[i].g_next = list.head;
  if (list.head != kInvalidIndex) slots_[list.head].g_prev = i;
  list.head = i;
  if (list.tail == kInvalidIndex) list.tail = i;
  ++list.size;
}

void ClicPolicy::GListRemove(List& list, std::uint32_t i) {
  if (slots_[i].g_prev != kInvalidIndex) {
    slots_[slots_[i].g_prev].g_next = slots_[i].g_next;
  } else {
    list.head = slots_[i].g_next;
  }
  if (slots_[i].g_next != kInvalidIndex) {
    slots_[slots_[i].g_next].g_prev = slots_[i].g_prev;
  } else {
    list.tail = slots_[i].g_prev;
  }
  slots_[i].g_prev = slots_[i].g_next = kInvalidIndex;
  --list.size;
}

std::uint32_t ClicPolicy::GListPopBack(List& list) {
  const std::uint32_t i = list.tail;
  GListRemove(list, i);
  return i;
}

void ClicPolicy::BucketPushFront(std::uint32_t rank, std::uint32_t i) {
  List& b = buckets_[rank];
  slots_[i].b_prev = kInvalidIndex;
  slots_[i].b_next = b.head;
  if (b.head != kInvalidIndex) slots_[b.head].b_prev = i;
  b.head = i;
  if (b.tail == kInvalidIndex) b.tail = i;
  if (++b.size == 1) BitmapSet(rank);
}

void ClicPolicy::BucketPushBack(std::uint32_t rank, std::uint32_t i) {
  List& b = buckets_[rank];
  slots_[i].b_next = kInvalidIndex;
  slots_[i].b_prev = b.tail;
  if (b.tail != kInvalidIndex) slots_[b.tail].b_next = i;
  b.tail = i;
  if (b.head == kInvalidIndex) b.head = i;
  if (++b.size == 1) BitmapSet(rank);
}

void ClicPolicy::BucketRemove(std::uint32_t rank, std::uint32_t i) {
  List& b = buckets_[rank];
  if (slots_[i].b_prev != kInvalidIndex) {
    slots_[slots_[i].b_prev].b_next = slots_[i].b_next;
  } else {
    b.head = slots_[i].b_next;
  }
  if (slots_[i].b_next != kInvalidIndex) {
    slots_[slots_[i].b_next].b_prev = slots_[i].b_prev;
  } else {
    b.tail = slots_[i].b_prev;
  }
  slots_[i].b_prev = slots_[i].b_next = kInvalidIndex;
  if (--b.size == 0) BitmapClear(rank);
}

void ClicPolicy::BitmapSet(std::uint32_t rank) {
  const std::uint32_t word = rank >> 6;
  bitmap_[word] |= 1ull << (rank & 63);
  bitmap_summary_[word >> 6] |= 1ull << (word & 63);
}

void ClicPolicy::BitmapClear(std::uint32_t rank) {
  const std::uint32_t word = rank >> 6;
  bitmap_[word] &= ~(1ull << (rank & 63));
  if (bitmap_[word] == 0) {
    bitmap_summary_[word >> 6] &= ~(1ull << (word & 63));
  }
}

std::uint32_t ClicPolicy::FindVictimRank() const {
  for (std::uint32_t sw = 0; sw < bitmap_summary_.size(); ++sw) {
    if (bitmap_summary_[sw] == 0) continue;
    const std::uint32_t word =
        (sw << 6) + static_cast<std::uint32_t>(
                        __builtin_ctzll(bitmap_summary_[sw]));
    return (word << 6) +
           static_cast<std::uint32_t>(__builtin_ctzll(bitmap_[word]));
  }
  return 0;  // unreachable while the cache holds pages
}

// ---- cache mechanics ------------------------------------------------------

void ClicPolicy::EvictOne(SeqNum now) {
  const std::uint32_t rank = FindVictimRank();
  const std::uint32_t si = buckets_[rank].tail;
  BucketRemove(rank, si);
  GListRemove(global_, si);
  Slot& s = slots_[si];
  if (outqueue_capacity_ > 0) {
    // The page's metadata stays tracked in the outqueue so a re-reference
    // still credits its hint set.
    s.state = SlotState::kOutqueue;
    GListPushFront(outqueue_, si);
    if (outqueue_.size > outqueue_capacity_) {
      const std::uint32_t drop = GListPopBack(outqueue_);
      Slot& d = slots_[drop];
      FlushArea(d.hint, now);
      --hints_.cur[d.hint];
      page_table_.Clear(d.page);
      d.state = SlotState::kFree;
      free_slots_.push_back(drop);
    }
  } else {
    FlushArea(s.hint, now);
    --hints_.cur[s.hint];
    page_table_.Clear(s.page);
    s.state = SlotState::kFree;
    free_slots_.push_back(si);
  }
}

void ClicPolicy::InsertCached(std::uint32_t slot_index, SeqNum now) {
  if (global_.size >= cache_capacity_) EvictOne(now);
  Slot& s = slots_[slot_index];
  s.state = SlotState::kCached;
  GListPushFront(global_, slot_index);
  BucketPushFront(hints_.rank[s.hint], slot_index);
}

// clic-lint: hot-path
bool ClicPolicy::Access(const Request& r, SeqNum seq) {
  if (seq >= next_event_) HandleWindowEvent(seq);
  return AccessOne(r, seq);
}

void ClicPolicy::HandleWindowEvent(SeqNum seq) {
  if (seq >= next_window_end_) {
    EndWindow(next_window_end_);
    return;
  }
  // seq landed in [checkpoint, window end): consume this checkpoint,
  // arm the next one on the fixed cadence (every checkpoint_interval_
  // requests, so worst-case detection latency is bounded by
  // ~min_window even when the effective window has re-expanded),
  // evaluate the churn signal once, and close early if the previous
  // window's ranks no longer predict the live re-reference mass. A
  // checkpoint no request ever lands on is never evaluated — the
  // signal is a pure function of the request stream, not of wall time.
  const SeqNum ckpt = window_checkpoint_;
  const SeqNum next_ckpt = ckpt + checkpoint_interval_;
  window_checkpoint_ =
      next_ckpt < next_window_end_ ? next_ckpt : next_window_end_;
  next_event_ = window_checkpoint_;
  const double similarity = ChurnSimilarity();
  if (similarity < options_.churn_threshold) {
    // Close early AND discount the accumulated history by the measured
    // similarity: ranks that no longer predict live behaviour were
    // produced by history that is now stale, and with the paper's r = 1
    // that history would otherwise pin the previous phase's hint sets
    // at the top of the ranking for the rest of the run.
    churn_discount_ = similarity;
    EndWindow(ckpt);
  }
}

double ClicPolicy::ChurnSimilarity() {
  // A signed rank correlation (Spearman/Kendall) over the live partial
  // priorities degenerates here: after a total working-set shift every
  // stale hint set's live priority ties at exactly zero, the tie block
  // sorts by id, and rho lands near 0 — i.e. similarity saturates at
  // 0.5 instead of collapsing. What the close decision actually needs
  // is "does the committed ranking still predict where re-reference
  // value accrues", so measure exactly that: the fraction of the
  // re-reference mass credited to hint sets the committed ranking
  // placed in its top half (ranks above k/2 of the k ranked sets).
  // Stable workloads score near 1; an abrupt shift scores near 0
  // because the new phase's sets are bottom-ranked or unranked.
  //
  // The fraction is computed over the mass accrued SINCE THE PREVIOUS
  // CHECKPOINT, not since the window start: rerefs_w is cumulative,
  // and a shift landing mid-window would otherwise be diluted by the
  // pre-shift mass for the rest of the window (measured on
  // phase-abrupt: similarity plateaus at ~0.62 while the hit ratio
  // sits at zero). Ranks are constant between closes, so two scalar
  // snapshot bases — reset by EndWindow alongside rerefs_w — turn the
  // cumulative pass into an exact per-interval delta. One pass over
  // the candidate list, no sort — and the signal keeps firing across
  // consecutive checkpoints until the discounted ranking predicts
  // behaviour again.
  const std::size_t k = positive_.size();
  if (k < kMinChurnSignalHints) return 1.0;
  const std::uint32_t top_rank = static_cast<std::uint32_t>(k / 2);
  std::uint64_t total = 0;
  std::uint64_t predicted = 0;
  for (HintSetId h : touched_) {
    const std::uint64_t rr = hints_.rerefs_w[h];
    total += rr;
    if (hints_.rank[h] > top_rank) predicted += rr;
  }
  const std::uint64_t interval_total = total - ckpt_total_base_;
  const std::uint64_t interval_predicted = predicted - ckpt_pred_base_;
  ckpt_total_base_ = total;
  ckpt_pred_base_ = predicted;
  // No re-references this interval is absence of evidence, not churn.
  if (interval_total == 0) return 1.0;
  return static_cast<double>(interval_predicted) /
         static_cast<double>(interval_total);
}

// clic-lint: hot-path
template <int kTracker>
void ClicPolicy::RunBatchSpan(const Request* reqs, SeqNum first_seq,
                              std::size_t begin, std::size_t end,
                              std::size_t n, std::uint8_t* hits_out) {
  for (std::size_t i = begin; i < end; ++i) {
    if (i + kBatchPrefetchDistance < n) {
      page_table_.Prefetch(reqs[i + kBatchPrefetchDistance].page);
    }
    if (i + kBatchNodeDistance < n) {
      // The table slot prefetched kBatchPrefetchDistance ago is warm;
      // chase it now so the 28-byte Slot is warm too when its request
      // arrives. Purely advisory — an intervening remap only wastes the
      // prefetch, never a decision.
      const std::uint32_t ahead =
          page_table_.Get(reqs[i + kBatchNodeDistance].page);
      if (ahead != kInvalidIndex) __builtin_prefetch(&slots_[ahead], 0, 1);
    }
    hits_out[i] = AccessOneT<kTracker>(reqs[i], first_seq + i);
  }
}

// clic-lint: hot-path
void ClicPolicy::AccessBatch(const Request* reqs, SeqNum first_seq,
                             std::size_t n, std::uint8_t* hits_out) {
  std::size_t i = 0;
  while (i < n) {
    const SeqNum seq = first_seq + i;
    if (seq >= next_event_) {
      HandleWindowEvent(seq);
      if (seq >= next_event_) {
        // Degenerate seq jump (more than one window event between
        // consecutive requests): fall back to the scalar path's
        // one-event-per-access behaviour for this request.
        hits_out[i] = AccessOne(reqs[i], seq);
        ++i;
        continue;
      }
    }
    // No window event (checkpoint or close) can fire before `run`, so
    // the inner span needs no boundary check at all — the per-request
    // branch is hoisted here, and the tracker dispatch happens once per
    // span instead of per request.
    const std::size_t run =
        i + static_cast<std::size_t>(
                std::min<std::uint64_t>(n - i, next_event_ - seq));
    if (space_saving_) {
      RunBatchSpan<1>(reqs, first_seq, i, run, n, hits_out);
    } else if (lossy_counting_) {
      RunBatchSpan<2>(reqs, first_seq, i, run, n, hits_out);
    } else {
      RunBatchSpan<0>(reqs, first_seq, i, run, n, hits_out);
    }
    i = run;
  }
}

// clic-lint: hot-path
inline bool ClicPolicy::AccessOne(const Request& r, SeqNum seq) {
  if (space_saving_) return AccessOneT<1>(r, seq);
  if (lossy_counting_) return AccessOneT<2>(r, seq);
  return AccessOneT<0>(r, seq);
}

// clic-lint: hot-path
template <int kTracker>
inline bool ClicPolicy::AccessOneT(const Request& r, SeqNum seq) {
  last_seq_ = seq;
  EnsureHint(r.hint_set);
  if (hints_.refs_w[r.hint_set]++ == 0) Touch(r.hint_set);
  if constexpr (kTracker == 1) {
    space_saving_->Offer(r.hint_set);
  } else if constexpr (kTracker == 2) {
    lossy_counting_->Offer(r.hint_set);
  }

  const std::uint32_t si = page_table_.Get(r.page);
  if (si != kInvalidIndex) {
    Slot& s = slots_[si];
    // Re-reference: credit the hint set that annotated the page. A
    // tracked slot means cur[s.hint] > 0, which guarantees s.hint is
    // already a window candidate (see Touch invariant) — no Touch here.
    ++hints_.rerefs_w[s.hint];
    if (s.state == SlotState::kCached) {
      const std::uint32_t old_rank = hints_.rank[s.hint];
      Annotate(s, r.hint_set, seq);
      if (global_.head != si) {
        GListRemove(global_, si);
        GListPushFront(global_, si);
      }
      BucketRemove(old_rank, si);
      BucketPushFront(hints_.rank[s.hint], si);
      return true;
    }
    // Outqueue hit: a miss for the cache, but the page re-enters it.
    GListRemove(outqueue_, si);
    Annotate(s, r.hint_set, seq);
    InsertCached(si, seq);
    return false;
  }

  // Cold miss: the page becomes annotated with the request's hint set.
  FlushArea(r.hint_set, seq);
  ++hints_.cur[r.hint_set];
  if (free_slots_.empty()) EvictOne(seq);  // trims the outqueue, frees a slot
  const std::uint32_t node = free_slots_.back();
  free_slots_.pop_back();
  Slot& s = slots_[node];
  s.page = r.page;
  s.hint = r.hint_set;
  s.g_prev = s.g_next = s.b_prev = s.b_next = kInvalidIndex;
  page_table_.Set(r.page, node);
  InsertCached(node, seq);
  return false;
}

// ---- window analysis (Equation 2, incremental) ----------------------------
//
// The harvest / decay / rank loops visit only this window's candidates
// (the touched_ list) instead of every hint set ever seen. Correctness
// rests on two facts:
//   1. A hint set outside touched_ has refs_w == rerefs_w == area == 0
//      and cur == 0 (Touch invariant + cur>0 reseed), so its window
//      statistics are exactly the post-reset state — skipping it is a
//      no-op.
//   2. An untouched hint set's Equation-2 ratio is unchanged by the
//      plain decay recurrence (both accumulators scale by the same
//      factor), so its priority — and hence its rank order relative to
//      other unchanged hints — carries forward. The three cases where
//      the ratio does change are all handled at the close that causes
//      them: approximate trackers drop unreferenced hints and decay ==
//      0 discards history (both sweep the maintained positive set),
//      and a churn-discounted close scales acc_r by less than acc_s,
//      so EndWindow folds and re-ranks every untouched hint eagerly on
//      that close. Pending decay scalings are otherwise applied lazily
//      by FoldDecay, with a periodic full fold keeping every
//      *accumulator* bit-identical to the eager per-window recurrence.
//      The carried *priority* fl(a/b) of an untouched hint can differ
//      from an eagerly recomputed fl(fl(d*a)/fl(d*b)) by an ulp when
//      decay is not a power of two (independent rounding of the two
//      products); it is the mathematically exact value of the same
//      ratio, but a rank sort could in principle order two
//      ulp-adjacent priorities differently than an eager
//      implementation would.

void ClicPolicy::FoldDecay(HintSetId h, std::uint64_t upto_window) {
  std::uint64_t w = acc_window_[h];
  acc_window_[h] = upto_window;
  // One multiplication per skipped window, oldest first — identical
  // value and rounding order to the eager per-window recurrences
  // acc_r = 0 + r_factor * acc_r and acc_s = 0 + decay * acc_s.
  // Bounded by kDecayFoldPeriod, so every r-factor is still resident
  // in the ring. A factor of exactly 1.0 is a bit-exact no-op and is
  // skipped (the pre-adaptive fast path).
  const double s_decay = options_.decay;
  for (; w < upto_window;) {
    ++w;
    const double f = decay_ring_[w % kDecayRingSize];
    if (f != 1.0) hints_.acc_r[h] *= f;
    if (s_decay != 1.0) hints_.acc_s[h] *= s_decay;
  }
}

void ClicPolicy::SetPriority(HintSetId h, double priority) {
  hints_.priority[h] = priority;
  const bool in_positive = pos_index_[h] != kInvalidIndex;
  if (priority > 0.0) {
    if (!in_positive) {
      pos_index_[h] = static_cast<std::uint32_t>(positive_.size());
      positive_.push_back(h);
    }
  } else if (in_positive) {
    const std::uint32_t idx = pos_index_[h];
    const HintSetId last = positive_.back();
    positive_[idx] = last;
    pos_index_[last] = idx;
    positive_.pop_back();
    pos_index_[h] = kInvalidIndex;
    hints_.rank[h] = 0;  // leaves the ranked set; rank 0 = evict first
  }
}

void ClicPolicy::EndWindow(SeqNum end) {
  const std::uint64_t length = end - window_start_;
  if (options_.adaptive_window) {
    // MIMD adaptation: a churn-triggered (or forced) early close halves
    // the effective window; kStableClosesToGrow consecutive windows
    // that ran to their scheduled end double it back. Both moves clamp
    // to [min_window_, max_window_]. Growth is deliberately slower than
    // shrinkage: a short window keeps the checkpoint cadence fine while
    // a churn episode is still resolving, and the only cost of staying
    // short during stability is the rank recompute, not ranking quality
    // (the decay blend accumulates across windows either way).
    if (end < next_window_end_) {
      ++early_closes_;
      stable_closes_ = 0;
      effective_window_ = std::max(min_window_, effective_window_ / 2);
    } else if (++stable_closes_ >= kStableClosesToGrow) {
      stable_closes_ = 0;
      effective_window_ = effective_window_ > max_window_ / 2
                              ? max_window_
                              : effective_window_ * 2;
    }
  }
  const std::uint64_t next_len =
      options_.adaptive_window ? effective_window_ : options_.window;
  next_window_end_ = end + next_len;
  // First checkpoint at end + min_window_ — a window can never close
  // before the floor, and a floor-length window has no checkpoints.
  window_checkpoint_ = (options_.adaptive_window &&
                        options_.churn_threshold > 0.0 &&
                        min_window_ < next_len)
                           ? end + min_window_
                           : next_window_end_;
  next_event_ = window_checkpoint_;
  if (length == 0) return;

  // Candidate order must match the ascending full-scan order the eager
  // analysis used: generalization class ids depend on sample order.
  std::sort(touched_.begin(), touched_.end());

  for (HintSetId h : touched_) {
    if (hints_.cur[h]) FlushArea(h, end);
  }

  // Which hint sets get priorities at all (Section 5 top-k filtering).
  // Tracker items were all offered this window, so they are candidates;
  // eligible_ bits are cleared again in the reset loop below.
  const bool exact = options_.tracker == TrackerKind::kExact;
  const std::size_t n = hints_.size();
  if (!exact) {
    if (space_saving_) {
      for (const auto& e : space_saving_->Items()) {
        if (e.item < n) eligible_[e.item] = 1;
      }
    } else if (lossy_counting_) {
      std::size_t taken = 0;
      for (const auto& e : lossy_counting_->Items()) {
        if (taken++ >= options_.top_k) break;
        if (e.item < n) eligible_[e.item] = 1;
      }
    }
  }

  // Per-hint window statistics: R = re-references credited to the hint
  // set, S = time-averaged number of tracked pages it annotated. Only
  // candidate entries of the persistent scratch are written (and read).
  for (HintSetId h : touched_) {
    win_r_[h] = static_cast<double>(hints_.rerefs_w[h]);
    win_s_[h] = static_cast<double>(hints_.area[h]) /
                static_cast<double>(length);
  }

  if (options_.generalize && options_.hint_space) {
    // Pool statistics over decision-tree classes; every member of a
    // class shares the pooled Equation-2 estimate, and top-k filtering
    // applies to classes instead of raw hint sets. Samples (refs_w > 0)
    // are a subset of the candidates.
    std::vector<HintSample> samples;
    samples.reserve(touched_.size());
    for (HintSetId h : touched_) {
      if (hints_.refs_w[h] == 0) continue;
      HintSample s;
      s.hint = h;
      s.weight = hints_.refs_w[h];
      s.rate = static_cast<double>(hints_.rerefs_w[h]) /
               static_cast<double>(hints_.refs_w[h]);
      samples.push_back(s);
    }
    HintClassTree tree(*options_.hint_space, samples);
    const std::uint32_t classes = tree.num_classes();
    std::vector<double> class_r(classes, 0.0), class_s(classes, 0.0);
    std::vector<std::uint64_t> class_refs(classes, 0);
    for (const HintSample& s : samples) {
      const std::uint32_t c = tree.ClassOf(s.hint);
      class_r[c] += win_r_[s.hint];
      class_s[c] += win_s_[s.hint];
      class_refs[c] += s.weight;
    }
    std::vector<std::uint8_t> class_ok(classes, 1);
    if (!exact && classes > options_.top_k) {
      std::vector<std::uint32_t> order(classes);
      for (std::uint32_t c = 0; c < classes; ++c) order[c] = c;
      std::sort(order.begin(), order.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  if (class_refs[a] != class_refs[b]) {
                    return class_refs[a] > class_refs[b];
                  }
                  return a < b;
                });
      class_ok.assign(classes, 0);
      for (std::size_t i = 0; i < options_.top_k; ++i) class_ok[order[i]] = 1;
    }
    if (!exact) {
      for (HintSetId h : touched_) eligible_[h] = 0;
    }
    for (const HintSample& s : samples) {
      const std::uint32_t c = tree.ClassOf(s.hint);
      win_r_[s.hint] = class_r[c];
      win_s_[s.hint] = class_s[c];
      if (!exact && class_ok[c]) eligible_[s.hint] = 1;
    }
  }

  // Fold pending decay, blend this window in, and recompute priorities
  // — candidates only. A churn-triggered close discounts the
  // *numerator* history by the measured similarity: scaling both
  // accumulators would cancel in the Equation-2 ratio and leave every
  // stale hint set's priority untouched, which with the paper's r = 1
  // would pin the previous phase at the top of the ranking forever.
  // Discounting acc_r alone demotes a stale set's priority by exactly
  // how badly its committed rank predicted the live ranking. The ring
  // records the per-window r-factor so the lazy fold replays it for
  // hints untouched this window; acc_s always folds with the constant
  // configured decay.
  const double decay = options_.decay;
  const bool churned = churn_discount_ != 1.0;
  const double r_factor = decay * churn_discount_;
  churn_discount_ = 1.0;
  const std::uint64_t this_window = windows_completed_ + 1;
  decay_ring_[this_window % kDecayRingSize] = r_factor;
  for (HintSetId h : touched_) {
    FoldDecay(h, windows_completed_);
    hints_.acc_r[h] = win_r_[h] + r_factor * hints_.acc_r[h];
    hints_.acc_s[h] = win_s_[h] + decay * hints_.acc_s[h];
    acc_window_[h] = this_window;
    const bool ok = exact || eligible_[h];
    SetPriority(h, (ok && hints_.acc_s[h] > 0.0)
                       ? hints_.acc_r[h] / hints_.acc_s[h]
                       : 0.0);
  }

  // Untouched hints keep their previous priority (case 2 above) except:
  // approximate trackers make every unreferenced hint ineligible, a
  // zero blend factor (decay == 0) zeroes its history, and a churn
  // close changes the ratio itself (r shrinks, s does not), so every
  // untouched hint is folded and re-ranked eagerly right here — the
  // whole point of the discount is that the stale sets lose this
  // window's rank sort, not some later one. (Downward sweep loop:
  // SetPriority(., 0) swap-removes, moving an already-visited tail
  // element into slot i.)
  if (!exact || (!churned && r_factor == 0.0)) {
    for (std::size_t i = positive_.size(); i-- > 0;) {
      const HintSetId h = positive_[i];
      if (!touched_flag_[h]) SetPriority(h, 0.0);
    }
  } else if (churned) {
    for (std::size_t h = 0; h < n; ++h) {
      if (touched_flag_[h]) continue;
      FoldDecay(static_cast<HintSetId>(h), this_window);
      SetPriority(static_cast<HintSetId>(h),
                  hints_.acc_s[h] > 0.0 ? hints_.acc_r[h] / hints_.acc_s[h]
                                        : 0.0);
    }
  }

  // Rank hint sets: rank 0 collects everything with zero priority (those
  // pages are evicted first, in global-LRU order); positive priorities
  // get ranks in ascending order. positive_ is exactly the set the
  // full scan would have collected; sorting (priority, id) pairs makes
  // the order independent of how the set was accumulated.
  rank_scratch_.clear();
  rank_scratch_.reserve(positive_.size());
  for (HintSetId h : positive_) {
    rank_scratch_.emplace_back(hints_.priority[h], h);
  }
  std::sort(rank_scratch_.begin(), rank_scratch_.end());
  num_ranks_ = static_cast<std::uint32_t>(rank_scratch_.size()) + 1;
  for (std::uint32_t i = 0; i < rank_scratch_.size(); ++i) {
    hints_.rank[rank_scratch_[i].second] = i + 1;
  }
  RebuildBuckets();

  // Reset candidates' window statistics and reseed the next window's
  // candidate list with hint sets that still annotate tracked pages
  // (their area keeps accruing with no further event).
  std::size_t keep = 0;
  for (HintSetId h : touched_) {
    hints_.refs_w[h] = 0;
    hints_.rerefs_w[h] = 0;
    hints_.area[h] = 0;
    hints_.last_change[h] = end;
    eligible_[h] = 0;
    if (hints_.cur[h]) {
      touched_[keep++] = h;
    } else {
      touched_flag_[h] = 0;
    }
  }
  touched_.resize(keep);
  if (space_saving_) space_saving_->Clear();
  if (lossy_counting_) lossy_counting_->Clear();
  window_start_ = end;
  ckpt_total_base_ = 0;
  ckpt_pred_base_ = 0;
  ++windows_completed_;

  // Periodic full fold: bounds the lazy fold's per-hint backlog (the
  // decay ring only holds the last kDecayRingSize factors) and keeps
  // long-idle accumulators numerically identical to eager decay. With
  // adaptive windowing the fold must run even at decay == 1: a churn
  // close puts a non-unit factor in the ring.
  if ((decay != 1.0 || options_.adaptive_window) &&
      windows_completed_ % kDecayFoldPeriod == 0) {
    for (std::size_t h = 0; h < n; ++h) {
      FoldDecay(static_cast<HintSetId>(h), windows_completed_);
    }
  }
}

void ClicPolicy::RebuildBuckets() {
  buckets_.assign(num_ranks_, List{});
  const std::size_t words = (num_ranks_ + 63) / 64;
  bitmap_.assign(words, 0);
  bitmap_summary_.assign((words + 63) / 64, 0);
  // Walk the global list MRU-first so every bucket keeps exact recency
  // order (front = most recent).
  for (std::uint32_t i = global_.head; i != kInvalidIndex;
       i = slots_[i].g_next) {
    BucketPushBack(hints_.rank[slots_[i].hint], i);
  }
}

void ClicPolicy::ForceEndWindow() { EndWindow(last_seq_ + 1); }

std::vector<std::pair<HintSetId, double>> ClicPolicy::Priorities() const {
  std::vector<std::pair<HintSetId, double>> out;
  const std::size_t n = hints_.size();
  out.reserve(n);
  for (std::size_t h = 0; h < n; ++h) {
    // Accumulators fold lazily; a positive factor never changes whether
    // they are zero, but a zero factor (decay == 0, or a churn close at
    // similarity exactly 0) in a pending window zeroes the history.
    bool stale_zero = false;
    for (std::uint64_t w = acc_window_[h];
         w < windows_completed_ && !stale_zero;) {
      ++w;
      stale_zero = decay_ring_[w % kDecayRingSize] == 0.0;
    }
    if (!stale_zero && (hints_.acc_s[h] > 0.0 || hints_.acc_r[h] > 0.0)) {
      out.emplace_back(static_cast<HintSetId>(h), hints_.priority[h]);
    }
  }
  return out;
}

}  // namespace clic
