// CLIC: CLient-Informed Caching for storage servers (Liu, Aboulnaga,
// Salem, FAST 2009).
//
// Every request carries an opaque hint set describing what the client
// was doing. Over evaluation windows of W requests CLIC measures, for
// each hint set H, how many re-references pages annotated with H
// received and how much cache space those pages occupied; the ratio —
// re-references per page per window, the paper's Equation 2 — becomes
// H's caching priority for the next window. Victims are chosen from the
// lowest-priority non-empty rank bucket, so the steady-state access path
// is constant time: a flat page-table lookup, O(1) annotation/statistics
// updates, two intrusive list splices, and a two-level-bitmap scan for
// the victim rank on misses. No heap allocation happens per request.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/page_table.h"
#include "core/policy.h"
#include "core/trace.h"
#include "stream/lossy_counting.h"
#include "stream/space_saving.h"

namespace clic {

/// Backend for tracking which hint sets are frequent enough to deserve
/// statistics (Section 5 of the paper).
enum class TrackerKind {
  kExact,          // every hint set is tracked
  kSpaceSaving,    // O(1) stream-summary top-k (the paper's choice)
  kLossyCounting,  // deterministic epsilon-approximate alternative
};

struct ClicOptions {
  /// Evaluation window length W, in requests.
  std::uint64_t window = 100'000;
  /// History blend: acc = window_stats + decay * acc. 1.0 keeps the full
  /// history (the paper's r = 1); smaller values favour recent windows.
  double decay = 1.0;
  /// Outqueue entries per cache page (the paper's N_outq = 5).
  double outqueue_per_page = 5.0;
  /// Charge CLIC's per-entry metadata (1% of a page per outqueue entry)
  /// against the cache capacity, as the paper's evaluation does.
  bool charge_metadata = true;
  TrackerKind tracker = TrackerKind::kExact;
  /// Number of hint sets (or generalized classes) granted priorities when
  /// the tracker is approximate.
  std::size_t top_k = 100;
  /// Enable decision-tree hint-set generalization (Section 8 extension).
  bool generalize = false;
  /// Registry for attribute lookups; required when generalize is true.
  std::shared_ptr<const HintRegistry> hint_space;

  // -- Adaptive windowing (churn-triggered early close) ---------------------
  // At the half-window checkpoint the live partial-window Equation-2
  // priorities (from the already-maintained refs/rerefs/area state) are
  // rank-correlated with the previous window's committed ranks; when the
  // similarity collapses below churn_threshold the window closes early.
  // The effective window halves on each early close and doubles back
  // while the signal stays stable, clamped to [min_window, max_window].
  // The whole mechanism is a pure function of the request stream, so
  // adaptive replay stays bit-identical across batch sizes and threads.

  /// Master switch; off reproduces the fixed-window paper behaviour
  /// bit-for-bit.
  bool adaptive_window = false;
  /// Early-close trigger: rank similarity in [0, 1] ((Spearman rho+1)/2).
  /// 0 never closes early, which (with the default ceiling) is also
  /// bit-identical to the fixed window.
  double churn_threshold = 0.5;
  /// Floor on the effective window length; 0 means window / 16.
  std::uint64_t min_window = 0;
  /// Ceiling on the effective window length; 0 means window.
  std::uint64_t max_window = 0;
};

class ClicPolicy : public Policy {
 public:
  ClicPolicy(std::size_t cache_pages, ClicOptions options);
  ~ClicPolicy() override;

  bool Access(const Request& r, SeqNum seq) override;

  /// Batched hot path: window-boundary checks are hoisted out of the
  /// per-request loop (a batch is split into runs that provably end
  /// before the next window close) and upcoming page-table slots are
  /// software-prefetched. Decisions are bit-identical to sequential
  /// Access() calls.
  void AccessBatch(const Request* reqs, SeqNum first_seq, std::size_t n,
                   std::uint8_t* hits_out) override;

  /// Ends the current evaluation window immediately and recomputes all
  /// priorities (used by the figure-3 style one-shot analysis).
  void ForceEndWindow();

  /// Current priority of every hint set observed so far.
  std::vector<std::pair<HintSetId, double>> Priorities() const;

  std::size_t cache_capacity() const { return cache_capacity_; }
  std::size_t outqueue_capacity() const { return outqueue_capacity_; }
  std::uint64_t windows_completed() const { return windows_completed_; }
  /// Scheduled length of the window currently being filled (== the
  /// configured window when adaptive mode is off).
  std::uint64_t effective_window() const { return effective_window_; }
  /// Windows closed early by the churn trigger (0 when adaptive mode is
  /// off or the signal stayed stable).
  std::uint64_t early_closes() const { return early_closes_; }

 private:
  // Slots live in one flat arena covering cache + outqueue residents.
  // `g_*` links thread the global recency list (cached) or the outqueue
  // FIFO; `b_*` links thread the slot's rank-bucket list (cached only).
  enum class SlotState : std::uint8_t { kFree, kCached, kOutqueue };
  struct Slot {
    PageId page = 0;
    HintSetId hint = 0;
    std::uint32_t g_prev = kInvalidIndex, g_next = kInvalidIndex;
    std::uint32_t b_prev = kInvalidIndex, b_next = kInvalidIndex;
    SlotState state = SlotState::kFree;
  };
  struct List {
    std::uint32_t head = kInvalidIndex;  // MRU / newest
    std::uint32_t tail = kInvalidIndex;  // LRU / oldest
    std::uint32_t size = 0;
  };
  // Per-hint-set statistics, struct-of-arrays, indexed by HintSetId.
  struct HintStats {
    std::vector<std::uint64_t> refs_w;      // references this window
    std::vector<std::uint64_t> rerefs_w;    // re-references this window
    std::vector<std::uint32_t> cur;         // tracked pages annotated H now
    std::vector<std::uint64_t> area;        // integral of cur over the window
    std::vector<SeqNum> last_change;
    std::vector<double> acc_r;              // decayed re-reference history
    std::vector<double> acc_s;              // decayed space history
    std::vector<double> priority;
    std::vector<std::uint32_t> rank;
    std::size_t size() const { return priority.size(); }
  };

  bool AccessOne(const Request& r, SeqNum seq);
  /// AccessOne specialized on the tracker backend (0 = exact, 1 =
  /// Space-Saving, 2 = Lossy Counting) so the batched run loop carries
  /// no per-request tracker branches; the scalar path dispatches once
  /// per request instead.
  template <int kTracker>
  bool AccessOneT(const Request& r, SeqNum seq);
  /// One window-check-free span of a batch, with two-stage software
  /// prefetch (page-table slot far ahead, the cache slot it points at
  /// nearer in).
  template <int kTracker>
  void RunBatchSpan(const Request* reqs, SeqNum first_seq, std::size_t begin,
                    std::size_t end, std::size_t n, std::uint8_t* hits_out);
  void EnsureHint(HintSetId h);
  void FlushArea(HintSetId h, SeqNum now);
  void Annotate(Slot& slot, HintSetId hint, SeqNum now);
  /// The one per-request window check: seq reached either the armed
  /// half-window checkpoint (evaluate churn, maybe close early) or the
  /// scheduled window end (close). Exactly one state transition per
  /// call, so degenerate seq jumps behave the same on the scalar and
  /// batched paths.
  void HandleWindowEvent(SeqNum seq);
  /// Rank similarity in [0, 1] between the previous window's committed
  /// ranks and live partial-window behaviour: the fraction of this
  /// window's re-references (the Equation-2 numerator evidence) landing
  /// in hint sets the committed ranking placed in its top half. 1 when
  /// the ranking still predicts where value accrues, 0 when every
  /// re-reference lands in sets it ranked bottom-half or not at all.
  /// Measured over the interval since the previous checkpoint (the
  /// snapshot bases are the only state it mutates), so a mid-window
  /// shift is not diluted by pre-shift mass.
  double ChurnSimilarity();
  void EndWindow(SeqNum end);
  void RebuildBuckets();
  void EvictOne(SeqNum now);
  void InsertCached(std::uint32_t slot_index, SeqNum now);
  std::uint32_t FindVictimRank() const;

  // Incremental window close (see DESIGN.md "CLIC incremental window
  // invariant"). Touch() registers a hint set as a candidate for this
  // window's analysis; EndWindow visits only candidates instead of all
  // known hint sets. Invariant: a hint set is a candidate whenever its
  // window statistics (refs_w / rerefs_w / area / cur / last_change)
  // could differ from the post-reset state — maintained by Touch()
  // calls on first reference and on every FlushArea(), plus the cur>0
  // reseed at window close (a hint set still annotating tracked pages
  // accrues area next window without any further event).
  void Touch(HintSetId h) {
    if (!touched_flag_[h]) {
      touched_flag_[h] = 1;
      touched_.push_back(h);
    }
  }
  /// Applies the decay scalings this hint set skipped while untouched,
  /// one multiplication per skipped window in ascending window order —
  /// bit-identical to the eager per-window recurrence
  /// acc = 0 + factor_w * acc, where factor_w is the per-window entry
  /// in decay_ring_ (a constant options_.decay unless a churn-triggered
  /// close discounted that window).
  void FoldDecay(HintSetId h, std::uint64_t upto_window);
  /// Sets the hint's priority and maintains the positive set (hints
  /// with priority > 0, the only ones that receive non-zero ranks).
  void SetPriority(HintSetId h, double priority);

  /// Full FoldDecay sweep every this many windows, bounding the lazy
  /// per-hint fold to at most this many multiplications.
  static constexpr std::uint64_t kDecayFoldPeriod = 16;
  /// Below this many ranked hint sets a rank correlation is noise, so
  /// the churn signal reports perfect stability instead.
  static constexpr std::size_t kMinChurnSignalHints = 4;
  /// Ring of per-window decay factors for the lazy fold. Must exceed
  /// kDecayFoldPeriod: the periodic full fold bounds any pending fold
  /// to the last kDecayFoldPeriod windows, so their factors are always
  /// still resident.
  static constexpr std::size_t kDecayRingSize = 32;
  /// Consecutive full-length closes required before the effective
  /// window doubles back toward max_window_. Shrinking is immediate
  /// (every churn close halves) but growth is paced: a fine checkpoint
  /// cadence must persist through a churn episode, and a short window
  /// during stability only costs rank-recompute work, never ranking
  /// quality (the decay blend accumulates across windows either way).
  static constexpr std::uint64_t kStableClosesToGrow = 2;

  // Intrusive list helpers over slots_.
  void GListPushFront(List& list, std::uint32_t i);
  void GListRemove(List& list, std::uint32_t i);
  std::uint32_t GListPopBack(List& list);
  void BucketPushFront(std::uint32_t rank, std::uint32_t i);
  void BucketPushBack(std::uint32_t rank, std::uint32_t i);
  void BucketRemove(std::uint32_t rank, std::uint32_t i);

  void BitmapSet(std::uint32_t rank);
  void BitmapClear(std::uint32_t rank);

  ClicOptions options_;
  std::size_t cache_capacity_;     // after the optional metadata charge
  std::size_t outqueue_capacity_;

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  PageTable page_table_;
  List global_;    // cached pages, MRU at head
  List outqueue_;  // evicted metadata, newest at head

  HintStats hints_;
  std::vector<List> buckets_;            // one per rank
  std::vector<std::uint64_t> bitmap_;    // non-empty-bucket bits
  std::vector<std::uint64_t> bitmap_summary_;
  std::uint32_t num_ranks_ = 1;

  // Incremental-window state, all indexed by HintSetId (except the
  // candidate / positive lists themselves).
  std::vector<HintSetId> touched_;             // this window's candidates
  std::vector<std::uint8_t> touched_flag_;     // membership in touched_
  std::vector<std::uint64_t> acc_window_;      // windows folded into acc
  std::vector<HintSetId> positive_;            // hints with priority > 0
  std::vector<std::uint32_t> pos_index_;       // position in positive_
  std::vector<std::uint8_t> eligible_;         // per-window scratch
  std::vector<double> win_r_, win_s_;          // per-window scratch
  std::vector<std::pair<double, HintSetId>> rank_scratch_;

  SeqNum window_start_ = 0;
  SeqNum next_window_end_;
  SeqNum last_seq_ = 0;
  std::uint64_t windows_completed_ = 0;

  // Adaptive-window state. next_event_ is the next seq at which the
  // access path must stop and run HandleWindowEvent: the armed
  // checkpoint if one is pending, else the window end (with adaptive
  // mode off it always equals next_window_end_, and the hot path's
  // single branch is unchanged). Invariant: window_checkpoint_ <=
  // next_window_end_, equal when no checkpoint is armed.
  SeqNum window_checkpoint_;
  SeqNum next_event_;
  std::uint64_t effective_window_;      // in [min_window_, max_window_]
  /// Churn-signal cadence: checkpoints fire every max(1, min_window/2)
  /// requests regardless of the current effective window, so
  /// worst-case shift-detection latency stays ~min_window even after
  /// the window has geometrically re-expanded.
  std::uint64_t checkpoint_interval_ = 1;
  /// Cumulative (total, top-half-predicted) re-reference mass already
  /// consumed by earlier checkpoints of the current window; EndWindow
  /// zeroes both alongside rerefs_w.
  std::uint64_t ckpt_total_base_ = 0;
  std::uint64_t ckpt_pred_base_ = 0;
  std::uint64_t min_window_ = 1;
  std::uint64_t max_window_ = 1;
  std::uint64_t early_closes_ = 0;
  std::uint64_t stable_closes_ = 0;     // consecutive full-length closes
  /// decay_ring_[w % kDecayRingSize] is the factor window w's close
  /// applied to the pre-existing acc_r history: options_.decay
  /// normally, options_.decay * similarity on a churn-triggered close.
  /// acc_s always scales by the plain configured decay — discounting
  /// both would cancel in the Equation-2 ratio and demote nothing, so
  /// the discount deliberately shrinks only the re-reference evidence.
  double decay_ring_[kDecayRingSize];
  /// Measured similarity of a pending churn-triggered close, consumed
  /// (and reset to 1) by the next EndWindow's blend factor.
  double churn_discount_ = 1.0;

  std::unique_ptr<SpaceSaving<HintSetId>> space_saving_;
  std::unique_ptr<LossyCounting<HintSetId>> lossy_counting_;
};

}  // namespace clic
