// Core trace model: packed request records, client hint vectors, and the
// interning registry that maps hint vectors to dense HintSetIds.
//
// The access path of every policy is indexed by these dense ids, so the
// registry is the only place that ever hashes a hint vector; after
// interning, a hint set is just a 32-bit integer.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace clic {

using PageId = std::uint32_t;
using HintSetId = std::uint32_t;
using ClientId = std::uint16_t;
using SeqNum = std::uint64_t;

inline constexpr std::uint32_t kInvalidIndex = 0xFFFFFFFFu;

enum class OpType : std::uint8_t {
  kRead = 0,
  kWrite = 1,
};

/// The paper distinguishes writes caused by client buffer replacement
/// (the page was evicted from the client's pool and is a strong signal it
/// may be re-read) from recovery-related writes (checkpoint / WAL
/// activity, unlikely to be re-referenced). TQ and CLIC both exploit the
/// distinction.
enum class WriteKind : std::uint8_t {
  kNone = 0,  // reads
  kReplacement = 1,
  kRecovery = 2,
};

/// One I/O request as seen by the storage server. Packed to 12 bytes so a
/// 2M-request trace is ~24 MB and streams through the simulator at memory
/// bandwidth.
struct Request {
  PageId page = 0;
  HintSetId hint_set = 0;
  ClientId client = 0;
  OpType op = OpType::kRead;
  WriteKind write_kind = WriteKind::kNone;
};
static_assert(sizeof(Request) <= 16, "Request must stay <= 16 bytes");

/// A client-provided hint annotation: an opaque vector of attribute
/// values (DB2-style: buffer pool, object id, object type, access type,
/// ...) plus the id of the client that issued it. CLIC treats the vector
/// as opaque; only the generalization tree interprets positions.
struct HintVector {
  ClientId client = 0;
  std::vector<std::uint32_t> attrs;

  bool operator==(const HintVector& o) const {
    return client == o.client && attrs == o.attrs;
  }
};

/// Interns hint vectors into dense HintSetIds. Ids are assigned in first-
/// seen order, so a trace regenerated from the same seed reproduces the
/// same ids (required for byte-identical .trc cache files).
class HintRegistry {
 public:
  HintSetId Intern(const HintVector& v);
  HintSetId Intern(HintVector&& v);

  const HintVector& Get(HintSetId id) const { return sets_[id]; }
  std::string Describe(HintSetId id) const;
  std::size_t size() const { return sets_.size(); }

 private:
  struct Hash {
    std::size_t operator()(const HintVector& v) const;
  };
  std::vector<HintVector> sets_;
  std::unordered_map<HintVector, HintSetId, Hash> index_;
};

/// A named request trace plus the registry its hint ids refer to. The
/// shared_ptr exists so read-only users (ClicOptions::hint_space) can
/// alias the registry; derived traces (noise-injected, interleaved) must
/// build or deep-copy their own — two traces sharing one registry would
/// also share mutable interning state, so an Intern() through either
/// would mutate both (the trace-ops bug fixed in PR 2).
struct Trace {
  std::string name;
  std::shared_ptr<HintRegistry> hints = std::make_shared<HintRegistry>();
  std::vector<Request> requests;

  /// Cached upper bound on client ids: max ClientId + 1, or 0 when not
  /// yet computed. Builders and loaders call CacheMaxClient() once so
  /// Simulate() never re-scans the full trace per run; traces assembled
  /// by hand (tests, ad-hoc tools) may leave it 0 and MaxClient() falls
  /// back to a scan. Derived sub-traces (shard partitions, capped
  /// prefixes) may inherit their source's bound, which is then a valid
  /// over-estimate — every consumer needs only an upper bound.
  std::uint32_t client_bound = 0;

  std::size_t size() const { return requests.size(); }

  /// Largest ClientId appearing in the trace (0 for an empty trace),
  /// or the inherited upper bound for derived sub-traces. O(1) when
  /// cached, one fallback scan otherwise.
  ClientId MaxClient() const;

  /// Recomputes and stores the client-id bound. Call after the request
  /// vector reaches its final state (generation, load, derivation).
  void CacheMaxClient();
};

/// Summary columns of the paper's Figure 5 trace table, plus the client
/// count (1 for the single-client paper traces; the tenant-mix
/// scenarios and Figure-11 interleaves carry more).
struct TraceStats {
  std::uint64_t requests = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t distinct_hint_sets = 0;
  std::uint64_t distinct_pages = 0;
  std::uint64_t distinct_clients = 0;
};

TraceStats ComputeStats(const Trace& trace);

}  // namespace clic
