// Online sharded cache server: the serving layer the paper's storage
// server implies. Pages are hash-partitioned across S shards; each
// shard owns one Policy instance (any PolicyKind except OPT, whose
// clairvoyant oracle has no online meaning) behind a per-shard mutex.
// Clients submit *batches* of requests through per-client MPSC queues;
// consumer threads drain whole batches and apply each batch's per-shard
// slice under a single shard-lock acquisition, so the lock cost is
// amortized over the batch instead of paid per request.
//
// Determinism rule: with `deterministic == true` the server runs exactly
// one consumer thread that drains client queues in strict client order
// (all of client 0's stream, then client 1's, ...). Each shard therefore
// sees exactly the subsequence of the concatenated client streams whose
// pages hash to it, in stream order, with a per-shard seq counter equal
// to the request's index within that subsequence — which is precisely
// what a sequential Simulate() of the shard's partition observes. So the
// aggregate (and per-client) hit counts of a deterministic run are
// bit-identical to per-shard sequential Simulate() of the partitioned
// trace; ServeTrace arranges client chunks so their concatenation is the
// original trace.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/clic.h"
#include "sim/policy_factory.h"
#include "sim/simulator.h"

namespace clic::server {

/// Shard assignment for a page. FNV-1a over the page id so adjacent
/// pages spread across shards; every component that partitions (the
/// server, PartitionByShard, the determinism test) must use this one
/// function.
std::size_t ShardOf(PageId page, std::size_t shards);

/// Per-shard cache capacity for a total budget of `total_pages` split
/// across `shards` shards (each shard gets at least one page).
std::size_t ShardCachePages(std::size_t total_pages, std::size_t shards);

/// Splits `trace` into `shards` sub-traces by ShardOf(page), preserving
/// request order within each shard. Hint registries are deep copies (the
/// ids are unchanged), honouring the no-shared-mutable-registry rule.
std::vector<Trace> PartitionByShard(const Trace& trace, std::size_t shards);

struct ServerOptions;  // below

/// Per-shard sequential Simulate() of the (budget-capped) partitioned
/// trace, merged across shards: the ground truth the deterministic
/// server mode reproduces bit-exactly. The single implementation both
/// `clic_serve --verify` and the determinism tests compare against, so
/// the two checks can never drift apart. `request_budget` 0 means the
/// whole trace.
SimResult PartitionedSimulate(const Trace& trace, const ServerOptions& options,
                              std::uint64_t request_budget = 0);

struct ServerOptions {
  std::size_t shards = 1;
  /// Total cache budget in pages, split evenly across shards.
  std::size_t cache_pages = 0;
  PolicyKind policy = PolicyKind::kLru;
  ClicOptions clic;  // applied when policy == kClic
  /// Single consumer draining clients in strict id order (see file
  /// comment). Off: one consumer per min(clients, hardware) cores,
  /// clients round-robined across consumers.
  bool deterministic = false;
  /// Consumer thread cap for the non-deterministic mode; 0 = choose
  /// from hardware concurrency.
  unsigned max_consumers = 0;
};

/// A multi-tenant sharded cache server. Usage:
///   CacheServer server(options, num_clients);
///   ... client threads call Submit(client, batch...) repeatedly,
///       then Finish(client) exactly once ...
///   server.Shutdown();   // joins consumers; stats become readable
/// Submit blocks until the batch has been applied (closed loop).
class CacheServer {
 public:
  /// Builds shards and starts consumer threads. Throws
  /// std::invalid_argument for unusable options (zero shards/clients,
  /// OPT policy).
  CacheServer(const ServerOptions& options, std::size_t num_clients);
  ~CacheServer();

  CacheServer(const CacheServer&) = delete;
  CacheServer& operator=(const CacheServer&) = delete;

  /// Enqueues one batch for `client` and blocks until every request in
  /// it has been applied to its shard. Safe to call from many client
  /// threads concurrently (one in flight per client at a time keeps the
  /// closed-loop semantics; the queue itself accepts any producer).
  void Submit(std::size_t client, const Request* requests, std::size_t n);

  /// Marks `client`'s stream complete. Every client must be finished
  /// before Shutdown() returns.
  void Finish(std::size_t client);

  /// Waits for all queues to drain and joins the consumer threads.
  /// Idempotent; called by the destructor if needed.
  void Shutdown();

  // Stats. Exact (every applied request is counted under its shard
  // lock); call after Shutdown() for a quiescent snapshot.
  CacheStats TotalStats() const;
  std::map<ClientId, CacheStats> PerClientStats() const;
  std::vector<CacheStats> PerShardStats() const;
  std::uint64_t requests_applied() const;
  std::uint64_t batches_applied() const;
  /// Number of per-shard batch applications (lock acquisitions paired
  /// with one AccessBatch call). requests_applied() / shard_drains() is
  /// the consumer-side batch size actually achieved — the submitted
  /// batch size divided by how many shards each batch straddled.
  std::uint64_t shard_drains() const;

  std::size_t shards() const { return shards_.size(); }
  std::size_t pages_per_shard() const { return pages_per_shard_; }
  unsigned consumers() const { return static_cast<unsigned>(consumers_.size()); }

 private:
  /// One submitted batch, owned by the submitting thread; `applied` is
  /// signalled under the owning queue's mutex.
  struct Batch {
    const Request* requests = nullptr;
    std::size_t n = 0;
    bool applied = false;
  };

  /// Per-client ingress queue: producers push under `mu`, the assigned
  /// consumer pops. MPSC by construction (any thread may produce for
  /// the client; exactly one consumer services the queue).
  struct ClientQueue {
    std::mutex mu;
    std::condition_variable arrival;   // consumer waits: batch or eos
    std::condition_variable applied;   // producer waits: batch done
    std::deque<Batch*> pending;
    bool eos = false;
  };

  /// A cache shard: policy + stats behind one mutex. The Policy
  /// interface is not thread-safe (core/policy.h); `mu` is the sole
  /// serialization point for AccessBatch() on this shard's policy, and
  /// the NDEBUG-gated `entered` flag asserts that discipline holds.
  struct Shard {
    std::mutex mu;
    std::unique_ptr<Policy> policy;
    SeqNum seq = 0;
    std::vector<CacheStats> client_stats;  // indexed by Request::client
    std::uint64_t requests = 0;
    std::uint64_t drains = 0;  // AccessBatch calls (= lock acquisitions)
#ifndef NDEBUG
    bool entered = false;  // set/cleared under mu; asserts single entry
#endif
  };

  /// Per-consumer scratch, reused across batches so the drain path
  /// allocates only on capacity growth: each submitted batch is
  /// gathered into contiguous per-shard request runs (AccessBatch
  /// takes a contiguous span) plus one hit-byte buffer.
  struct Scratch {
    std::vector<std::vector<Request>> buckets;  // one per shard
    std::vector<std::uint8_t> hits;
  };

  void ApplyBatch(std::size_t consumer_index, const Batch& batch);
  void ConsumeRoundRobin(std::size_t consumer_index);
  void ConsumeInClientOrder();

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<ClientQueue>> queues_;
  std::vector<std::thread> consumers_;
  std::vector<Scratch> scratch_;
  std::size_t pages_per_shard_ = 0;
  bool deterministic_ = false;
  bool shut_down_ = false;
  std::atomic<std::uint64_t> batches_applied_{0};
};

/// Closed-loop load generation against a CacheServer.
struct LoadOptions {
  std::size_t clients = 1;
  std::size_t batch_size = 64;
  /// Caps how much of the trace is replayed (0 = the whole trace).
  /// Client c replays the contiguous chunk [c*N/C, (c+1)*N/C) of the
  /// capped trace, so the concatenation of all chunks in client order
  /// is the capped trace itself (the determinism rule relies on this).
  std::uint64_t request_budget = 0;
  /// > 0: clients loop their chunk until the wall clock runs out
  /// (throughput mode; rejected when options.deterministic is set).
  /// The first pass of each chunk always completes — every request is
  /// applied at least once — and the deadline then cuts later passes
  /// at the next batch boundary.
  double duration_seconds = 0.0;
};

struct ClientLoadStats {
  std::uint64_t requests = 0;
  std::uint64_t batches = 0;
  double p50_us = 0.0;  // per-batch submit-to-applied latency
  double p99_us = 0.0;
};

struct ServeResult {
  CacheStats total;
  std::map<ClientId, CacheStats> per_client;  // keyed by Request::client
  std::vector<CacheStats> per_shard;
  std::vector<ClientLoadStats> per_driver;  // indexed by driver client
  std::uint64_t requests = 0;
  std::uint64_t batches = 0;
  /// Per-shard AccessBatch applications; requests / shard_drains is the
  /// average drained batch size (how much of the submitted batch size
  /// survives hash-sharding — the lock-amortization actually achieved).
  std::uint64_t shard_drains = 0;
  double avg_drained_batch = 0.0;
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;
  double p50_us = 0.0;  // across all drivers' batches
  double p99_us = 0.0;
};

/// Replays `trace` against a fresh CacheServer with `load.clients`
/// closed-loop driver threads. Throws std::invalid_argument for
/// incompatible options (deterministic + duration, zero clients/batch).
ServeResult ServeTrace(const Trace& trace, const ServerOptions& options,
                       const LoadOptions& load);

}  // namespace clic::server
