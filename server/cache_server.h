// Online sharded cache server: the serving layer the paper's storage
// server implies. Pages are hash-partitioned across S shards; each
// shard owns one Policy instance (any PolicyKind except OPT, whose
// clairvoyant oracle has no online meaning) behind a per-shard mutex.
// Clients submit *batches* of requests through per-client MPSC queues;
// consumer threads drain whole batches and apply each batch's per-shard
// slice under a single shard-lock acquisition, so the lock cost is
// amortized over the batch instead of paid per request.
//
// Determinism rule: with `deterministic == true` the server runs exactly
// one consumer thread that drains client queues in strict client order
// (all of client 0's stream, then client 1's, ...). Each shard therefore
// sees exactly the subsequence of the concatenated client streams whose
// pages hash to it, in stream order, with a per-shard seq counter equal
// to the request's index within that subsequence — which is precisely
// what a sequential Simulate() of the shard's partition observes. So the
// aggregate (and per-client) hit counts of a deterministic run are
// bit-identical to per-shard sequential Simulate() of the partitioned
// trace; ServeTrace arranges client chunks so their concatenation is the
// original trace.
//
// Failure model (see DESIGN.md "Failure model & degradation"): every
// resource a producer can exhaust is bounded and every wait can be
// bounded. Admission into a client queue honours a depth cap under one
// of three policies (block / block-with-deadline / shed), drained
// batches can carry a service deadline past which they are dropped
// instead of served stale, a watchdog sheds traffic routed at a shard
// whose in-flight drain has exceeded a threshold, a hint-sanity guard
// quarantines corrupted hint ids into an untrusted fallback bucket
// instead of letting them index (or explode) policy state, and Stop()
// aborts a wedged run — unblocking producers, discarding queued work
// with exact accounting, and joining all consumers. Deterministic fault
// injection (server/fault_injection.h) drives all of it reproducibly.
#pragma once

#include <atomic>
#include <condition_variable>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/clic.h"
#include "server/fault_injection.h"
#include "sim/policy_factory.h"
#include "sim/simulator.h"

namespace clic::server {

/// Shard assignment for a page. FNV-1a over the page id so adjacent
/// pages spread across shards; every component that partitions (the
/// server, PartitionByShard, the determinism test) must use this one
/// function.
std::size_t ShardOf(PageId page, std::size_t shards);

/// Per-shard cache capacity for a total budget of `total_pages` split
/// across `shards` shards (each shard gets at least one page).
std::size_t ShardCachePages(std::size_t total_pages, std::size_t shards);

/// Splits `trace` into `shards` sub-traces by ShardOf(page), preserving
/// request order within each shard. Hint registries are deep copies (the
/// ids are unchanged), honouring the no-shared-mutable-registry rule.
std::vector<Trace> PartitionByShard(const Trace& trace, std::size_t shards);

struct ServerOptions;  // below
struct LoadOptions;    // below

/// Per-shard sequential Simulate() of the (budget-capped) partitioned
/// trace, merged across shards: the ground truth the deterministic
/// server mode reproduces bit-exactly. The single implementation both
/// `clic_serve --verify` and the determinism tests compare against, so
/// the two checks can never drift apart. `request_budget` 0 means the
/// whole trace.
SimResult PartitionedSimulate(const Trace& trace, const ServerOptions& options,
                              std::uint64_t request_budget = 0);

/// The requests a deterministic run with fault plan `plan` actually
/// serves: the budget-capped trace, chunked and batched exactly as
/// ServeTrace's drivers do, with every batch the plan's `shed_every`
/// rule rejects removed. With no plan (or no shed clause) this is the
/// capped trace itself. PartitionedSimulate of this filtered trace is
/// the verify baseline for a chaos run — non-shed requests must produce
/// bit-identical decisions.
Trace FilterShedBatches(const Trace& trace, const LoadOptions& load,
                        const fault::FaultPlan* plan,
                        std::uint64_t request_budget);

/// What Submit/SubmitAsync did with a batch.
enum class SubmitResult : std::uint8_t {
  kApplied,   // closed-loop Submit: every request was applied
  kEnqueued,  // open-loop SubmitAsync: admitted; applied later
  kShed,      // rejected at admission (cap, watchdog, or fault plan)
  kTimedOut,  // kBlockWithDeadline wait for queue space expired
  kExpired,   // admitted, but its service deadline passed before drain
  kStopped,   // Stop() aborted it (while waiting, queued, or in flight)
};
const char* SubmitResultName(SubmitResult r);

/// Producer behaviour when a client queue is at its depth cap.
enum class AdmissionPolicy : std::uint8_t {
  kBlock,              // wait for space (the pre-cap closed-loop behaviour)
  kBlockWithDeadline,  // wait up to submit_timeout_ms, then kTimedOut
  kShed,               // reject immediately with kShed
};
const char* AdmissionPolicyName(AdmissionPolicy p);
std::optional<AdmissionPolicy> ParseAdmissionPolicy(const std::string& name);

/// Exact admission/backpressure accounting, per client and aggregated.
/// Invariants (asserted by tests/test_fault_injection.cc and gated in
/// CI by tools/check_bench_floors.py on bench_overload rows):
///   submitted == enqueued + shed + timed_out + stopped_at_admission
///   enqueued  == applied + expired + stopped_in_queue
/// so submitted == applied + shed + timed_out + expired + stopped,
/// batch- and request-granular, with nothing counted twice or lost.
struct AdmissionStats {
  std::uint64_t submitted_batches = 0, submitted_requests = 0;
  std::uint64_t enqueued_batches = 0, enqueued_requests = 0;
  std::uint64_t applied_batches = 0, applied_requests = 0;
  std::uint64_t shed_batches = 0, shed_requests = 0;
  std::uint64_t timed_out_batches = 0, timed_out_requests = 0;
  std::uint64_t expired_batches = 0, expired_requests = 0;
  std::uint64_t stopped_batches = 0, stopped_requests = 0;

  AdmissionStats& operator+=(const AdmissionStats& o) {
    submitted_batches += o.submitted_batches;
    submitted_requests += o.submitted_requests;
    enqueued_batches += o.enqueued_batches;
    enqueued_requests += o.enqueued_requests;
    applied_batches += o.applied_batches;
    applied_requests += o.applied_requests;
    shed_batches += o.shed_batches;
    shed_requests += o.shed_requests;
    timed_out_batches += o.timed_out_batches;
    timed_out_requests += o.timed_out_requests;
    expired_batches += o.expired_batches;
    expired_requests += o.expired_requests;
    stopped_batches += o.stopped_batches;
    stopped_requests += o.stopped_requests;
    return *this;
  }
};

struct ServerOptions {
  std::size_t shards = 1;
  /// Total cache budget in pages, split evenly across shards.
  std::size_t cache_pages = 0;
  PolicyKind policy = PolicyKind::kLru;
  ClicOptions clic;  // applied when policy == kClic
  /// Single consumer draining clients in strict id order (see file
  /// comment). Off: one consumer per min(clients, hardware) cores,
  /// clients round-robined across consumers.
  bool deterministic = false;
  /// Consumer thread cap for the non-deterministic mode; 0 = choose
  /// from hardware concurrency.
  unsigned max_consumers = 0;

  // ---- overload resilience (all off by default: the pre-existing
  // infinite-patience closed-loop behaviour) ----

  /// Max pending batches per client queue; 0 = unbounded.
  std::size_t queue_cap = 0;
  /// What a producer does when the queue is at queue_cap.
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  /// Wait bound for kBlockWithDeadline, in milliseconds (must be > 0
  /// when that policy is selected and queue_cap > 0).
  double submit_timeout_ms = 0.0;
  /// > 0: a drained batch older than this (submit-to-drain) is dropped
  /// as kExpired instead of served stale.
  double batch_deadline_ms = 0.0;
  /// > 0: admission sheds any batch containing a request routed to a
  /// shard whose in-flight drain has been running longer than this.
  /// Recovery is automatic the moment the stalled drain completes.
  double watchdog_ms = 0.0;
  /// > 0: hint-sanity guard. A drained request with hint_set >=
  /// hint_bound (possible only via corruption — trace loading validates
  /// ids) is quarantined: remapped to the reserved untrusted hint id
  /// `hint_bound` and counted, instead of indexing policy state with
  /// garbage (for CLIC a huge id would force a gigantic per-hint
  /// allocation). The untrusted bucket earns its own Equation-2
  /// priority; within its rank bucket eviction order is LRU, so
  /// degraded service stays sane. 0 = guard off (trusted callers).
  std::uint32_t hint_bound = 0;
  /// Record per-drain latencies (lock-held time per shard batch
  /// application) so DrainLatencyPercentiles() works. Off by default:
  /// the sample vectors allocate during serving.
  bool record_drain_latency = false;
  /// Deterministic fault injection; not owned, may be nullptr (no
  /// faults — the hooks cost one branch per drain). A plan with
  /// corruption requires hint_bound > 0 (constructor-enforced).
  const fault::FaultPlan* fault = nullptr;
};

/// A multi-tenant sharded cache server. Usage:
///   CacheServer server(options, num_clients);
///   ... client threads call Submit(client, batch...) repeatedly,
///       then Finish(client) exactly once ...
///   server.Shutdown();   // joins consumers; stats become readable
/// Submit blocks until the batch has been applied (closed loop);
/// SubmitAsync returns at admission (open loop, server copies the
/// batch). Stop() aborts a run from any thread: blocked producers
/// return kStopped, queued batches are discarded with exact accounting,
/// and consumers join.
class CacheServer {
 public:
  /// Builds shards and starts consumer threads. Throws
  /// std::invalid_argument for unusable options (zero shards/clients,
  /// OPT policy, deadline admission without a timeout, corruption
  /// injection without a hint guard).
  CacheServer(const ServerOptions& options, std::size_t num_clients);
  ~CacheServer();

  CacheServer(const CacheServer&) = delete;
  CacheServer& operator=(const CacheServer&) = delete;

  /// Closed loop: admits one batch for `client` and blocks until every
  /// request in it has been applied to its shard — or until admission
  /// rejects it (kShed / kTimedOut), its deadline expires in queue
  /// (kExpired), or Stop() aborts the run (kStopped). Safe to call from
  /// many client threads concurrently. The caller keeps ownership of
  /// `requests`; they are not copied and must stay valid until return.
  SubmitResult Submit(std::size_t client, const Request* requests,
                      std::size_t n);

  /// Open loop: admits one batch and returns immediately (kEnqueued on
  /// success). The server copies the requests, so the caller's buffer
  /// may be reused at once. Outcomes past admission (applied / expired
  /// / stopped) land in the admission stats, not the return value.
  SubmitResult SubmitAsync(std::size_t client, const Request* requests,
                           std::size_t n);

  /// Marks `client`'s stream complete. Every client must be finished
  /// before Shutdown() returns.
  void Finish(std::size_t client);

  /// Waits for all queues to drain and joins the consumer threads.
  /// Idempotent; called by the destructor if needed.
  void Shutdown();

  /// Aborts the run: producers blocked at admission (or waiting for a
  /// closed-loop batch) return kStopped, every still-queued batch is
  /// discarded and counted as stopped, and consumers exit after the
  /// batch they are currently applying (a fault-injected stall checks
  /// the stop flag every millisecond, so even a stalled shard unwinds
  /// promptly). Joins the consumers before returning; idempotent, and
  /// a later Shutdown() is a no-op.
  void Stop();

  // Stats. Exact (every applied request is counted under its shard
  // lock); call after Shutdown()/Stop() for a quiescent snapshot.
  CacheStats TotalStats() const;
  std::map<ClientId, CacheStats> PerClientStats() const;
  std::vector<CacheStats> PerShardStats() const;
  std::uint64_t requests_applied() const;
  std::uint64_t batches_applied() const;
  /// Number of per-shard batch applications (lock acquisitions paired
  /// with one AccessBatch call). requests_applied() / shard_drains() is
  /// the consumer-side batch size actually achieved — the submitted
  /// batch size divided by how many shards each batch straddled.
  std::uint64_t shard_drains() const;

  /// Admission/backpressure accounting (see AdmissionStats invariants).
  AdmissionStats TotalAdmission() const;
  std::vector<AdmissionStats> PerClientAdmission() const;
  /// Requests remapped to the untrusted hint bucket by the sanity
  /// guard — the degraded-mode counter.
  std::uint64_t quarantined() const;
  /// Batches shed by the watchdog (subset of the shed counts).
  std::uint64_t watchdog_sheds() const;
  /// Sorted per-drain latencies in microseconds, merged across shards.
  /// Empty unless options.record_drain_latency was set.
  std::vector<double> DrainLatenciesUs() const;

  std::size_t shards() const { return shards_.size(); }
  std::size_t pages_per_shard() const { return pages_per_shard_; }
  unsigned consumers() const { return static_cast<unsigned>(consumers_.size()); }

 private:
  using Clock = std::chrono::steady_clock;

  /// One submitted batch. Closed-loop batches live on the producer's
  /// stack and point at caller memory; open-loop batches are heap-
  /// allocated, own a copy in `owned`, and are deleted by the consumer.
  /// `done`/`result` are written under the owning queue's mutex.
  struct Batch {
    const Request* requests = nullptr;
    std::size_t n = 0;
    std::vector<Request> owned;  // open-loop storage
    Clock::time_point deadline{};  // epoch = no deadline
    std::uint64_t submit_index = 0;  // 1-based per client; drives faults
    ClientId client = 0;
    bool async = false;
    bool done = false;
    SubmitResult result = SubmitResult::kApplied;
  };

  /// Per-client ingress queue: producers push under `mu`, the assigned
  /// consumer pops. MPSC by construction (any thread may produce for
  /// the client; exactly one consumer services the queue). `adm` is the
  /// queue's exact admission ledger, mutated only under `mu`.
  struct ClientQueue {
    std::mutex mu;
    std::condition_variable arrival;   // consumer waits: batch, eos, stop
    std::condition_variable space;     // producer waits: below queue_cap
    std::condition_variable done_cv;   // producer waits: batch done
    std::deque<Batch*> pending;
    AdmissionStats adm;
    std::uint64_t submit_counter = 0;  // 1-based index for fault hooks
    bool eos = false;
  };

  /// A cache shard: policy + stats behind one mutex. The Policy
  /// interface is not thread-safe (core/policy.h); `mu` is the sole
  /// serialization point for AccessBatch() on this shard's policy, and
  /// the NDEBUG-gated `entered` flag asserts that discipline holds.
  struct Shard {
    std::mutex mu;
    std::unique_ptr<Policy> policy;
    SeqNum seq = 0;
    std::vector<CacheStats> client_stats;  // indexed by Request::client
    std::uint64_t requests = 0;
    std::uint64_t drains = 0;  // AccessBatch calls (= lock acquisitions)
    std::uint64_t quarantined = 0;  // untrusted-hint remaps in this shard
    std::vector<double> drain_us;   // per-drain latency samples (opt-in)
    /// Nanoseconds-since-steady-epoch when the in-flight drain started,
    /// 0 when idle. Written by the draining consumer, read lock-free by
    /// the admission watchdog.
    std::atomic<std::int64_t> busy_since_ns{0};
#ifndef NDEBUG
    bool entered = false;  // set/cleared under mu; asserts single entry
#endif
  };

  /// Per-consumer scratch, reused across batches so the drain path
  /// allocates only on capacity growth: each submitted batch is
  /// gathered into contiguous per-shard request runs (AccessBatch
  /// takes a contiguous span) plus one hit-byte buffer. `mutated`
  /// holds the writable copy a corruption or quarantine pass needs.
  struct Scratch {
    std::vector<std::vector<Request>> buckets;  // one per shard
    std::vector<std::uint8_t> hits;
    std::vector<Request> mutated;
    std::uint64_t batches_processed = 0;  // drives consumer-pause faults
  };

  /// Shared admission path. Returns kEnqueued and transfers `batch`
  /// into the queue on success; any other result means the batch was
  /// not enqueued (and, for async batches, that the caller must free
  /// it). All accounting happens here under q.mu.
  SubmitResult Admit(ClientQueue& q, Batch* batch);
  /// True when `reqs` contains a request routed at a shard whose
  /// in-flight drain exceeds the watchdog threshold. Only called on the
  /// degraded path (some shard already looked stalled).
  bool TouchesStalledShard(const Request* reqs, std::size_t n,
                           std::int64_t now_ns) const;
  void ApplyBatch(std::size_t consumer_index, Batch& batch);
  /// Marks `batch` done with `result` under q.mu, updates the ledger,
  /// wakes a closed-loop producer or frees an open-loop batch.
  void CompleteBatch(ClientQueue& q, Batch* batch, SubmitResult result);
  /// Discards every still-pending batch of `q` as kStopped.
  void AbortPending(ClientQueue& q);
  void ConsumeRoundRobin(std::size_t consumer_index);
  void ConsumeInClientOrder();
  void StallIfPlanned(Shard& shard, std::size_t shard_index);
  void PauseIfPlanned(std::size_t consumer_index, Scratch& scratch);
  /// Applies the plan's seeded hint corruption and/or the hint-sanity
  /// quarantine to the batch, switching `reqs` to the scratch copy when
  /// a mutation is actually needed. Returns the effective request span.
  const Request* PrepareRequests(Scratch& scratch, const Batch& batch,
                                 std::uint64_t* quarantined_out);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<ClientQueue>> queues_;
  std::vector<std::thread> consumers_;
  std::vector<Scratch> scratch_;
  std::size_t pages_per_shard_ = 0;
  bool deterministic_ = false;
  bool joined_ = false;
  std::size_t queue_cap_ = 0;
  AdmissionPolicy admission_ = AdmissionPolicy::kBlock;
  double submit_timeout_ms_ = 0.0;
  double batch_deadline_ms_ = 0.0;
  double watchdog_ms_ = 0.0;
  std::uint32_t hint_bound_ = 0;
  bool record_drain_latency_ = false;
  const fault::FaultPlan* fault_ = nullptr;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> batches_applied_{0};
  std::atomic<std::uint64_t> watchdog_sheds_{0};
};

/// Closed-loop load generation against a CacheServer.
struct LoadOptions {
  std::size_t clients = 1;
  std::size_t batch_size = 64;
  /// Caps how much of the trace is replayed (0 = the whole trace).
  /// Client c replays the contiguous chunk [c*N/C, (c+1)*N/C) of the
  /// capped trace, so the concatenation of all chunks in client order
  /// is the capped trace itself (the determinism rule relies on this).
  std::uint64_t request_budget = 0;
  /// > 0: clients loop their chunk until the wall clock runs out
  /// (throughput mode; rejected when options.deterministic is set).
  /// The first pass of each chunk always completes — every request is
  /// applied at least once — and the deadline then cuts later passes
  /// at the next batch boundary.
  double duration_seconds = 0.0;
};

struct ClientLoadStats {
  std::uint64_t requests = 0;  // submitted by this driver
  std::uint64_t batches = 0;   // submitted by this driver
  std::uint64_t shed_batches = 0;
  std::uint64_t timed_out_batches = 0;
  std::uint64_t expired_batches = 0;
  double p50_us = 0.0;  // per-batch submit-to-applied latency
  double p99_us = 0.0;
};

struct ServeResult {
  CacheStats total;
  std::map<ClientId, CacheStats> per_client;  // keyed by Request::client
  std::vector<CacheStats> per_shard;
  std::vector<ClientLoadStats> per_driver;  // indexed by driver client
  /// Applied requests/batches (what reached a shard policy).
  std::uint64_t requests = 0;
  std::uint64_t batches = 0;
  /// Per-shard AccessBatch applications; requests / shard_drains is the
  /// average drained batch size (how much of the submitted batch size
  /// survives hash-sharding — the lock-amortization actually achieved).
  std::uint64_t shard_drains = 0;
  double avg_drained_batch = 0.0;
  /// Exact admission ledger across all clients.
  AdmissionStats admission;
  std::uint64_t quarantined = 0;
  std::uint64_t watchdog_sheds = 0;
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;
  double p50_us = 0.0;  // across all drivers' applied batches
  double p99_us = 0.0;
  double drain_p50_us = 0.0;  // per-shard-drain latency (opt-in)
  double drain_p99_us = 0.0;
};

/// Replays `trace` against a fresh CacheServer with `load.clients`
/// closed-loop driver threads. Throws std::invalid_argument for
/// incompatible options (deterministic + duration, zero clients/batch).
/// Batches rejected by admission (shed / timed out / expired) are
/// counted and skipped; the driver moves on to the next batch.
ServeResult ServeTrace(const Trace& trace, const ServerOptions& options,
                       const LoadOptions& load);

}  // namespace clic::server
