// Online sharded cache server: the serving layer the paper's storage
// server implies. Pages are hash-partitioned across S shards; each
// consumer thread *owns* a disjoint set of shards — policy, seq counter
// and stats for a shard live on exactly one core, with no mutex between
// them and the requests they serve. Clients reach the owning core
// through lock-free bounded SPSC rings (common/spsc_ring.h), one ring
// per (client, consumer) pair: the producing client thread computes
// every request's shard once at submit time, groups the batch into
// contiguous per-shard runs, and pushes the batch into the ring of each
// consumer that owns one of its shards. The steady-state drain path
// (submit -> ring -> owning-core apply -> completion) acquires no
// std::mutex at all; mutexes and condition variables survive only on
// the slow control path — block/deadline admission at a full queue,
// a producer parking after its spin wait, an idle consumer's 1ms nap,
// and Stop().
//
// Determinism rule: with `deterministic == true` the server runs exactly
// one consumer thread (owning every shard) that drains client rings in
// strict client order (all of client 0's stream, then client 1's, ...).
// Each shard therefore sees exactly the subsequence of the concatenated
// client streams whose pages hash to it, in stream order, with a
// per-shard seq counter equal to the request's index within that
// subsequence — which is precisely what a sequential Simulate() of the
// shard's partition observes. So the aggregate (and per-client) hit
// counts of a deterministic run are bit-identical to per-shard
// sequential Simulate() of the partitioned trace; ServeTrace arranges
// client chunks so their concatenation is the original trace.
//
// Failure model (see DESIGN.md "Failure model & degradation"): every
// resource a producer can exhaust is bounded and every wait can be
// bounded. Admission into the rings honours a per-client depth cap
// under one of three policies (block / block-with-deadline / shed),
// admitted batches can carry a service deadline past which they are
// dropped instead of served stale, a watchdog sheds traffic routed at a
// shard whose in-flight drain has exceeded a threshold, a hint-sanity
// guard quarantines corrupted hint ids into an untrusted fallback
// bucket instead of letting them index (or explode) policy state, and
// Stop() aborts a wedged run — unblocking producers, discarding queued
// work with exact accounting, and joining all consumers. Deterministic
// fault injection (server/fault_injection.h) drives all of it
// reproducibly.
#pragma once

#include <atomic>
#include <condition_variable>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/spsc_ring.h"
#include "common/thread_annotations.h"
#include "core/clic.h"
#include "server/fault_injection.h"
#include "sim/policy_factory.h"
#include "sim/simulator.h"

namespace clic::server {

/// Shard assignment for a page. FNV-1a over the page id so adjacent
/// pages spread across shards; every component that partitions (the
/// server, PartitionByShard, the determinism test) must use this one
/// function. The server computes it once per request at submit time and
/// carries the shard id alongside the batch from there on.
std::size_t ShardOf(PageId page, std::size_t shards);

/// Per-shard cache capacity for a total budget of `total_pages` split
/// across `shards` shards (each shard gets at least one page).
std::size_t ShardCachePages(std::size_t total_pages, std::size_t shards);

/// Splits `trace` into `shards` sub-traces by ShardOf(page), preserving
/// request order within each shard. Hint registries are deep copies (the
/// ids are unchanged), honouring the no-shared-mutable-registry rule.
std::vector<Trace> PartitionByShard(const Trace& trace, std::size_t shards);

struct ServerOptions;  // below
struct LoadOptions;    // below

/// Per-shard sequential Simulate() of the (budget-capped) partitioned
/// trace, merged across shards: the ground truth the deterministic
/// server mode reproduces bit-exactly. The single implementation both
/// `clic_serve --verify` and the determinism tests compare against, so
/// the two checks can never drift apart. `request_budget` 0 means the
/// whole trace.
SimResult PartitionedSimulate(const Trace& trace, const ServerOptions& options,
                              std::uint64_t request_budget = 0);

/// The requests a deterministic run with fault plan `plan` actually
/// serves: the budget-capped trace, chunked and batched exactly as
/// ServeTrace's drivers do, with every batch the plan's `shed_every`
/// rule rejects removed. With no plan (or no shed clause) this is the
/// capped trace itself. PartitionedSimulate of this filtered trace is
/// the verify baseline for a chaos run — non-shed requests must produce
/// bit-identical decisions.
Trace FilterShedBatches(const Trace& trace, const LoadOptions& load,
                        const fault::FaultPlan* plan,
                        std::uint64_t request_budget);

/// What Submit/SubmitAsync did with a batch.
enum class SubmitResult : std::uint8_t {
  kApplied,   // closed-loop Submit: every request was applied
  kEnqueued,  // open-loop SubmitAsync: admitted; applied later
  kShed,      // rejected at admission (cap, watchdog, or fault plan)
  kTimedOut,  // kBlockWithDeadline wait for queue space expired
  kExpired,   // admitted, but its service deadline passed before drain
  kStopped,   // Stop() aborted it (while waiting, queued, or in flight)
};
const char* SubmitResultName(SubmitResult r);

/// Producer behaviour when a client queue is at its depth cap.
enum class AdmissionPolicy : std::uint8_t {
  kBlock,              // wait for space (the pre-cap closed-loop behaviour)
  kBlockWithDeadline,  // wait up to submit_timeout_ms, then kTimedOut
  kShed,               // reject immediately with kShed
};
const char* AdmissionPolicyName(AdmissionPolicy p);
std::optional<AdmissionPolicy> ParseAdmissionPolicy(const std::string& name);

/// How shards are assigned to the consumer threads that own them.
/// kStripe gives shard s to consumer s % consumers (neighbouring shards
/// land on different cores — the default); kBlock gives each consumer a
/// contiguous range of shards (friendlier when shard ids correlate with
/// data placement). Either way the assignment is a static disjoint
/// partition fixed at construction.
enum class ShardAssignment : std::uint8_t { kStripe, kBlock };
const char* ShardAssignmentName(ShardAssignment a);
std::optional<ShardAssignment> ParseShardAssignment(const std::string& name);

/// Exact admission/backpressure accounting, per client and aggregated.
/// Invariants (asserted by tests/test_fault_injection.cc and gated in
/// CI by tools/check_bench_floors.py on bench_overload rows):
///   submitted == enqueued + shed + timed_out + stopped_at_admission
///   enqueued  == applied + expired + stopped_in_queue
/// so submitted == applied + shed + timed_out + expired + stopped,
/// batch- and request-granular, with nothing counted twice or lost.
/// A batch whose shard runs straddle several consumers completes with
/// one outcome (stopped beats expired beats applied), so the ledger
/// stays batch-exact even when Stop() interrupts a half-applied batch —
/// in that case the shard-side requests_applied() may exceed the
/// ledger's applied_requests, which counts whole batches.
struct AdmissionStats {
  std::uint64_t submitted_batches = 0, submitted_requests = 0;
  std::uint64_t enqueued_batches = 0, enqueued_requests = 0;
  std::uint64_t applied_batches = 0, applied_requests = 0;
  std::uint64_t shed_batches = 0, shed_requests = 0;
  std::uint64_t timed_out_batches = 0, timed_out_requests = 0;
  std::uint64_t expired_batches = 0, expired_requests = 0;
  std::uint64_t stopped_batches = 0, stopped_requests = 0;

  AdmissionStats& operator+=(const AdmissionStats& o) {
    submitted_batches += o.submitted_batches;
    submitted_requests += o.submitted_requests;
    enqueued_batches += o.enqueued_batches;
    enqueued_requests += o.enqueued_requests;
    applied_batches += o.applied_batches;
    applied_requests += o.applied_requests;
    shed_batches += o.shed_batches;
    shed_requests += o.shed_requests;
    timed_out_batches += o.timed_out_batches;
    timed_out_requests += o.timed_out_requests;
    expired_batches += o.expired_batches;
    expired_requests += o.expired_requests;
    stopped_batches += o.stopped_batches;
    stopped_requests += o.stopped_requests;
    return *this;
  }
};

struct ServerOptions {
  std::size_t shards = 1;
  /// Total cache budget in pages, split evenly across shards.
  std::size_t cache_pages = 0;
  PolicyKind policy = PolicyKind::kLru;
  ClicOptions clic;  // applied when policy == kClic
  /// Single consumer draining clients in strict id order (see file
  /// comment). Off: consumer count from `consumers`/`max_consumers`.
  bool deterministic = false;
  /// Explicit consumer (owning-core) count; 0 = auto. Must be
  /// <= shards (a consumer owning zero shards would idle forever) and
  /// 1 when deterministic. Auto picks min(shards, max_consumers > 0 ?
  /// max_consumers : hardware_concurrency).
  unsigned consumers = 0;
  /// Consumer thread cap for the auto mode; 0 = hardware concurrency.
  unsigned max_consumers = 0;
  /// How shards map to owning consumers (see ShardAssignment).
  ShardAssignment assignment = ShardAssignment::kStripe;
  /// Capacity of each (client, consumer) SPSC ring, in batches. Must be
  /// a power of two >= 2 (the ring masks instead of dividing); the
  /// constructor throws naming the offending value otherwise.
  std::size_t ring_capacity = 256;

  // ---- overload resilience (all off by default: the pre-existing
  // infinite-patience closed-loop behaviour) ----

  /// Max admitted-but-not-yet-drained batches per client; 0 = bounded
  /// only by the rings themselves.
  std::size_t queue_cap = 0;
  /// What a producer does when the queue is at queue_cap.
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  /// Wait bound for kBlockWithDeadline, in milliseconds (must be > 0
  /// when that policy is selected and queue_cap > 0).
  double submit_timeout_ms = 0.0;
  /// > 0: a drained batch older than this (submit-to-drain) is dropped
  /// as kExpired instead of served stale.
  double batch_deadline_ms = 0.0;
  /// > 0: admission sheds any batch containing a request routed to a
  /// shard whose in-flight drain has been running longer than this.
  /// Recovery is automatic the moment the stalled drain completes.
  double watchdog_ms = 0.0;
  /// > 0: hint-sanity guard. A submitted request with hint_set >=
  /// hint_bound (possible only via corruption — trace loading validates
  /// ids) is quarantined: remapped to the reserved untrusted hint id
  /// `hint_bound` and counted, instead of indexing policy state with
  /// garbage (for CLIC a huge id would force a gigantic per-hint
  /// allocation). The untrusted bucket earns its own Equation-2
  /// priority; within its rank bucket eviction order is LRU, so
  /// degraded service stays sane. 0 = guard off (trusted callers).
  std::uint32_t hint_bound = 0;
  /// Record per-drain latencies (per-shard batch application time) so
  /// DrainLatencyPercentiles() works. Off by default: the sample
  /// vectors allocate during serving.
  bool record_drain_latency = false;
  /// Deterministic fault injection; not owned, may be nullptr (no
  /// faults — the hooks cost one branch per drain). A plan with
  /// corruption requires hint_bound > 0 (constructor-enforced).
  const fault::FaultPlan* fault = nullptr;
};

/// A multi-tenant sharded cache server. Usage:
///   CacheServer server(options, num_clients);
///   ... one producer thread per client calls Submit(client, batch...)
///       repeatedly, then Finish(client) exactly once ...
///   server.Shutdown();   // joins consumers; stats become readable
/// Submit blocks until the batch has been applied (closed loop);
/// SubmitAsync returns at admission (open loop, server copies the
/// batch). Stop() aborts a run from any thread: blocked producers
/// return kStopped, queued batches are discarded with exact accounting,
/// and consumers join.
///
/// Threading contract: each client id must be driven by AT MOST ONE
/// producer thread at a time (Submit / SubmitAsync / Finish for one
/// client never race with themselves) — the SPSC rings and the plain
/// producer-side ledger fields depend on it. Distinct clients may be
/// driven from distinct threads freely, and Stop()/Shutdown() may be
/// called from any thread.
class CacheServer {
 public:
  /// Builds shards, wires the ownership topology, and starts consumer
  /// threads. Throws std::invalid_argument for unusable options (zero
  /// shards/clients, OPT policy, consumers > shards, more than one
  /// consumer in deterministic mode, non-power-of-two ring capacity,
  /// deadline admission without a timeout, corruption injection without
  /// a hint guard).
  CacheServer(const ServerOptions& options, std::size_t num_clients);
  ~CacheServer();

  CacheServer(const CacheServer&) = delete;
  CacheServer& operator=(const CacheServer&) = delete;

  /// Closed loop: admits one batch for `client` and blocks until every
  /// request in it has been applied by its owning consumers — or until
  /// admission rejects it (kShed / kTimedOut), its deadline expires in
  /// queue (kExpired), or Stop() aborts the run (kStopped). The caller
  /// keeps ownership of `requests`; they must stay valid until return.
  SubmitResult Submit(std::size_t client, const Request* requests,
                      std::size_t n);

  /// Open loop: admits one batch and returns immediately (kEnqueued on
  /// success). The server copies the requests, so the caller's buffer
  /// may be reused at once. Outcomes past admission (applied / expired
  /// / stopped) land in the admission stats, not the return value.
  SubmitResult SubmitAsync(std::size_t client, const Request* requests,
                           std::size_t n);

  /// Marks `client`'s stream complete. Every client must be finished
  /// before Shutdown() returns.
  void Finish(std::size_t client);

  /// Waits for all rings to drain and joins the consumer threads.
  /// Idempotent; called by the destructor if needed.
  void Shutdown();

  /// Aborts the run: producers blocked at admission (or waiting for a
  /// closed-loop batch) return kStopped, every still-queued batch is
  /// discarded and counted as stopped, and consumers exit after the
  /// batch slice they are currently applying (a fault-injected stall
  /// checks the stop flag every millisecond, so even a stalled shard
  /// unwinds promptly). Joins the consumers before returning;
  /// idempotent, and a later Shutdown() is a no-op.
  void Stop();

  // Stats. Exact (every applied request is counted by its shard's
  // owning consumer); call after Shutdown()/Stop() for a quiescent
  // snapshot — the consumer joins give the necessary happens-before.
  CacheStats TotalStats() const;
  std::map<ClientId, CacheStats> PerClientStats() const;
  std::vector<CacheStats> PerShardStats() const;
  std::uint64_t requests_applied() const;
  std::uint64_t batches_applied() const;
  /// Number of per-shard batch applications (contiguous shard runs
  /// handed to AccessBatch). requests_applied() / shard_drains() is the
  /// consumer-side batch size actually achieved — the submitted batch
  /// size divided by how many shards each batch straddled.
  std::uint64_t shard_drains() const;
  /// Requests applied by each consumer thread — the per-core load
  /// picture bench_server_scaling reports as per-core req/s.
  std::vector<std::uint64_t> PerConsumerRequests() const;

  /// Admission/backpressure accounting (see AdmissionStats invariants).
  AdmissionStats TotalAdmission() const;
  std::vector<AdmissionStats> PerClientAdmission() const;
  /// Requests remapped to the untrusted hint bucket by the sanity
  /// guard — the degraded-mode counter.
  std::uint64_t quarantined() const;
  /// Batches shed by the watchdog (subset of the shed counts).
  std::uint64_t watchdog_sheds() const;
  /// Sorted per-drain latencies in microseconds, merged across shards.
  /// Empty unless options.record_drain_latency was set.
  std::vector<double> DrainLatenciesUs() const;

  std::size_t shards() const { return shards_.size(); }
  std::size_t pages_per_shard() const { return pages_per_shard_; }
  unsigned consumers() const { return static_cast<unsigned>(consumers_.size()); }
  /// The consumer that owns shard `s` under the configured assignment.
  std::size_t OwnerOf(std::size_t shard) const { return owner_of_[shard]; }

 private:
  using Clock = std::chrono::steady_clock;

  /// A contiguous per-shard run inside a routed batch: requests
  /// [offset, offset + count) of the batch's request span all hash to
  /// `shard`. Runs are shard-ascending; the owning consumer applies
  /// exactly the runs whose shard it owns.
  struct ShardRun {
    std::uint32_t shard = 0;
    std::uint32_t offset = 0;
    std::uint32_t count = 0;
  };

  // Batch completion bits, OR-ed by slices; precedence stopped >
  // expired > applied when the last slice finalizes the outcome.
  static constexpr std::uint8_t kExpiredBit = 1;
  static constexpr std::uint8_t kStoppedBit = 2;

  /// One submitted batch. Closed-loop batches are reusable per-client
  /// slots inside ClientPort (one in flight per client by the producer
  /// contract); open-loop batches are heap-allocated and deleted by the
  /// consumer that completes the last slice. The producer fully routes
  /// and publishes the batch before the ring pushes; the ring's
  /// release/acquire pair makes every plain field visible to consumers.
  struct Batch {
    const Request* reqs = nullptr;   // shard-grouped span (or caller's,
                                     // single-shard unmutated fast path)
    std::vector<Request> routed;     // backing store when copied
    std::vector<ShardRun> runs;      // shard-ascending
    std::size_t n = 0;
    Clock::time_point deadline{};    // epoch = no deadline
    std::uint64_t submit_index = 0;  // 1-based per client; drives faults
    ClientId client = 0;
    bool async = false;
    bool has_quarantine = false;     // any request remapped by the guard
    /// Slices (owning consumers) that have not yet popped / finished.
    std::atomic<std::uint32_t> unpopped{0};
    std::atomic<std::uint32_t> pending{0};
    std::atomic<std::uint8_t> fail_bits{0};
    std::atomic<bool> done{false};
    /// Set (under the port mutex) by a producer that gave up spinning;
    /// tells the finishing consumer a done_cv notify is needed.
    std::atomic<bool> waiting{false};
    SubmitResult result = SubmitResult::kApplied;
  };

  /// Per-client ingress port: one SPSC ring per consumer (this client
  /// produces, that consumer pops), plain producer-side ledger fields
  /// guarded by the `producer` role capability (single producer thread
  /// per client — the clang thread-safety build enforces that every
  /// touch declares the role), atomic completion-side counters (any
  /// consumer may finish a batch), and the mutex+CV control path for
  /// admission waits and post-spin completion parking.
  struct ClientPort {
    /// The "I am this client's one producer thread" role. Acquired by
    /// Submit/SubmitAsync, asserted by the quiescent stats snapshot.
    ThreadRole producer;
    // --- producer-side (plain: one producer thread per client) ---
    AdmissionStats adm CLIC_GUARDED_BY(producer);
    std::uint64_t submit_counter CLIC_GUARDED_BY(producer) = 0;  // 1-based
    Batch sync_batch;  // reusable closed-loop batch (role-guarded use,
                       // but consumers read it through the ring, so the
                       // pointer-shaped contract lives in Batch's docs)
    std::vector<Request> staging CLIC_GUARDED_BY(producer);
    std::vector<std::uint32_t> shard_ids CLIC_GUARDED_BY(producer);
    std::vector<std::uint32_t> run_offset CLIC_GUARDED_BY(producer);
    std::vector<std::size_t> targets CLIC_GUARDED_BY(producer);
    // --- shared ---
    std::vector<std::unique_ptr<SpscRing<Batch*>>> rings;  // one/consumer
    std::atomic<std::uint64_t> queued{0};  // admitted, not yet fully popped
    std::atomic<bool> eos{false};
    /// Producer is inside the push phase (reserve..push). Stop()'s
    /// drain spins this flag out so a push can never land in a ring
    /// after the final drain pass (see Admit/Stop).
    std::atomic<bool> submitting{false};
    // --- completion-side (atomics: consumers finish batches) ---
    std::atomic<std::uint64_t> applied_batches{0}, applied_requests{0};
    std::atomic<std::uint64_t> expired_batches{0}, expired_requests{0};
    std::atomic<std::uint64_t> stopped_batches{0}, stopped_requests{0};
    // --- control path (slow: admission waits, post-spin parking) ---
    // clic-lint: begin-allow(no-mutex-data-path) reason=CV parking for full-queue admission waits and post-spin completion parking; never touched by a non-full, non-idle drain
    Mutex mu;
    std::condition_variable space_cv;  // producer waits: space/cap/stop
    std::condition_variable done_cv;   // producer waits: batch done
    // clic-lint: end-allow(no-mutex-data-path)
    std::atomic<bool> space_waiter{false};
  };

  /// One owning consumer: its shard set, per-core apply scratch and
  /// stats (guarded by the `self` role — only the consumer thread
  /// itself, or the post-join snapshot, may touch them), and the nap
  /// control path (flag + CV) producers use to wake it without a
  /// steady-state mutex.
  struct Consumer {
    /// The "I am this consumer's drain thread" role. Acquired for the
    /// lifetime of ConsumeOwned / ConsumeInClientOrder.
    ThreadRole self;
    std::vector<std::size_t> owned;    // shard ids, ascending; written
                                       // once before threads start
    std::vector<std::uint8_t> done_client CLIC_GUARDED_BY(self);
    std::vector<std::uint8_t> hits CLIC_GUARDED_BY(self);
    std::uint64_t requests CLIC_GUARDED_BY(self) = 0;
    std::uint64_t batches_processed CLIC_GUARDED_BY(self) = 0;
    // clic-lint: begin-allow(no-mutex-data-path) reason=idle-consumer nap CV; a busy consumer never touches it
    Mutex mu;
    std::condition_variable cv;
    // clic-lint: end-allow(no-mutex-data-path)
    std::atomic<bool> napping{false};
  };

  /// A cache shard: policy + stats, owned by exactly one consumer. No
  /// mutex: the Policy interface is not thread-safe (core/policy.h) and
  /// the static ownership partition IS the serialization. The
  /// `ownership` role capability makes that partition a compile-time
  /// contract — any function touching policy/seq/stats must declare
  /// CLIC_REQUIRES(ownership) — and the NDEBUG-gated `entered` flag
  /// still asserts it dynamically against topology bugs.
  struct Shard {
    /// "I am the consumer that owns this shard (or the post-join
    /// quiescent snapshot thread)". Acquired per drained run in
    /// ApplySlice, asserted by the stats readers.
    ThreadRole ownership;
    std::unique_ptr<Policy> policy CLIC_GUARDED_BY(ownership);
    SeqNum seq CLIC_GUARDED_BY(ownership) = 0;
    std::vector<CacheStats> client_stats CLIC_GUARDED_BY(ownership);
    std::uint64_t requests CLIC_GUARDED_BY(ownership) = 0;
    std::uint64_t drains CLIC_GUARDED_BY(ownership) = 0;
    std::uint64_t quarantined CLIC_GUARDED_BY(ownership) = 0;
    std::vector<double> drain_us CLIC_GUARDED_BY(ownership);
    /// Nanoseconds-since-steady-epoch when the in-flight drain started,
    /// 0 when idle. Written by the owning consumer, read lock-free by
    /// the admission watchdog — deliberately NOT role-guarded.
    std::atomic<std::int64_t> busy_since_ns{0};
#ifndef NDEBUG
    std::atomic<bool> entered{false};  // asserts single-owner discipline
#endif
  };

  /// Shared admission + routing path. Computes every request's shard
  /// once, groups the batch into per-shard runs, applies seeded
  /// corruption and the hint-sanity quarantine on the producer side,
  /// reserves space in every target ring (all-or-nothing, so a batch is
  /// never half-pushed), and pushes one slice per owning consumer.
  /// Returns kEnqueued on success; any other result means nothing was
  /// pushed. All admission-side accounting happens here on the plain
  /// producer fields.
  SubmitResult Admit(ClientPort& port, Batch* batch, const Request* requests,
                     std::size_t n)
      CLIC_REQUIRES(port.producer) CLIC_EXCLUDES(port.mu);
  /// Builds batch->reqs/runs from `requests`, including the corruption
  /// and quarantine passes (both submit-time now; corruption stays
  /// bit-identical because it draws from the same (seed, client,
  /// submit_index) RNG over the original batch order).
  void RouteBatch(ClientPort& port, Batch* batch, const Request* requests,
                  std::size_t n) CLIC_REQUIRES(port.producer);
  /// True when one of the batch's shard runs targets a shard whose
  /// in-flight drain exceeds the watchdog threshold. O(runs), using the
  /// shard ids computed at routing — no page rescan.
  bool TouchesStalledShard(const Batch& batch, std::int64_t now_ns) const;
  /// Closed-loop completion wait: spin on `done`, then park on the
  /// port's done_cv with the waiting flag handshake.
  SubmitResult WaitDone(ClientPort& port, Batch& batch)
      CLIC_EXCLUDES(port.mu);
  /// Pop-side bookkeeping shared by consumers and the Stop() drain:
  /// decrements unpopped/queued and wakes a space-waiting producer.
  void NoteSlicePopped(ClientPort& port, Batch* batch)
      CLIC_EXCLUDES(port.mu);
  /// Applies consumer `me`'s owned runs of `batch` to their shards,
  /// acquiring each shard's ownership capability for the run.
  void ApplySlice(std::size_t k, Consumer& me, Batch& batch)
      CLIC_REQUIRES(me.self);
  /// Finishes one slice: last finisher resolves the batch outcome
  /// (stopped > expired > applied), updates the completion ledger,
  /// publishes done, wakes a parked producer, frees async batches.
  void FinishSlice(ClientPort& port, Batch* batch, std::uint8_t bits)
      CLIC_EXCLUDES(port.mu);
  /// Pops and fully processes one batch slice from client `c`'s ring of
  /// consumer `k` (== `me`). Returns false when the ring was empty.
  bool PopAndProcess(std::size_t k, Consumer& me, std::size_t c)
      CLIC_REQUIRES(me.self);
  void ConsumeOwned(std::size_t k);
  void ConsumeInClientOrder();
  void NapConsumer(std::size_t k, Consumer& me)
      CLIC_REQUIRES(me.self) CLIC_EXCLUDES(me.mu);
  void WakeConsumer(std::size_t k);
  void StallIfPlanned(Shard& shard, std::size_t shard_index)
      CLIC_REQUIRES(shard.ownership);
  void PauseIfPlanned(std::size_t consumer_index, std::uint64_t processed);
  AdmissionStats SnapshotAdmission(const ClientPort& port) const;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<ClientPort>> ports_;
  std::vector<std::unique_ptr<Consumer>> consumers_;
  std::vector<std::thread> threads_;
  std::vector<std::uint32_t> owner_of_;  // shard -> owning consumer
  std::size_t pages_per_shard_ = 0;
  bool deterministic_ = false;
  bool joined_ = false;
  std::size_t ring_capacity_ = 256;
  std::size_t queue_cap_ = 0;
  AdmissionPolicy admission_ = AdmissionPolicy::kBlock;
  double submit_timeout_ms_ = 0.0;
  double batch_deadline_ms_ = 0.0;
  double watchdog_ms_ = 0.0;
  std::uint32_t hint_bound_ = 0;
  bool record_drain_latency_ = false;
  const fault::FaultPlan* fault_ = nullptr;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> batches_applied_{0};
  std::atomic<std::uint64_t> watchdog_sheds_{0};
};

/// Closed-loop load generation against a CacheServer.
struct LoadOptions {
  std::size_t clients = 1;
  std::size_t batch_size = 64;
  /// Caps how much of the trace is replayed (0 = the whole trace).
  /// Client c replays the contiguous chunk [c*N/C, (c+1)*N/C) of the
  /// capped trace, so the concatenation of all chunks in client order
  /// is the capped trace itself (the determinism rule relies on this).
  std::uint64_t request_budget = 0;
  /// > 0: clients loop their chunk until the wall clock runs out
  /// (throughput mode; rejected when options.deterministic is set).
  /// The first pass of each chunk always completes — every request is
  /// applied at least once — and the deadline then cuts later passes
  /// at the next batch boundary.
  double duration_seconds = 0.0;
};

struct ClientLoadStats {
  std::uint64_t requests = 0;  // submitted by this driver
  std::uint64_t batches = 0;   // submitted by this driver
  std::uint64_t shed_batches = 0;
  std::uint64_t timed_out_batches = 0;
  std::uint64_t expired_batches = 0;
  double p50_us = 0.0;  // per-batch submit-to-applied latency
  double p99_us = 0.0;
};

struct ServeResult {
  CacheStats total;
  std::map<ClientId, CacheStats> per_client;  // keyed by Request::client
  std::vector<CacheStats> per_shard;
  std::vector<ClientLoadStats> per_driver;  // indexed by driver client
  /// Applied requests/batches (what reached a shard policy).
  std::uint64_t requests = 0;
  std::uint64_t batches = 0;
  /// Per-shard AccessBatch applications; requests / shard_drains is the
  /// average drained batch size (how much of the submitted batch size
  /// survives hash-sharding — the batch amortization actually achieved).
  std::uint64_t shard_drains = 0;
  double avg_drained_batch = 0.0;
  /// Ownership topology actually used, and what the machine offered:
  /// consumer (owning-core) count, std::thread::hardware_concurrency,
  /// and requests applied per consumer. per-core req/s is
  /// requests / consumers / wall_seconds; bench_server_scaling and
  /// bench_overload emit it so multi-core runners can gate scaling
  /// while a 1-core container is recognizable as such.
  unsigned consumers = 0;
  unsigned cores_detected = 0;
  std::vector<std::uint64_t> per_consumer_requests;
  /// Exact admission ledger across all clients.
  AdmissionStats admission;
  std::uint64_t quarantined = 0;
  std::uint64_t watchdog_sheds = 0;
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;
  double p50_us = 0.0;  // across all drivers' applied batches
  double p99_us = 0.0;
  double drain_p50_us = 0.0;  // per-shard-drain latency (opt-in)
  double drain_p99_us = 0.0;
};

/// Replays `trace` against a fresh CacheServer with `load.clients`
/// closed-loop driver threads. Throws std::invalid_argument for
/// incompatible options (deterministic + duration, zero clients/batch).
/// Batches rejected by admission (shed / timed out / expired) are
/// counted and skipped; the driver moves on to the next batch.
ServeResult ServeTrace(const Trace& trace, const ServerOptions& options,
                       const LoadOptions& load);

}  // namespace clic::server
