// clic_serve: drive the sharded online cache server with closed-loop
// clients replaying a named trace, and report throughput, batch latency
// percentiles, and hit statistics.
//
//   clic_serve --trace=DB2_C60 --policy=CLIC --shards=4 --clients=8
//              --cache-pages=12000 --requests=200000 --format=json
//   clic_serve --trace=DB2_C60 --policy=LRU --shards=2 --clients=2
//              --deterministic --verify
//
// --deterministic runs the single-consumer mode whose hit counts are
// bit-identical to per-shard sequential Simulate() of the partitioned
// trace; --verify checks exactly that in-process and fails loudly on
// any divergence.
#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "common/cli_util.h"
#include "server/cache_server.h"
#include "sweep/sweep.h"
#include "sweep/trace_cache.h"
#include "workload/scenario.h"
#include "workload/trace_factory.h"

namespace clic::server {
namespace {

constexpr char kProg[] = "clic_serve";

struct CliOptions {
  std::string trace;
  ServerOptions server;
  LoadOptions load;
  bool verify = false;
  std::string cache_dir;       // empty = CLIC_TRACE_CACHE_DIR / default
  std::uint64_t requests = 0;  // 0 = CLIC_BENCH_REQUESTS / default cap
  std::string format = "csv";
  std::string output;  // empty = stdout
};

void Usage(std::FILE* out) {
  std::fprintf(
      out,
      "Usage: clic_serve --trace=NAME | --workload=SPEC [flags]\n"
      "\n"
      "Workload:\n"
      "  --trace=NAME       named trace to replay (see --list)\n"
      "  --workload=SPEC    synthetic scenario: a preset name or inline\n"
      "                     spec like 'zipf:pages=120000,theta=0.9'\n"
      "                     (see --list; workload/scenario.h has the\n"
      "                     grammar). Alias of --trace — both accept\n"
      "                     every workload token; give exactly one.\n"
      "  --requests=N       request budget (overrides CLIC_BENCH_REQUESTS)\n"
      "  --duration=SEC     run clients for SEC seconds instead of one\n"
      "                     pass (incompatible with --deterministic)\n"
      "  --cache-dir=PATH   trace cache dir (overrides "
      "CLIC_TRACE_CACHE_DIR)\n"
      "\n"
      "Server:\n"
      "  --policy=NAME      shard replacement policy (default LRU; OPT is\n"
      "                     clairvoyant and not servable)\n"
      "  --shards=S         hash shards, each with its own policy "
      "(default 4)\n"
      "  --cache-pages=N    total cache budget, split across shards\n"
      "                     (default 12000)\n"
      "  --clients=C        closed-loop client threads (default 4)\n"
      "  --batch=B          requests per submitted batch (default 64)\n"
      "  --deterministic    single consumer, strict client order: hit\n"
      "                     counts match per-shard sequential Simulate()\n"
      "  --verify           with --deterministic: check that equivalence\n"
      "                     in-process, exit 1 on any mismatch\n"
      "\n"
      "CLIC options (when --policy=CLIC):\n"
      "  --window=W --decay=R --outqueue=N --no-charge-metadata\n"
      "  --tracker=exact|space_saving|lossy_counting --top-k=K\n"
      "\n"
      "Output:\n"
      "  --format=csv|json  summary row (csv) or full object (json)\n"
      "  --output=FILE      default: stdout\n"
      "  --list             print known traces and policies, then exit\n"
      "  --help             this text\n");
}

[[noreturn]] void Die(const std::string& message) { cli::Die(kProg, message); }

void PrintList() {
  std::printf("Traces:");
  for (const NamedTraceInfo& info : NamedTraces()) {
    std::printf(" %s", info.name.c_str());
  }
  std::printf("\nScenario presets:");
  for (const ScenarioPreset& preset : ScenarioPresets()) {
    std::printf(" %s", preset.name);
  }
  std::printf("\nPolicies:");
  for (PolicyKind kind : AllPolicies()) {
    if (kind == PolicyKind::kOpt) continue;  // not servable online
    std::printf(" %s", PolicyName(kind));
  }
  std::printf("\n");
}

CliOptions Parse(int argc, char** argv) {
  CliOptions opts;
  opts.server.shards = 4;
  opts.server.cache_pages = 12'000;
  opts.load.clients = 4;
  opts.load.batch_size = 64;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      Usage(stdout);
      std::exit(0);
    }
    if (arg == "--list") {
      PrintList();
      std::exit(0);
    }
    if (arg == "--deterministic") {
      opts.server.deterministic = true;
      continue;
    }
    if (arg == "--verify") {
      opts.verify = true;
      continue;
    }
    if (arg == "--no-charge-metadata") {
      opts.server.clic.charge_metadata = false;
      continue;
    }
    const std::size_t eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      Die("unrecognized argument '" + arg + "'");
    }
    const std::string key = arg.substr(0, eq);
    const std::string value = arg.substr(eq + 1);
    if (key == "--trace" || key == "--workload") {
      if (!opts.trace.empty()) {
        Die("--trace and --workload are aliases; give exactly one "
            "workload (got '" +
            opts.trace + "' and '" + value + "')");
      }
      cli::RequireKnownWorkload(kProg, key, value);
      opts.trace = value;
    } else if (key == "--policy") {
      opts.server.policy = cli::RequirePolicy(kProg, key, value);
      if (opts.server.policy == PolicyKind::kOpt) {
        Die("--policy=OPT: OPT is clairvoyant and cannot serve an online "
            "stream (valid policies: " +
            cli::KnownPolicyNames() + ", minus OPT)");
      }
    } else if (key == "--shards") {
      const std::uint64_t shards = cli::ParseU64(kProg, key, value);
      if (shards > 4096) Die(key + "='" + value + "' is unreasonably large");
      opts.server.shards = static_cast<std::size_t>(shards);
    } else if (key == "--cache-pages") {
      opts.server.cache_pages =
          static_cast<std::size_t>(cli::ParseU64(kProg, key, value));
    } else if (key == "--clients") {
      const std::uint64_t clients = cli::ParseU64(kProg, key, value);
      if (clients > 4096) Die(key + "='" + value + "' is unreasonably large");
      opts.load.clients = static_cast<std::size_t>(clients);
    } else if (key == "--batch") {
      opts.load.batch_size =
          static_cast<std::size_t>(cli::ParseU64(kProg, key, value));
    } else if (key == "--requests") {
      opts.requests = cli::ParseU64(kProg, key, value);
    } else if (key == "--duration") {
      opts.load.duration_seconds = cli::ParseDouble(kProg, key, value);
    } else if (key == "--cache-dir") {
      opts.cache_dir = value;
    } else if (key == "--window") {
      opts.server.clic.window = cli::ParseU64(kProg, key, value);
    } else if (key == "--decay") {
      opts.server.clic.decay = cli::ParseDouble(kProg, key, value);
    } else if (key == "--outqueue") {
      opts.server.clic.outqueue_per_page = cli::ParseDouble(kProg, key, value);
    } else if (key == "--top-k") {
      opts.server.clic.top_k =
          static_cast<std::size_t>(cli::ParseU64(kProg, key, value));
    } else if (key == "--tracker") {
      if (value == "exact") {
        opts.server.clic.tracker = TrackerKind::kExact;
      } else if (value == "space_saving") {
        opts.server.clic.tracker = TrackerKind::kSpaceSaving;
      } else if (value == "lossy_counting") {
        opts.server.clic.tracker = TrackerKind::kLossyCounting;
      } else {
        Die("unknown --tracker='" + value +
            "' (valid: exact, space_saving, lossy_counting)");
      }
    } else if (key == "--format") {
      if (value != "csv" && value != "json") {
        Die("unknown --format='" + value + "' (want csv or json)");
      }
      opts.format = value;
    } else if (key == "--output") {
      opts.output = value;
    } else {
      Die("unrecognized flag '" + key + "'");
    }
  }
  if (opts.trace.empty()) {
    Die("--trace (or --workload) is required (valid traces: " +
        cli::KnownWorkloadNames() + ")");
  }
  if (opts.verify && !opts.server.deterministic) {
    Die("--verify requires --deterministic (concurrent interleaving is "
        "timing-dependent by design)");
  }
  if (opts.server.deterministic && opts.load.duration_seconds > 0.0) {
    Die("--deterministic and --duration are incompatible: duration mode "
        "replays in wall-clock order");
  }
  return opts;
}

using sweep::AppendDouble;

SimResult AsSimResult(const ServeResult& result) {
  SimResult sim;
  sim.total = result.total;
  sim.per_client = result.per_client;
  return sim;
}

std::string CsvSummaryHeader() {
  return "trace,policy,shards,clients,cache_pages,pages_per_shard,batch,"
         "deterministic,requests,batches,shard_drains,avg_drained_batch,"
         "reads,writes,read_hits,write_hits,"
         "read_hit_ratio,write_hit_ratio,wall_seconds,throughput_rps,p50_us,"
         "p99_us,per_client";
}

std::string CsvSummaryRow(const CliOptions& opts, const ServeResult& r,
                          std::size_t pages_per_shard) {
  std::string out;
  out.append(sweep::CsvField(opts.trace));
  out.push_back(',');
  out.append(sweep::CsvField(PolicyName(opts.server.policy)));
  out.push_back(',');
  out.append(std::to_string(opts.server.shards));
  out.push_back(',');
  out.append(std::to_string(opts.load.clients));
  out.push_back(',');
  out.append(std::to_string(opts.server.cache_pages));
  out.push_back(',');
  out.append(std::to_string(pages_per_shard));
  out.push_back(',');
  out.append(std::to_string(opts.load.batch_size));
  out.push_back(',');
  out.append(opts.server.deterministic ? "1" : "0");
  out.push_back(',');
  out.append(std::to_string(r.requests));
  out.push_back(',');
  out.append(std::to_string(r.batches));
  out.push_back(',');
  out.append(std::to_string(r.shard_drains));
  out.push_back(',');
  AppendDouble(&out, r.avg_drained_batch);
  out.push_back(',');
  out.append(std::to_string(r.total.reads));
  out.push_back(',');
  out.append(std::to_string(r.total.writes));
  out.push_back(',');
  out.append(std::to_string(r.total.read_hits));
  out.push_back(',');
  out.append(std::to_string(r.total.write_hits));
  out.push_back(',');
  AppendDouble(&out, r.total.ReadHitRatio());
  out.push_back(',');
  AppendDouble(&out, r.total.WriteHitRatio());
  out.push_back(',');
  AppendDouble(&out, r.wall_seconds);
  out.push_back(',');
  AppendDouble(&out, r.throughput_rps);
  out.push_back(',');
  AppendDouble(&out, r.p50_us);
  out.push_back(',');
  AppendDouble(&out, r.p99_us);
  out.push_back(',');
  out.append(sweep::CsvField(sweep::PerClientColumn(AsSimResult(r))));
  return out;
}

std::string JsonSummary(const CliOptions& opts, const ServeResult& r,
                        std::size_t pages_per_shard) {
  std::string out = "{\"trace\":\"";
  out.append(sweep::JsonEscaped(opts.trace));
  out.append("\",\"policy\":\"");
  out.append(sweep::JsonEscaped(PolicyName(opts.server.policy)));
  out.append("\",\"shards\":");
  out.append(std::to_string(opts.server.shards));
  out.append(",\"clients\":");
  out.append(std::to_string(opts.load.clients));
  out.append(",\"cache_pages\":");
  out.append(std::to_string(opts.server.cache_pages));
  out.append(",\"pages_per_shard\":");
  out.append(std::to_string(pages_per_shard));
  out.append(",\"batch\":");
  out.append(std::to_string(opts.load.batch_size));
  out.append(",\"deterministic\":");
  out.append(opts.server.deterministic ? "true" : "false");
  out.append(",\"requests\":");
  out.append(std::to_string(r.requests));
  out.append(",\"batches\":");
  out.append(std::to_string(r.batches));
  out.append(",\"shard_drains\":");
  out.append(std::to_string(r.shard_drains));
  out.append(",\"avg_drained_batch\":");
  AppendDouble(&out, r.avg_drained_batch);
  out.append(",\"reads\":");
  out.append(std::to_string(r.total.reads));
  out.append(",\"writes\":");
  out.append(std::to_string(r.total.writes));
  out.append(",\"read_hits\":");
  out.append(std::to_string(r.total.read_hits));
  out.append(",\"write_hits\":");
  out.append(std::to_string(r.total.write_hits));
  out.append(",\"read_hit_ratio\":");
  AppendDouble(&out, r.total.ReadHitRatio());
  out.append(",\"write_hit_ratio\":");
  AppendDouble(&out, r.total.WriteHitRatio());
  out.append(",\"wall_seconds\":");
  AppendDouble(&out, r.wall_seconds);
  out.append(",\"throughput_rps\":");
  AppendDouble(&out, r.throughput_rps);
  out.append(",\"p50_us\":");
  AppendDouble(&out, r.p50_us);
  out.append(",\"p99_us\":");
  AppendDouble(&out, r.p99_us);
  out.append(",\"per_shard\":[");
  for (std::size_t s = 0; s < r.per_shard.size(); ++s) {
    if (s > 0) out.push_back(',');
    const CacheStats& stats = r.per_shard[s];
    out.append("{\"reads\":");
    out.append(std::to_string(stats.reads));
    out.append(",\"writes\":");
    out.append(std::to_string(stats.writes));
    out.append(",\"read_hits\":");
    out.append(std::to_string(stats.read_hits));
    out.append(",\"write_hits\":");
    out.append(std::to_string(stats.write_hits));
    out.append("}");
  }
  out.append("],\"per_client\":{");
  bool first = true;
  for (const auto& [client, stats] : r.per_client) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out.append(std::to_string(client));
    out.append("\":{\"reads\":");
    out.append(std::to_string(stats.reads));
    out.append(",\"read_hits\":");
    out.append(std::to_string(stats.read_hits));
    out.append(",\"writes\":");
    out.append(std::to_string(stats.writes));
    out.append(",\"write_hits\":");
    out.append(std::to_string(stats.write_hits));
    out.append("}");
  }
  out.append("}}");
  return out;
}

bool SameStats(const CacheStats& a, const CacheStats& b) {
  return a.reads == b.reads && a.writes == b.writes &&
         a.read_hits == b.read_hits && a.write_hits == b.write_hits;
}

void PrintStatsPair(const std::string& what, const CacheStats& served,
                    const CacheStats& expected) {
  auto line = [&what](const char* tag, const CacheStats& s) {
    std::fprintf(stderr,
                 "clic_serve:   %s %s reads=%llu writes=%llu read_hits=%llu "
                 "write_hits=%llu\n",
                 what.c_str(), tag, static_cast<unsigned long long>(s.reads),
                 static_cast<unsigned long long>(s.writes),
                 static_cast<unsigned long long>(s.read_hits),
                 static_cast<unsigned long long>(s.write_hits));
  };
  line("served  ", served);
  line("expected", expected);
}

int Verify(const ServeResult& served, const SimResult& expected) {
  bool ok = true;
  if (!SameStats(served.total, expected.total)) {
    ok = false;
    std::fprintf(stderr,
                 "clic_serve: VERIFY FAILED — aggregate counts diverged from "
                 "per-shard sequential Simulate():\n");
    PrintStatsPair("total", served.total, expected.total);
  }
  // Name the exact client (or field) that diverged: an aggregate match
  // with a per-client mismatch is the subtle failure mode this check
  // exists to expose.
  for (const auto& [client, stats] : expected.per_client) {
    const auto it = served.per_client.find(client);
    if (it == served.per_client.end()) {
      ok = false;
      std::fprintf(stderr,
                   "clic_serve: VERIFY FAILED — client %u missing from "
                   "served per-client stats\n",
                   static_cast<unsigned>(client));
    } else if (!SameStats(stats, it->second)) {
      ok = false;
      std::fprintf(stderr,
                   "clic_serve: VERIFY FAILED — client %u counts diverged:\n",
                   static_cast<unsigned>(client));
      PrintStatsPair("client", it->second, stats);
    }
  }
  for (const auto& [client, stats] : served.per_client) {
    if (expected.per_client.find(client) == expected.per_client.end()) {
      ok = false;
      std::fprintf(stderr,
                   "clic_serve: VERIFY FAILED — served stats contain "
                   "unexpected client %u (%llu requests)\n",
                   static_cast<unsigned>(client),
                   static_cast<unsigned long long>(stats.reads + stats.writes));
    }
  }
  if (!ok) return 1;
  std::fprintf(stderr,
               "clic_serve: verify OK — aggregate and per-client hit counts "
               "bit-identical to per-shard sequential Simulate()\n");
  return 0;
}

int Main(int argc, char** argv) {
  const CliOptions opts = Parse(argc, argv);

  const std::string dir =
      opts.cache_dir.empty() ? sweep::CacheDirFromEnv() : opts.cache_dir;
  const std::uint64_t cap =
      opts.requests > 0 ? opts.requests : sweep::RequestCapFromEnv();
  sweep::TraceCache cache(dir, cap);
  const Trace& trace = cache.Get(opts.trace);

  LoadOptions load = opts.load;
  load.request_budget = cap;

  std::FILE* out = stdout;
  if (!opts.output.empty()) {
    out = std::fopen(opts.output.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "clic_serve: cannot open '%s': %s\n",
                   opts.output.c_str(), std::strerror(errno));
      return 1;
    }
  }

  const std::size_t pages_per_shard =
      ShardCachePages(opts.server.cache_pages, opts.server.shards);
  std::fprintf(stderr,
               "clic_serve: %s via %s, %zu shards x %zu pages, %zu clients, "
               "batch %zu, %s\n",
               opts.trace.c_str(), PolicyName(opts.server.policy),
               opts.server.shards, pages_per_shard, opts.load.clients,
               opts.load.batch_size,
               opts.server.deterministic ? "deterministic" : "concurrent");

  ServeResult result;
  try {
    result = ServeTrace(trace, opts.server, load);
  } catch (const std::invalid_argument& e) {
    Die(e.what());
  }

  int exit_code = 0;
  if (opts.verify) {
    exit_code = Verify(result, PartitionedSimulate(trace, opts.server, cap));
  }

  if (opts.format == "csv") {
    std::fprintf(out, "%s\n%s\n", CsvSummaryHeader().c_str(),
                 CsvSummaryRow(opts, result, pages_per_shard).c_str());
  } else {
    std::fprintf(out, "%s\n",
                 JsonSummary(opts, result, pages_per_shard).c_str());
  }
  bool write_ok = std::ferror(out) == 0;
  if (out != stdout) {
    write_ok = std::fclose(out) == 0 && write_ok;
  } else {
    write_ok = std::fflush(out) == 0 && write_ok;
  }
  if (!write_ok) {
    std::fprintf(stderr, "clic_serve: error writing %s: %s\n",
                 opts.output.empty() ? "stdout" : opts.output.c_str(),
                 std::strerror(errno));
    return 1;
  }
  std::fprintf(stderr,
               "clic_serve: %llu requests in %.3fs (%.0f req/s), p50 %.1fus "
               "p99 %.1fus, avg drained batch %.1f\n",
               static_cast<unsigned long long>(result.requests),
               result.wall_seconds, result.throughput_rps, result.p50_us,
               result.p99_us, result.avg_drained_batch);
  return exit_code;
}

}  // namespace
}  // namespace clic::server

int main(int argc, char** argv) { return clic::server::Main(argc, argv); }
