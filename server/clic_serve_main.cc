// clic_serve: drive the sharded online cache server with closed-loop
// clients replaying a named trace, and report throughput, batch latency
// percentiles, and hit statistics.
//
//   clic_serve --trace=DB2_C60 --policy=CLIC --shards=4 --clients=8
//              --cache-pages=12000 --requests=200000 --format=json
//   clic_serve --trace=DB2_C60 --policy=LRU --shards=2 --clients=2
//              --deterministic --verify
//
// --deterministic runs the single-consumer mode whose hit counts are
// bit-identical to per-shard sequential Simulate() of the partitioned
// trace; --verify checks exactly that in-process and fails loudly on
// any divergence.
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>

#include "common/cli_util.h"
#include "server/cache_server.h"
#include "server/net/net_server.h"
#include "server/net/wire_client.h"
#include "sweep/sweep.h"
#include "sweep/trace_cache.h"
#include "workload/scenario.h"
#include "workload/trace_factory.h"

namespace clic::server {
namespace {

constexpr char kProg[] = "clic_serve";

struct CliOptions {
  std::string trace;
  ServerOptions server;
  LoadOptions load;
  bool verify = false;
  std::string cache_dir;       // empty = CLIC_TRACE_CACHE_DIR / default
  std::uint64_t requests = 0;  // 0 = CLIC_BENCH_REQUESTS / default cap
  std::string format = "csv";
  std::string output;  // empty = stdout
  /// Parsed --fault-plan; server.fault points here when one was given
  /// (CliOptions is copied once out of Parse, so the pointer is wired
  /// up in Main after the copy settles).
  fault::FaultPlan fault_plan;
  bool has_fault_plan = false;

  // ---- network front end (server/net/) ----
  bool listen = false;   // standalone wire server until SIGTERM/SIGINT
  bool connect = false;  // loopback: in-process wire server + wire drivers
  std::string listen_addr = "127.0.0.1";
  std::uint16_t port = 0;       // 0 = ephemeral
  unsigned io_threads = 1;
  std::size_t conn_limit = 0;   // 0 = auto (clients / 64)
  double read_timeout_ms = 0.0;
};

void Usage(std::FILE* out) {
  std::fprintf(
      out,
      "Usage: clic_serve --trace=NAME | --workload=SPEC [flags]\n"
      "\n"
      "Workload:\n"
      "  --trace=NAME       named trace to replay (see --list)\n"
      "  --workload=SPEC    synthetic scenario: a preset name or inline\n"
      "                     spec like 'zipf:pages=120000,theta=0.9'\n"
      "                     (see --list; workload/scenario.h has the\n"
      "                     grammar). Alias of --trace — both accept\n"
      "                     every workload token; give exactly one.\n"
      "  --requests=N       request budget (overrides CLIC_BENCH_REQUESTS)\n"
      "  --duration=SEC     run clients for SEC seconds instead of one\n"
      "                     pass (incompatible with --deterministic)\n"
      "  --cache-dir=PATH   trace cache dir (overrides "
      "CLIC_TRACE_CACHE_DIR)\n"
      "\n"
      "Server:\n"
      "  --policy=NAME      shard replacement policy (default LRU; OPT is\n"
      "                     clairvoyant and not servable)\n"
      "  --shards=S         hash shards, each with its own policy "
      "(default 4)\n"
      "  --cache-pages=N    total cache budget, split across shards\n"
      "                     (default 12000)\n"
      "  --clients=C        closed-loop client threads (default 4)\n"
      "  --batch=B          requests per submitted batch (default 64)\n"
      "  --consumers=K      owning-consumer (core) threads; each consumer\n"
      "                     owns a disjoint set of shards. 0 = auto\n"
      "                     (min(shards, hardware cores)). Must be\n"
      "                     <= shards; forced to 1 by --deterministic\n"
      "  --owned-shards=A   stripe | block: how shards map to owning\n"
      "                     consumers (default stripe)\n"
      "  --ring-capacity=N  per-(client,consumer) SPSC ring capacity in\n"
      "                     batches; a power of two >= 2 (default 256)\n"
      "  --deterministic    single consumer, strict client order: hit\n"
      "                     counts match per-shard sequential Simulate()\n"
      "  --verify           with --deterministic: check that equivalence\n"
      "                     in-process, exit 1 on any mismatch (with a\n"
      "                     shedding fault plan, the baseline excludes\n"
      "                     the deterministically shed batches)\n"
      "\n"
      "Overload resilience (all off by default):\n"
      "  --queue-cap=N      max pending batches per client queue\n"
      "  --admission=P      block | deadline | shed: producer behaviour\n"
      "                     at a full queue (deadline needs\n"
      "                     --submit-timeout-ms)\n"
      "  --submit-timeout-ms=F  wait bound for --admission=deadline\n"
      "  --deadline-ms=F    drop batches older than this at drain time\n"
      "                     instead of serving them stale\n"
      "  --watchdog-ms=F    shed batches routed at a shard whose\n"
      "                     in-flight drain exceeds this threshold\n"
      "  --fault-plan=SPEC  deterministic fault injection, e.g.\n"
      "                     'stall:shard=0,after=10,drains=5,ms=50;\n"
      "                     shed:every=7;seed=42' (grammar in\n"
      "                     server/fault_injection.h)\n"
      "\n"
      "Network front end (server/net/ wire protocol over epoll):\n"
      "  --listen[=ADDR]    serve the wire protocol on ADDR (default\n"
      "                     127.0.0.1) until SIGTERM/SIGINT, then drain\n"
      "                     gracefully (in-flight frames -> `stopped`)\n"
      "  --connect          loopback mode: start an in-process wire server\n"
      "                     on an ephemeral port and replay the workload\n"
      "                     through real sockets; with --deterministic\n"
      "                     --verify this is the wire-level correctness\n"
      "                     gate\n"
      "  --port=N           TCP port for --listen (0..65535; 0 = "
      "ephemeral)\n"
      "  --io-threads=N     connection threads (must be 1 with\n"
      "                     --deterministic)\n"
      "  --conn-limit=N     connection table bound == server client ports\n"
      "                     (default: clients for --connect, 64 for\n"
      "                     --listen); a full table sheds at accept time\n"
      "  --read-timeout-ms=F  evict a connection whose partial frame is\n"
      "                     older than this (slowloris guard)\n"
      "\n"
      "CLIC options (when --policy=CLIC):\n"
      "  --window=W --decay=R --outqueue=N --no-charge-metadata\n"
      "  --tracker=exact|space_saving|lossy_counting --top-k=K\n"
      "  --adaptive-window --churn-threshold=S (in [0, 1])\n"
      "  --min-window=N --max-window=N  effective-window bounds\n"
      "                     (defaults: window/16 and window; see\n"
      "                     DESIGN.md \"Adaptive windowing\")\n"
      "\n"
      "Output:\n"
      "  --format=csv|json  summary row (csv) or full object (json)\n"
      "  --output=FILE      default: stdout\n"
      "  --list             print known traces and policies, then exit\n"
      "  --help             this text\n");
}

[[noreturn]] void Die(const std::string& message) { cli::Die(kProg, message); }

void PrintList() {
  std::printf("Traces:");
  for (const NamedTraceInfo& info : NamedTraces()) {
    std::printf(" %s", info.name.c_str());
  }
  std::printf("\nScenario presets:");
  for (const ScenarioPreset& preset : ScenarioPresets()) {
    std::printf(" %s", preset.name);
  }
  std::printf("\nPolicies:");
  for (PolicyKind kind : AllPolicies()) {
    if (kind == PolicyKind::kOpt) continue;  // not servable online
    std::printf(" %s", PolicyName(kind));
  }
  std::printf("\n");
}

CliOptions Parse(int argc, char** argv) {
  CliOptions opts;
  bool net_tuning = false;  // any of --port/--io-threads/--conn-limit/...
  opts.server.shards = 4;
  opts.server.cache_pages = 12'000;
  opts.load.clients = 4;
  opts.load.batch_size = 64;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      Usage(stdout);
      std::exit(0);
    }
    if (arg == "--list") {
      PrintList();
      std::exit(0);
    }
    if (arg == "--deterministic") {
      opts.server.deterministic = true;
      continue;
    }
    if (arg == "--listen") {
      opts.listen = true;
      continue;
    }
    if (arg == "--connect") {
      opts.connect = true;
      continue;
    }
    if (arg == "--verify") {
      opts.verify = true;
      continue;
    }
    if (arg == "--no-charge-metadata") {
      opts.server.clic.charge_metadata = false;
      continue;
    }
    if (arg == "--adaptive-window") {
      opts.server.clic.adaptive_window = true;
      continue;
    }
    const std::size_t eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      Die("unrecognized argument '" + arg + "'");
    }
    const std::string key = arg.substr(0, eq);
    const std::string value = arg.substr(eq + 1);
    if (key == "--trace" || key == "--workload") {
      if (!opts.trace.empty()) {
        Die("--trace and --workload are aliases; give exactly one "
            "workload (got '" +
            opts.trace + "' and '" + value + "')");
      }
      cli::RequireKnownWorkload(kProg, key, value);
      opts.trace = value;
    } else if (key == "--policy") {
      opts.server.policy = cli::RequirePolicy(kProg, key, value);
      if (opts.server.policy == PolicyKind::kOpt) {
        Die("--policy=OPT: OPT is clairvoyant and cannot serve an online "
            "stream (valid policies: " +
            cli::KnownPolicyNames() + ", minus OPT)");
      }
    } else if (key == "--shards") {
      const std::uint64_t shards = cli::ParseU64(kProg, key, value);
      if (shards > 4096) Die(key + "='" + value + "' is unreasonably large");
      opts.server.shards = static_cast<std::size_t>(shards);
    } else if (key == "--cache-pages") {
      opts.server.cache_pages =
          static_cast<std::size_t>(cli::ParseU64(kProg, key, value));
    } else if (key == "--consumers") {
      const std::uint64_t consumers = cli::ParseU64(kProg, key, value);
      if (consumers > 4096) Die(key + "='" + value + "' is unreasonably large");
      opts.server.consumers = static_cast<unsigned>(consumers);
    } else if (key == "--owned-shards") {
      const std::optional<ShardAssignment> assignment =
          ParseShardAssignment(value);
      if (!assignment) {
        Die("unknown --owned-shards='" + value +
            "' (valid: stripe, block)");
      }
      opts.server.assignment = *assignment;
    } else if (key == "--ring-capacity") {
      const std::uint64_t capacity = cli::ParseU64(kProg, key, value);
      if (capacity < 2 || (capacity & (capacity - 1)) != 0) {
        Die("--ring-capacity='" + value +
            "' must be a power of two >= 2 (the ring masks instead of "
            "dividing)");
      }
      opts.server.ring_capacity = static_cast<std::size_t>(capacity);
    } else if (key == "--clients") {
      const std::uint64_t clients = cli::ParseU64(kProg, key, value);
      if (clients > 4096) Die(key + "='" + value + "' is unreasonably large");
      opts.load.clients = static_cast<std::size_t>(clients);
    } else if (key == "--batch") {
      opts.load.batch_size =
          static_cast<std::size_t>(cli::ParseU64(kProg, key, value));
    } else if (key == "--requests") {
      opts.requests = cli::ParseU64(kProg, key, value);
    } else if (key == "--queue-cap") {
      opts.server.queue_cap =
          static_cast<std::size_t>(cli::ParseU64(kProg, key, value));
    } else if (key == "--admission") {
      const std::optional<AdmissionPolicy> policy =
          ParseAdmissionPolicy(value);
      if (!policy) {
        Die("unknown --admission='" + value +
            "' (valid: block, deadline, shed)");
      }
      opts.server.admission = *policy;
    } else if (key == "--submit-timeout-ms") {
      opts.server.submit_timeout_ms = cli::ParseDouble(kProg, key, value);
    } else if (key == "--deadline-ms") {
      opts.server.batch_deadline_ms = cli::ParseDouble(kProg, key, value);
    } else if (key == "--watchdog-ms") {
      opts.server.watchdog_ms = cli::ParseDouble(kProg, key, value);
    } else if (key == "--fault-plan") {
      std::string error;
      if (!fault::ParseFaultPlan(value, &opts.fault_plan, &error)) {
        Die(error);
      }
      opts.has_fault_plan = true;
    } else if (key == "--listen") {
      opts.listen = true;
      opts.listen_addr = value;
    } else if (key == "--port") {
      const std::uint64_t port = cli::ParseU64AllowZero(kProg, key, value);
      if (port > 65535) {
        Die("--port='" + value +
            "' is out of range (TCP ports are 0..65535; 0 binds an "
            "ephemeral port)");
      }
      opts.port = static_cast<std::uint16_t>(port);
      net_tuning = true;
    } else if (key == "--io-threads") {
      const std::uint64_t io = cli::ParseU64(kProg, key, value);
      if (io > 1024) Die(key + "='" + value + "' is unreasonably large");
      opts.io_threads = static_cast<unsigned>(io);
      net_tuning = true;
    } else if (key == "--conn-limit") {
      const std::uint64_t limit = cli::ParseU64(kProg, key, value);
      if (limit > 65536) Die(key + "='" + value + "' is unreasonably large");
      opts.conn_limit = static_cast<std::size_t>(limit);
      net_tuning = true;
    } else if (key == "--read-timeout-ms") {
      opts.read_timeout_ms = cli::ParseDouble(kProg, key, value);
      net_tuning = true;
    } else if (key == "--duration") {
      opts.load.duration_seconds = cli::ParseDouble(kProg, key, value);
    } else if (key == "--cache-dir") {
      opts.cache_dir = value;
    } else if (key == "--window") {
      opts.server.clic.window = cli::ParseU64(kProg, key, value);
    } else if (key == "--churn-threshold") {
      opts.server.clic.churn_threshold = cli::ParseDouble(kProg, key, value);
    } else if (key == "--min-window") {
      opts.server.clic.min_window = cli::ParseU64(kProg, key, value);
    } else if (key == "--max-window") {
      opts.server.clic.max_window = cli::ParseU64(kProg, key, value);
    } else if (key == "--decay") {
      opts.server.clic.decay = cli::ParseDouble(kProg, key, value);
    } else if (key == "--outqueue") {
      opts.server.clic.outqueue_per_page = cli::ParseDouble(kProg, key, value);
    } else if (key == "--top-k") {
      opts.server.clic.top_k =
          static_cast<std::size_t>(cli::ParseU64(kProg, key, value));
    } else if (key == "--tracker") {
      if (value == "exact") {
        opts.server.clic.tracker = TrackerKind::kExact;
      } else if (value == "space_saving") {
        opts.server.clic.tracker = TrackerKind::kSpaceSaving;
      } else if (value == "lossy_counting") {
        opts.server.clic.tracker = TrackerKind::kLossyCounting;
      } else {
        Die("unknown --tracker='" + value +
            "' (valid: exact, space_saving, lossy_counting)");
      }
    } else if (key == "--format") {
      if (value != "csv" && value != "json") {
        Die("unknown --format='" + value + "' (want csv or json)");
      }
      opts.format = value;
    } else if (key == "--output") {
      opts.output = value;
    } else {
      Die("unrecognized flag '" + key + "'");
    }
  }
  if (opts.trace.empty()) {
    Die("--trace (or --workload) is required (valid traces: " +
        cli::KnownWorkloadNames() + ")");
  }
  cli::RequireValidAdaptiveWindow(kProg, opts.server.clic);
  if (opts.verify && !opts.server.deterministic) {
    Die("--verify requires --deterministic (concurrent interleaving is "
        "timing-dependent by design)");
  }
  if (opts.server.deterministic && opts.load.duration_seconds > 0.0) {
    Die("--deterministic and --duration are incompatible: duration mode "
        "replays in wall-clock order");
  }
  if (opts.server.consumers > opts.server.shards) {
    Die("--consumers=" + std::to_string(opts.server.consumers) +
        " exceeds --shards=" + std::to_string(opts.server.shards) +
        " (a consumer must own at least one shard)");
  }
  if (opts.server.deterministic && opts.server.consumers > 1) {
    Die("--deterministic runs exactly one consumer (strict client order); "
        "drop --consumers=" + std::to_string(opts.server.consumers));
  }
  if (opts.server.queue_cap > 0 &&
      opts.server.admission == AdmissionPolicy::kBlockWithDeadline &&
      opts.server.submit_timeout_ms <= 0.0) {
    Die("--admission=deadline requires --submit-timeout-ms > 0 (got " +
        std::to_string(opts.server.submit_timeout_ms) + ")");
  }
  if (opts.listen && opts.connect) {
    Die("--listen and --connect are mutually exclusive: serve remote "
        "clients OR drive a loopback server (valid combinations: "
        "--listen [--port=N], --connect [--deterministic --verify])");
  }
  if (net_tuning && !opts.listen && !opts.connect) {
    Die("--port/--io-threads/--conn-limit/--read-timeout-ms configure the "
        "network front end; add --listen (standalone server) or "
        "--connect (loopback wire serving)");
  }
  if (opts.listen && opts.verify) {
    Die("--verify needs the loopback wire client: --listen serves remote "
        "clients whose stream the in-process verifier cannot replay "
        "(valid combinations: --connect --deterministic --verify for the "
        "wire-level gate, --deterministic --verify for in-process, or "
        "--listen without --verify)");
  }
  if (opts.connect && opts.server.deterministic && opts.io_threads > 1) {
    Die("--deterministic wire serving runs exactly one io thread (slots "
        "are assigned in strict accept order); drop --io-threads=" +
        std::to_string(opts.io_threads));
  }
  if (opts.connect && opts.load.duration_seconds > 0.0) {
    Die("--connect replays one pass over the wire; --duration is not "
        "supported in loopback mode");
  }
  if (opts.connect && opts.conn_limit > 0 &&
      opts.conn_limit < opts.load.clients) {
    Die("--conn-limit=" + std::to_string(opts.conn_limit) +
        " is below --clients=" + std::to_string(opts.load.clients) +
        " (every wire driver holds one connection; the table would shed "
        "drivers at accept time)");
  }
  if (opts.verify) {
    // --verify proves bit-identity against a sequential baseline; these
    // mechanisms are timing-dependent (watchdog, deadlines) or mutate
    // requests (corruption), so no baseline exists for them.
    if (opts.has_fault_plan && opts.fault_plan.HasCorruption()) {
      Die("--verify cannot be combined with a corrupt: fault clause "
          "(corruption mutates served requests, so no fault-free baseline "
          "matches)");
    }
    if (opts.has_fault_plan && opts.fault_plan.net_reset_every > 0) {
      Die("--verify cannot be combined with a net:reset fault clause (a "
          "reset truncates that connection's served stream, so no "
          "baseline matches; torn-write/partial-read/accept-stall only "
          "re-chunk or delay bytes and remain verifiable)");
    }
    if (opts.server.watchdog_ms > 0.0) {
      Die("--verify cannot be combined with --watchdog-ms (watchdog sheds "
          "are wall-clock dependent, so the served set is not "
          "reproducible)");
    }
    if (opts.server.batch_deadline_ms > 0.0) {
      Die("--verify cannot be combined with --deadline-ms (deadline "
          "expiry is wall-clock dependent, so the served set is not "
          "reproducible)");
    }
    if (opts.server.queue_cap > 0 &&
        opts.server.admission != AdmissionPolicy::kBlock) {
      Die("--verify needs --admission=block (shed/deadline admission "
          "makes the served set timing-dependent)");
    }
  }
  return opts;
}

using sweep::AppendDouble;

SimResult AsSimResult(const ServeResult& result) {
  SimResult sim;
  sim.total = result.total;
  sim.per_client = result.per_client;
  return sim;
}

std::string CsvSummaryHeader() {
  return "trace,policy,shards,clients,cache_pages,pages_per_shard,batch,"
         "deterministic,admission,queue_cap,requests,batches,shard_drains,"
         "avg_drained_batch,reads,writes,read_hits,write_hits,"
         "read_hit_ratio,write_hit_ratio,submitted_requests,shed_requests,"
         "timed_out_requests,expired_requests,quarantined,watchdog_sheds,"
         "wall_seconds,throughput_rps,consumers,cores_detected,per_core_rps,"
         "p50_us,p99_us,per_client";
}

std::string CsvSummaryRow(const CliOptions& opts, const ServeResult& r,
                          std::size_t pages_per_shard) {
  std::string out;
  out.append(sweep::CsvField(opts.trace));
  out.push_back(',');
  out.append(sweep::CsvField(PolicyName(opts.server.policy)));
  out.push_back(',');
  out.append(std::to_string(opts.server.shards));
  out.push_back(',');
  out.append(std::to_string(opts.load.clients));
  out.push_back(',');
  out.append(std::to_string(opts.server.cache_pages));
  out.push_back(',');
  out.append(std::to_string(pages_per_shard));
  out.push_back(',');
  out.append(std::to_string(opts.load.batch_size));
  out.push_back(',');
  out.append(opts.server.deterministic ? "1" : "0");
  out.push_back(',');
  out.append(AdmissionPolicyName(opts.server.admission));
  out.push_back(',');
  out.append(std::to_string(opts.server.queue_cap));
  out.push_back(',');
  out.append(std::to_string(r.requests));
  out.push_back(',');
  out.append(std::to_string(r.batches));
  out.push_back(',');
  out.append(std::to_string(r.shard_drains));
  out.push_back(',');
  AppendDouble(&out, r.avg_drained_batch);
  out.push_back(',');
  out.append(std::to_string(r.total.reads));
  out.push_back(',');
  out.append(std::to_string(r.total.writes));
  out.push_back(',');
  out.append(std::to_string(r.total.read_hits));
  out.push_back(',');
  out.append(std::to_string(r.total.write_hits));
  out.push_back(',');
  AppendDouble(&out, r.total.ReadHitRatio());
  out.push_back(',');
  AppendDouble(&out, r.total.WriteHitRatio());
  out.push_back(',');
  out.append(std::to_string(r.admission.submitted_requests));
  out.push_back(',');
  out.append(std::to_string(r.admission.shed_requests));
  out.push_back(',');
  out.append(std::to_string(r.admission.timed_out_requests));
  out.push_back(',');
  out.append(std::to_string(r.admission.expired_requests));
  out.push_back(',');
  out.append(std::to_string(r.quarantined));
  out.push_back(',');
  out.append(std::to_string(r.watchdog_sheds));
  out.push_back(',');
  AppendDouble(&out, r.wall_seconds);
  out.push_back(',');
  AppendDouble(&out, r.throughput_rps);
  out.push_back(',');
  out.append(std::to_string(r.consumers));
  out.push_back(',');
  out.append(std::to_string(r.cores_detected));
  out.push_back(',');
  AppendDouble(&out, r.throughput_rps /
                         static_cast<double>(std::max(1u, r.consumers)));
  out.push_back(',');
  AppendDouble(&out, r.p50_us);
  out.push_back(',');
  AppendDouble(&out, r.p99_us);
  out.push_back(',');
  out.append(sweep::CsvField(sweep::PerClientColumn(AsSimResult(r))));
  return out;
}

std::string JsonSummary(const CliOptions& opts, const ServeResult& r,
                        std::size_t pages_per_shard) {
  std::string out = "{\"trace\":\"";
  out.append(sweep::JsonEscaped(opts.trace));
  out.append("\",\"policy\":\"");
  out.append(sweep::JsonEscaped(PolicyName(opts.server.policy)));
  out.append("\",\"shards\":");
  out.append(std::to_string(opts.server.shards));
  out.append(",\"clients\":");
  out.append(std::to_string(opts.load.clients));
  out.append(",\"cache_pages\":");
  out.append(std::to_string(opts.server.cache_pages));
  out.append(",\"pages_per_shard\":");
  out.append(std::to_string(pages_per_shard));
  out.append(",\"batch\":");
  out.append(std::to_string(opts.load.batch_size));
  out.append(",\"deterministic\":");
  out.append(opts.server.deterministic ? "true" : "false");
  out.append(",\"admission\":\"");
  out.append(AdmissionPolicyName(opts.server.admission));
  out.append("\",\"queue_cap\":");
  out.append(std::to_string(opts.server.queue_cap));
  out.append(",\"submitted_requests\":");
  out.append(std::to_string(r.admission.submitted_requests));
  out.append(",\"shed_requests\":");
  out.append(std::to_string(r.admission.shed_requests));
  out.append(",\"timed_out_requests\":");
  out.append(std::to_string(r.admission.timed_out_requests));
  out.append(",\"expired_requests\":");
  out.append(std::to_string(r.admission.expired_requests));
  out.append(",\"quarantined\":");
  out.append(std::to_string(r.quarantined));
  out.append(",\"watchdog_sheds\":");
  out.append(std::to_string(r.watchdog_sheds));
  out.append(",\"requests\":");
  out.append(std::to_string(r.requests));
  out.append(",\"batches\":");
  out.append(std::to_string(r.batches));
  out.append(",\"shard_drains\":");
  out.append(std::to_string(r.shard_drains));
  out.append(",\"avg_drained_batch\":");
  AppendDouble(&out, r.avg_drained_batch);
  out.append(",\"reads\":");
  out.append(std::to_string(r.total.reads));
  out.append(",\"writes\":");
  out.append(std::to_string(r.total.writes));
  out.append(",\"read_hits\":");
  out.append(std::to_string(r.total.read_hits));
  out.append(",\"write_hits\":");
  out.append(std::to_string(r.total.write_hits));
  out.append(",\"read_hit_ratio\":");
  AppendDouble(&out, r.total.ReadHitRatio());
  out.append(",\"write_hit_ratio\":");
  AppendDouble(&out, r.total.WriteHitRatio());
  out.append(",\"wall_seconds\":");
  AppendDouble(&out, r.wall_seconds);
  out.append(",\"throughput_rps\":");
  AppendDouble(&out, r.throughput_rps);
  out.append(",\"consumers\":");
  out.append(std::to_string(r.consumers));
  out.append(",\"cores_detected\":");
  out.append(std::to_string(r.cores_detected));
  out.append(",\"per_core_rps\":");
  AppendDouble(&out, r.throughput_rps /
                         static_cast<double>(std::max(1u, r.consumers)));
  out.append(",\"per_consumer_requests\":[");
  for (std::size_t k = 0; k < r.per_consumer_requests.size(); ++k) {
    if (k > 0) out.push_back(',');
    out.append(std::to_string(r.per_consumer_requests[k]));
  }
  out.append("]");
  out.append(",\"p50_us\":");
  AppendDouble(&out, r.p50_us);
  out.append(",\"p99_us\":");
  AppendDouble(&out, r.p99_us);
  out.append(",\"per_shard\":[");
  for (std::size_t s = 0; s < r.per_shard.size(); ++s) {
    if (s > 0) out.push_back(',');
    const CacheStats& stats = r.per_shard[s];
    out.append("{\"reads\":");
    out.append(std::to_string(stats.reads));
    out.append(",\"writes\":");
    out.append(std::to_string(stats.writes));
    out.append(",\"read_hits\":");
    out.append(std::to_string(stats.read_hits));
    out.append(",\"write_hits\":");
    out.append(std::to_string(stats.write_hits));
    out.append("}");
  }
  out.append("],\"per_client\":{");
  bool first = true;
  for (const auto& [client, stats] : r.per_client) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out.append(std::to_string(client));
    out.append("\":{\"reads\":");
    out.append(std::to_string(stats.reads));
    out.append(",\"read_hits\":");
    out.append(std::to_string(stats.read_hits));
    out.append(",\"writes\":");
    out.append(std::to_string(stats.writes));
    out.append(",\"write_hits\":");
    out.append(std::to_string(stats.write_hits));
    out.append("}");
  }
  out.append("}}");
  return out;
}

bool SameStats(const CacheStats& a, const CacheStats& b) {
  return a.reads == b.reads && a.writes == b.writes &&
         a.read_hits == b.read_hits && a.write_hits == b.write_hits;
}

void PrintStatsPair(const std::string& what, const CacheStats& served,
                    const CacheStats& expected) {
  auto line = [&what](const char* tag, const CacheStats& s) {
    std::fprintf(stderr,
                 "clic_serve:   %s %s reads=%llu writes=%llu read_hits=%llu "
                 "write_hits=%llu\n",
                 what.c_str(), tag, static_cast<unsigned long long>(s.reads),
                 static_cast<unsigned long long>(s.writes),
                 static_cast<unsigned long long>(s.read_hits),
                 static_cast<unsigned long long>(s.write_hits));
  };
  line("served  ", served);
  line("expected", expected);
}

int Verify(const ServeResult& served, const SimResult& expected) {
  bool ok = true;
  if (!SameStats(served.total, expected.total)) {
    ok = false;
    std::fprintf(stderr,
                 "clic_serve: VERIFY FAILED — aggregate counts diverged from "
                 "per-shard sequential Simulate():\n");
    PrintStatsPair("total", served.total, expected.total);
  }
  // Name the exact client (or field) that diverged: an aggregate match
  // with a per-client mismatch is the subtle failure mode this check
  // exists to expose.
  for (const auto& [client, stats] : expected.per_client) {
    const auto it = served.per_client.find(client);
    if (it == served.per_client.end()) {
      ok = false;
      std::fprintf(stderr,
                   "clic_serve: VERIFY FAILED — client %u missing from "
                   "served per-client stats\n",
                   static_cast<unsigned>(client));
    } else if (!SameStats(stats, it->second)) {
      ok = false;
      std::fprintf(stderr,
                   "clic_serve: VERIFY FAILED — client %u counts diverged:\n",
                   static_cast<unsigned>(client));
      PrintStatsPair("client", it->second, stats);
    }
  }
  for (const auto& [client, stats] : served.per_client) {
    if (expected.per_client.find(client) == expected.per_client.end()) {
      ok = false;
      std::fprintf(stderr,
                   "clic_serve: VERIFY FAILED — served stats contain "
                   "unexpected client %u (%llu requests)\n",
                   static_cast<unsigned>(client),
                   static_cast<unsigned long long>(stats.reads + stats.writes));
    }
  }
  if (!ok) return 1;
  std::fprintf(stderr,
               "clic_serve: verify OK — aggregate and per-client hit counts "
               "bit-identical to per-shard sequential Simulate()\n");
  return 0;
}

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

void PrintNetStats(const net::NetStats& n) {
  std::fprintf(
      stderr,
      "clic_serve: wire: %llu conns accepted (%llu shed), %llu frames / "
      "%llu requests, %llu rejected frames (%llu requests), evicted "
      "%llu slow readers + %llu slow writers, %llu frames drained to "
      "stopped\n",
      static_cast<unsigned long long>(n.accepted),
      static_cast<unsigned long long>(n.accept_shed),
      static_cast<unsigned long long>(n.frames),
      static_cast<unsigned long long>(n.frame_requests),
      static_cast<unsigned long long>(n.rejected_frames),
      static_cast<unsigned long long>(n.rejected_requests),
      static_cast<unsigned long long>(n.evicted_read),
      static_cast<unsigned long long>(n.evicted_write),
      static_cast<unsigned long long>(n.drained_frames));
  if (n.torn_writes + n.partial_reads + n.resets_injected + n.accept_stalls >
      0) {
    std::fprintf(
        stderr,
        "clic_serve: wire faults fired: %llu torn writes, %llu partial "
        "reads, %llu resets, %llu accept stalls\n",
        static_cast<unsigned long long>(n.torn_writes),
        static_cast<unsigned long long>(n.partial_reads),
        static_cast<unsigned long long>(n.resets_injected),
        static_cast<unsigned long long>(n.accept_stalls));
  }
}

/// Standalone wire server (--listen): serve until SIGTERM/SIGINT, then
/// drain gracefully and report the wire + admission ledgers.
int RunListen(const CliOptions& opts) {
  net::NetServerOptions nopts;
  nopts.listen_addr = opts.listen_addr;
  nopts.port = opts.port;
  nopts.io_threads = opts.io_threads;
  nopts.conn_limit = opts.conn_limit > 0 ? opts.conn_limit : 64;
  nopts.read_timeout_ms = opts.read_timeout_ms;
  nopts.server = opts.server;
  std::unique_ptr<net::NetServer> server;
  try {
    server = std::make_unique<net::NetServer>(nopts);
  } catch (const std::exception& e) {
    Die(e.what());
  }
  std::fprintf(stderr,
               "clic_serve: listening on %s:%u (%u io thread%s, conn limit "
               "%zu); SIGTERM/SIGINT drains\n",
               nopts.listen_addr.c_str(), server->port(), nopts.io_threads,
               nopts.io_threads == 1 ? "" : "s", nopts.conn_limit);
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr, "clic_serve: draining\n");
  server->Drain();
  PrintNetStats(server->Stats());
  const AdmissionStats adm = server->cache().TotalAdmission();
  if (adm.submitted_requests !=
      adm.applied_requests + adm.shed_requests + adm.timed_out_requests +
          adm.expired_requests + adm.stopped_requests) {
    std::fprintf(stderr, "clic_serve: ADMISSION LEDGER BROKEN after drain\n");
    return 1;
  }
  std::fprintf(stderr,
               "clic_serve: drained cleanly; %llu requests applied\n",
               static_cast<unsigned long long>(adm.applied_requests));
  return 0;
}

/// Loopback wire serving (--connect): in-process NetServer on an
/// ephemeral port, ServeTrace-chunked wire drivers through real
/// sockets. Fills *result with the server-side view (wire latencies for
/// p50/p99); returns non-zero if the wire ledger does not balance.
int RunWireServe(const CliOptions& opts, const Trace& trace,
                 std::uint64_t cap, ServeResult* result) {
  net::NetServerOptions nopts;
  nopts.listen_addr = "127.0.0.1";
  nopts.port = 0;
  nopts.io_threads = opts.io_threads;
  nopts.conn_limit = opts.conn_limit > 0
                         ? opts.conn_limit
                         : std::max<std::size_t>(opts.load.clients, 1);
  nopts.read_timeout_ms = opts.read_timeout_ms;
  nopts.max_batch = std::max<std::size_t>(4096, opts.load.batch_size);
  nopts.server = opts.server;
  std::unique_ptr<net::NetServer> server;
  try {
    server = std::make_unique<net::NetServer>(nopts);
  } catch (const std::exception& e) {
    Die(e.what());
  }
  std::fprintf(stderr,
               "clic_serve: loopback wire serving on 127.0.0.1:%u (%u io "
               "thread%s, conn limit %zu)\n",
               server->port(), nopts.io_threads,
               nopts.io_threads == 1 ? "" : "s", nopts.conn_limit);
  net::WireLoadOptions wopts;
  wopts.addr = "127.0.0.1";
  wopts.port = server->port();
  wopts.clients = opts.load.clients;
  wopts.batch_size = opts.load.batch_size;
  wopts.request_budget = cap;
  wopts.deterministic = opts.server.deterministic;
  net::WireLoadResult wire;
  try {
    wire = net::RunWireLoad(trace, wopts);
  } catch (const std::exception& e) {
    Die(e.what());
  }
  server->Drain();
  PrintNetStats(server->Stats());

  // Wire-side ledger: every batch the drivers sent must be accounted
  // for by a status reply or an observed transport loss.
  if (wire.submitted_requests !=
          wire.applied_requests + wire.shed_requests +
              wire.timed_out_requests + wire.expired_requests +
              wire.stopped_requests + wire.conn_lost_requests ||
      wire.submitted_batches !=
          wire.applied_batches + wire.shed_batches + wire.timed_out_batches +
              wire.expired_batches + wire.stopped_batches +
              wire.conn_lost_batches) {
    std::fprintf(
        stderr,
        "clic_serve: WIRE LEDGER BROKEN: submitted=%llu/%llu != "
        "applied=%llu/%llu + shed=%llu/%llu + timed_out=%llu/%llu + "
        "expired=%llu/%llu + stopped=%llu/%llu + conn_lost=%llu/%llu "
        "(batches/requests)\n",
        static_cast<unsigned long long>(wire.submitted_batches),
        static_cast<unsigned long long>(wire.submitted_requests),
        static_cast<unsigned long long>(wire.applied_batches),
        static_cast<unsigned long long>(wire.applied_requests),
        static_cast<unsigned long long>(wire.shed_batches),
        static_cast<unsigned long long>(wire.shed_requests),
        static_cast<unsigned long long>(wire.timed_out_batches),
        static_cast<unsigned long long>(wire.timed_out_requests),
        static_cast<unsigned long long>(wire.expired_batches),
        static_cast<unsigned long long>(wire.expired_requests),
        static_cast<unsigned long long>(wire.stopped_batches),
        static_cast<unsigned long long>(wire.stopped_requests),
        static_cast<unsigned long long>(wire.conn_lost_batches),
        static_cast<unsigned long long>(wire.conn_lost_requests));
    return 1;
  }
  if (wire.wire_errors > 0) {
    std::fprintf(stderr,
                 "clic_serve: wire drivers received %llu typed error "
                 "frame%s\n",
                 static_cast<unsigned long long>(wire.wire_errors),
                 wire.wire_errors == 1 ? "" : "s");
  }

  const CacheServer& cache = server->cache();
  result->total = cache.TotalStats();
  result->per_client = cache.PerClientStats();
  result->per_shard = cache.PerShardStats();
  result->requests = cache.requests_applied();
  result->batches = cache.batches_applied();
  result->shard_drains = cache.shard_drains();
  result->avg_drained_batch =
      result->shard_drains > 0
          ? static_cast<double>(result->requests) /
                static_cast<double>(result->shard_drains)
          : 0.0;
  result->consumers = cache.consumers();
  result->cores_detected = std::thread::hardware_concurrency();
  result->per_consumer_requests = cache.PerConsumerRequests();
  result->admission = cache.TotalAdmission();
  result->quarantined = cache.quarantined();
  result->watchdog_sheds = cache.watchdog_sheds();
  // Wall clock and latency percentiles are the wire-level numbers: what
  // a client sees through real sockets, not the in-process view.
  result->wall_seconds = wire.wall_seconds;
  result->throughput_rps = wire.throughput_rps;
  result->p50_us = wire.p50_us;
  result->p99_us = wire.p99_us;
  return 0;
}

int Main(int argc, char** argv) {
  CliOptions opts = Parse(argc, argv);
  if (opts.has_fault_plan) opts.server.fault = &opts.fault_plan;

  const std::string dir =
      opts.cache_dir.empty() ? sweep::CacheDirFromEnv() : opts.cache_dir;
  const std::uint64_t cap =
      opts.requests > 0 ? opts.requests : sweep::RequestCapFromEnv();
  sweep::TraceCache cache(dir, cap);
  const Trace& trace = cache.Get(opts.trace);

  const std::uint64_t effective =
      cap > 0 ? std::min<std::uint64_t>(trace.size(), cap) : trace.size();
  if (opts.load.batch_size > effective) {
    Die("--batch=" + std::to_string(opts.load.batch_size) +
        " exceeds the request budget of " + std::to_string(effective) +
        " (a batch larger than the whole run is a typo, not a workload)");
  }

  // Hint-sanity guard: every id the trace legitimately uses is below
  // the registry size, so anything >= is corruption and gets
  // quarantined into the reserved untrusted bucket.
  opts.server.hint_bound =
      static_cast<std::uint32_t>(trace.hints ? trace.hints->size() : 0);

  // Standalone wire server: the workload only parameterizes the cache
  // (policy, shards, hint bound); remote clients supply the traffic.
  if (opts.listen) return RunListen(opts);

  LoadOptions load = opts.load;
  load.request_budget = cap;

  std::FILE* out = stdout;
  if (!opts.output.empty()) {
    out = std::fopen(opts.output.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "clic_serve: cannot open '%s': %s\n",
                   opts.output.c_str(), std::strerror(errno));
      return 1;
    }
  }

  const std::size_t pages_per_shard =
      ShardCachePages(opts.server.cache_pages, opts.server.shards);
  std::fprintf(stderr,
               "clic_serve: %s via %s, %zu shards x %zu pages, %zu clients, "
               "batch %zu, %s\n",
               opts.trace.c_str(), PolicyName(opts.server.policy),
               opts.server.shards, pages_per_shard, opts.load.clients,
               opts.load.batch_size,
               opts.server.deterministic ? "deterministic" : "concurrent");

  ServeResult result;
  if (opts.connect) {
    if (RunWireServe(opts, trace, cap, &result) != 0) return 1;
  } else {
    try {
      result = ServeTrace(trace, opts.server, load);
    } catch (const std::invalid_argument& e) {
      Die(e.what());
    }
  }

  // The admission ledger must balance exactly on every run, fault plan
  // or not: a request the server neither applied nor accounted for as
  // rejected is a lost write from the client's point of view.
  const AdmissionStats& adm = result.admission;
  if (adm.submitted_requests !=
          adm.applied_requests + adm.shed_requests + adm.timed_out_requests +
              adm.expired_requests + adm.stopped_requests ||
      adm.submitted_batches !=
          adm.applied_batches + adm.shed_batches + adm.timed_out_batches +
              adm.expired_batches + adm.stopped_batches) {
    std::fprintf(
        stderr,
        "clic_serve: ADMISSION LEDGER BROKEN: submitted=%llu/%llu != "
        "applied=%llu/%llu + shed=%llu/%llu + timed_out=%llu/%llu + "
        "expired=%llu/%llu + stopped=%llu/%llu (batches/requests)\n",
        static_cast<unsigned long long>(adm.submitted_batches),
        static_cast<unsigned long long>(adm.submitted_requests),
        static_cast<unsigned long long>(adm.applied_batches),
        static_cast<unsigned long long>(adm.applied_requests),
        static_cast<unsigned long long>(adm.shed_batches),
        static_cast<unsigned long long>(adm.shed_requests),
        static_cast<unsigned long long>(adm.timed_out_batches),
        static_cast<unsigned long long>(adm.timed_out_requests),
        static_cast<unsigned long long>(adm.expired_batches),
        static_cast<unsigned long long>(adm.expired_requests),
        static_cast<unsigned long long>(adm.stopped_batches),
        static_cast<unsigned long long>(adm.stopped_requests));
    return 1;
  }

  int exit_code = 0;
  if (opts.verify) {
    // With a shedding fault plan, the deterministic baseline is the
    // capped trace minus the deterministically shed batches; non-shed
    // requests must still produce bit-identical decisions.
    if (opts.server.fault != nullptr &&
        opts.server.fault->shed_every > 0) {
      const Trace filtered =
          FilterShedBatches(trace, load, opts.server.fault, cap);
      exit_code = Verify(result, PartitionedSimulate(filtered, opts.server));
    } else {
      exit_code = Verify(result, PartitionedSimulate(trace, opts.server, cap));
    }
  }

  if (opts.format == "csv") {
    std::fprintf(out, "%s\n%s\n", CsvSummaryHeader().c_str(),
                 CsvSummaryRow(opts, result, pages_per_shard).c_str());
  } else {
    std::fprintf(out, "%s\n",
                 JsonSummary(opts, result, pages_per_shard).c_str());
  }
  bool write_ok = std::ferror(out) == 0;
  if (out != stdout) {
    write_ok = std::fclose(out) == 0 && write_ok;
  } else {
    write_ok = std::fflush(out) == 0 && write_ok;
  }
  if (!write_ok) {
    std::fprintf(stderr, "clic_serve: error writing %s: %s\n",
                 opts.output.empty() ? "stdout" : opts.output.c_str(),
                 std::strerror(errno));
    return 1;
  }
  std::fprintf(stderr,
               "clic_serve: %llu requests in %.3fs (%.0f req/s over %u "
               "consumer%s, %.0f req/s/core), p50 %.1fus p99 %.1fus, avg "
               "drained batch %.1f\n",
               static_cast<unsigned long long>(result.requests),
               result.wall_seconds, result.throughput_rps, result.consumers,
               result.consumers == 1 ? "" : "s",
               result.throughput_rps /
                   static_cast<double>(std::max(1u, result.consumers)),
               result.p50_us, result.p99_us, result.avg_drained_batch);
  if (result.admission.shed_requests + result.admission.timed_out_requests +
          result.admission.expired_requests + result.quarantined >
      0) {
    std::fprintf(
        stderr,
        "clic_serve: degraded-mode counters: shed %llu, timed out %llu, "
        "expired %llu requests; quarantined hints %llu; watchdog sheds "
        "%llu batches\n",
        static_cast<unsigned long long>(result.admission.shed_requests),
        static_cast<unsigned long long>(result.admission.timed_out_requests),
        static_cast<unsigned long long>(result.admission.expired_requests),
        static_cast<unsigned long long>(result.quarantined),
        static_cast<unsigned long long>(result.watchdog_sheds));
  }
  return exit_code;
}

}  // namespace
}  // namespace clic::server

int main(int argc, char** argv) { return clic::server::Main(argc, argv); }
