#include "server/cache_server.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "common/fnv1a.h"
#include "common/rng.h"

namespace clic::server {

std::size_t ShardOf(PageId page, std::size_t shards) {
  if (shards <= 1) return 0;
  Fnv1a h;
  h.MixScalar(page);
  return static_cast<std::size_t>(h.value() % shards);
}

std::size_t ShardCachePages(std::size_t total_pages, std::size_t shards) {
  return std::max<std::size_t>(1, total_pages / std::max<std::size_t>(1, shards));
}

std::vector<Trace> PartitionByShard(const Trace& trace, std::size_t shards) {
  std::vector<Trace> parts(std::max<std::size_t>(1, shards));
  for (std::size_t s = 0; s < parts.size(); ++s) {
    parts[s].name = trace.name + "#shard" + std::to_string(s);
    parts[s].hints = std::make_shared<HintRegistry>(*trace.hints);
    parts[s].client_bound = trace.client_bound;  // valid upper bound
  }
  for (const Request& r : trace.requests) {
    parts[ShardOf(r.page, parts.size())].requests.push_back(r);
  }
  return parts;
}

SimResult PartitionedSimulate(const Trace& trace, const ServerOptions& options,
                              std::uint64_t request_budget) {
  Trace capped;
  capped.name = trace.name;
  // Read-only below (PartitionByShard deep-copies per part), so the
  // alias never shares mutable interning state with a writer.
  capped.hints = trace.hints;
  capped.client_bound = trace.client_bound;  // valid upper bound
  const std::uint64_t n =
      request_budget > 0 ? std::min<std::uint64_t>(trace.size(), request_budget)
                         : trace.size();
  capped.requests.assign(trace.requests.begin(),
                         trace.requests.begin() + static_cast<long>(n));
  const std::vector<Trace> parts = PartitionByShard(capped, options.shards);
  const std::size_t pages =
      ShardCachePages(options.cache_pages, options.shards);
  SimResult merged;
  for (const Trace& part : parts) {
    const auto policy =
        MakePolicy(options.policy, pages, /*trace=*/nullptr, options.clic);
    const SimResult shard = Simulate(part, *policy);
    merged.total += shard.total;
    for (const auto& [client, stats] : shard.per_client) {
      merged.per_client[client] += stats;
    }
  }
  return merged;
}

Trace FilterShedBatches(const Trace& trace, const LoadOptions& load,
                        const fault::FaultPlan* plan,
                        std::uint64_t request_budget) {
  Trace out;
  out.name = trace.name;
  out.hints = trace.hints;  // read-only alias, like PartitionedSimulate
  out.client_bound = trace.client_bound;
  const std::uint64_t n =
      request_budget > 0 ? std::min<std::uint64_t>(trace.size(), request_budget)
                         : trace.size();
  const std::uint64_t every = plan != nullptr ? plan->shed_every : 0;
  out.requests.reserve(static_cast<std::size_t>(n));
  const std::uint64_t clients = std::max<std::size_t>(1, load.clients);
  const std::uint64_t batch = std::max<std::size_t>(1, load.batch_size);
  // Mirrors ServeTrace's driver loop exactly: contiguous per-client
  // chunks, fixed batch grid, 1-based per-client submit index.
  for (std::uint64_t c = 0; c < clients; ++c) {
    const std::uint64_t begin = n * c / clients;
    const std::uint64_t end = n * (c + 1) / clients;
    std::uint64_t index = 0;
    for (std::uint64_t pos = begin; pos < end; pos += batch) {
      ++index;
      if (every > 0 && index % every == 0) continue;
      const std::uint64_t count = std::min<std::uint64_t>(batch, end - pos);
      out.requests.insert(
          out.requests.end(), trace.requests.begin() + static_cast<long>(pos),
          trace.requests.begin() + static_cast<long>(pos + count));
    }
  }
  return out;
}

const char* SubmitResultName(SubmitResult r) {
  switch (r) {
    case SubmitResult::kApplied: return "applied";
    case SubmitResult::kEnqueued: return "enqueued";
    case SubmitResult::kShed: return "shed";
    case SubmitResult::kTimedOut: return "timed_out";
    case SubmitResult::kExpired: return "expired";
    case SubmitResult::kStopped: return "stopped";
  }
  return "unknown";
}

const char* AdmissionPolicyName(AdmissionPolicy p) {
  switch (p) {
    case AdmissionPolicy::kBlock: return "block";
    case AdmissionPolicy::kBlockWithDeadline: return "deadline";
    case AdmissionPolicy::kShed: return "shed";
  }
  return "unknown";
}

std::optional<AdmissionPolicy> ParseAdmissionPolicy(const std::string& name) {
  if (name == "block") return AdmissionPolicy::kBlock;
  if (name == "deadline") return AdmissionPolicy::kBlockWithDeadline;
  if (name == "shed") return AdmissionPolicy::kShed;
  return std::nullopt;
}

namespace {

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

CacheServer::CacheServer(const ServerOptions& options, std::size_t num_clients)
    : pages_per_shard_(ShardCachePages(options.cache_pages, options.shards)),
      deterministic_(options.deterministic),
      queue_cap_(options.queue_cap),
      admission_(options.admission),
      submit_timeout_ms_(options.submit_timeout_ms),
      batch_deadline_ms_(options.batch_deadline_ms),
      watchdog_ms_(options.watchdog_ms),
      hint_bound_(options.hint_bound),
      record_drain_latency_(options.record_drain_latency),
      fault_(options.fault) {
  if (options.shards == 0) {
    throw std::invalid_argument("CacheServer: shards must be >= 1");
  }
  if (num_clients == 0) {
    throw std::invalid_argument("CacheServer: need at least one client");
  }
  if (options.policy == PolicyKind::kOpt) {
    throw std::invalid_argument(
        "CacheServer: OPT is clairvoyant and cannot serve an online "
        "request stream");
  }
  if (queue_cap_ > 0 && admission_ == AdmissionPolicy::kBlockWithDeadline &&
      submit_timeout_ms_ <= 0.0) {
    throw std::invalid_argument(
        "CacheServer: admission=deadline needs submit_timeout_ms > 0");
  }
  if (fault_ != nullptr) {
    if (fault_->HasCorruption() && hint_bound_ == 0) {
      throw std::invalid_argument(
          "CacheServer: hint corruption injection requires the hint-sanity "
          "guard (hint_bound > 0) — an unguarded corrupted hint id could "
          "force a gigantic per-hint allocation");
    }
    for (const fault::ShardStall& s : fault_->stalls) {
      if (s.shard >= options.shards) {
        throw std::invalid_argument(
            "CacheServer: fault plan stalls shard " +
            std::to_string(s.shard) + " but the server has only " +
            std::to_string(options.shards) + " shard(s)");
      }
    }
  }
  shards_.reserve(options.shards);
  for (std::size_t s = 0; s < options.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->policy = MakePolicy(options.policy, pages_per_shard_,
                               /*trace=*/nullptr, options.clic);
    shards_.push_back(std::move(shard));
  }
  queues_.reserve(num_clients);
  for (std::size_t c = 0; c < num_clients; ++c) {
    queues_.push_back(std::make_unique<ClientQueue>());
  }
  const unsigned workers =
      deterministic_
          ? 1u
          : std::max(1u, std::min<unsigned>(
                             static_cast<unsigned>(num_clients),
                             options.max_consumers > 0
                                 ? options.max_consumers
                                 : std::max(
                                       1u,
                                       std::thread::hardware_concurrency())));
  scratch_.resize(workers);
  for (Scratch& s : scratch_) s.buckets.resize(shards_.size());
  // Everything above must be in place before the first consumer runs.
  consumers_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    if (deterministic_) {
      consumers_.emplace_back([this] { ConsumeInClientOrder(); });
    } else {
      consumers_.emplace_back([this, w] { ConsumeRoundRobin(w); });
    }
  }
}

CacheServer::~CacheServer() { Shutdown(); }

SubmitResult CacheServer::Admit(ClientQueue& q, Batch* batch) {
  const std::size_t n = batch->n;
  std::unique_lock<std::mutex> lock(q.mu);
  q.adm.submitted_batches += 1;
  q.adm.submitted_requests += n;
  batch->submit_index = ++q.submit_counter;
  if (stop_.load(std::memory_order_relaxed)) {
    q.adm.stopped_batches += 1;
    q.adm.stopped_requests += n;
    return SubmitResult::kStopped;
  }
  // Deterministic overload injection: a pure function of (client,
  // submit index), so a verify run can reconstruct the shed set.
  if (fault_ != nullptr && fault_->shed_every > 0 &&
      batch->submit_index % fault_->shed_every == 0) {
    q.adm.shed_batches += 1;
    q.adm.shed_requests += n;
    return SubmitResult::kShed;
  }
  // Watchdog: shed traffic aimed at a shard whose in-flight drain has
  // been running past the threshold. The page scan runs only on the
  // degraded path (some shard already looked stalled).
  if (watchdog_ms_ > 0.0) {
    const std::int64_t now_ns = NowNs();
    bool any_stalled = false;
    const std::int64_t limit_ns =
        static_cast<std::int64_t>(watchdog_ms_ * 1e6);
    for (const auto& shard : shards_) {
      const std::int64_t busy =
          shard->busy_since_ns.load(std::memory_order_relaxed);
      if (busy != 0 && now_ns - busy > limit_ns) {
        any_stalled = true;
        break;
      }
    }
    if (any_stalled &&
        TouchesStalledShard(batch->requests, n, now_ns)) {
      q.adm.shed_batches += 1;
      q.adm.shed_requests += n;
      watchdog_sheds_.fetch_add(1, std::memory_order_relaxed);
      return SubmitResult::kShed;
    }
  }
  if (queue_cap_ > 0 && q.pending.size() >= queue_cap_) {
    switch (admission_) {
      case AdmissionPolicy::kShed:
        q.adm.shed_batches += 1;
        q.adm.shed_requests += n;
        return SubmitResult::kShed;
      case AdmissionPolicy::kBlock:
        q.space.wait(lock, [this, &q] {
          return q.pending.size() < queue_cap_ ||
                 stop_.load(std::memory_order_relaxed);
        });
        break;
      case AdmissionPolicy::kBlockWithDeadline: {
        const bool got_space = q.space.wait_for(
            lock,
            std::chrono::duration<double, std::milli>(submit_timeout_ms_),
            [this, &q] {
              return q.pending.size() < queue_cap_ ||
                     stop_.load(std::memory_order_relaxed);
            });
        if (!got_space && !stop_.load(std::memory_order_relaxed)) {
          q.adm.timed_out_batches += 1;
          q.adm.timed_out_requests += n;
          return SubmitResult::kTimedOut;
        }
        break;
      }
    }
    if (stop_.load(std::memory_order_relaxed)) {
      q.adm.stopped_batches += 1;
      q.adm.stopped_requests += n;
      return SubmitResult::kStopped;
    }
  }
  if (batch_deadline_ms_ > 0.0) {
    batch->deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               batch_deadline_ms_));
  }
  q.adm.enqueued_batches += 1;
  q.adm.enqueued_requests += n;
  q.pending.push_back(batch);
  lock.unlock();
  q.arrival.notify_all();
  return SubmitResult::kEnqueued;
}

bool CacheServer::TouchesStalledShard(const Request* reqs, std::size_t n,
                                      std::int64_t now_ns) const {
  const std::int64_t limit_ns = static_cast<std::int64_t>(watchdog_ms_ * 1e6);
  // Small fixed bitmap would do, but shards_.size() is tiny and this
  // runs only while a shard is actually wedged.
  std::vector<bool> stalled(shards_.size(), false);
  bool any = false;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::int64_t busy =
        shards_[s]->busy_since_ns.load(std::memory_order_relaxed);
    if (busy != 0 && now_ns - busy > limit_ns) {
      stalled[s] = true;
      any = true;
    }
  }
  if (!any) return false;
  for (std::size_t i = 0; i < n; ++i) {
    if (stalled[ShardOf(reqs[i].page, shards_.size())]) return true;
  }
  return false;
}

SubmitResult CacheServer::Submit(std::size_t client, const Request* requests,
                                 std::size_t n) {
  if (n == 0) return SubmitResult::kApplied;
  Batch batch;
  batch.requests = requests;
  batch.n = n;
  batch.client = static_cast<ClientId>(client);
  ClientQueue& q = *queues_.at(client);
  const SubmitResult admitted = Admit(q, &batch);
  if (admitted != SubmitResult::kEnqueued) return admitted;
  std::unique_lock<std::mutex> lock(q.mu);
  q.done_cv.wait(lock, [&batch] { return batch.done; });
  return batch.result;
}

SubmitResult CacheServer::SubmitAsync(std::size_t client,
                                      const Request* requests, std::size_t n) {
  if (n == 0) return SubmitResult::kEnqueued;
  ClientQueue& q = *queues_.at(client);
  auto* batch = new Batch;
  batch->owned.assign(requests, requests + n);
  batch->requests = batch->owned.data();
  batch->n = n;
  batch->client = static_cast<ClientId>(client);
  batch->async = true;
  const SubmitResult admitted = Admit(q, batch);
  if (admitted != SubmitResult::kEnqueued) delete batch;
  return admitted;
}

void CacheServer::Finish(std::size_t client) {
  ClientQueue& q = *queues_.at(client);
  {
    std::lock_guard<std::mutex> lock(q.mu);
    q.eos = true;
  }
  q.arrival.notify_all();
}

void CacheServer::Shutdown() {
  if (joined_) return;
  joined_ = true;
  for (std::thread& t : consumers_) t.join();
}

void CacheServer::Stop() {
  stop_.store(true, std::memory_order_seq_cst);
  for (auto& qp : queues_) {
    // Empty critical section: any waiter that re-checks its predicate
    // after this point holds the mutex and therefore observes stop_.
    { std::lock_guard<std::mutex> lock(qp->mu); }
    qp->arrival.notify_all();
    qp->space.notify_all();
    qp->done_cv.notify_all();
  }
  Shutdown();
}

void CacheServer::CompleteBatch(ClientQueue& q, Batch* batch,
                                SubmitResult result) {
  const bool async = batch->async;
  const std::size_t n = batch->n;
  {
    std::lock_guard<std::mutex> lock(q.mu);
    switch (result) {
      case SubmitResult::kApplied:
        q.adm.applied_batches += 1;
        q.adm.applied_requests += n;
        break;
      case SubmitResult::kExpired:
        q.adm.expired_batches += 1;
        q.adm.expired_requests += n;
        break;
      case SubmitResult::kStopped:
        q.adm.stopped_batches += 1;
        q.adm.stopped_requests += n;
        break;
      default:
        assert(false && "CompleteBatch: not a completion result");
        break;
    }
    batch->result = result;
    batch->done = true;
  }
  q.done_cv.notify_all();
  if (async) delete batch;
}

void CacheServer::AbortPending(ClientQueue& q) {
  for (;;) {
    Batch* batch = nullptr;
    {
      std::lock_guard<std::mutex> lock(q.mu);
      if (q.pending.empty()) break;
      batch = q.pending.front();
      q.pending.pop_front();
    }
    CompleteBatch(q, batch, SubmitResult::kStopped);
  }
  q.space.notify_all();
}

void CacheServer::StallIfPlanned(Shard& shard, std::size_t shard_index) {
  for (const fault::ShardStall& s : fault_->stalls) {
    if (s.shard != shard_index) continue;
    if (shard.drains < s.after_drain ||
        shard.drains >= s.after_drain + s.drains) {
      continue;
    }
    // Sleep in 1ms slices so Stop() never waits out a long stall.
    double remaining_ms = s.ms;
    while (remaining_ms > 0.0 && !stop_.load(std::memory_order_relaxed)) {
      const double slice = std::min(remaining_ms, 1.0);
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(slice));
      remaining_ms -= slice;
    }
  }
}

void CacheServer::PauseIfPlanned(std::size_t consumer_index,
                                 Scratch& scratch) {
  for (const fault::ConsumerPause& p : fault_->pauses) {
    if (p.consumer != consumer_index) continue;
    if (scratch.batches_processed < p.after_batch ||
        scratch.batches_processed >= p.after_batch + p.batches) {
      continue;
    }
    double remaining_ms = p.ms;
    while (remaining_ms > 0.0 && !stop_.load(std::memory_order_relaxed)) {
      const double slice = std::min(remaining_ms, 1.0);
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(slice));
      remaining_ms -= slice;
    }
  }
}

const Request* CacheServer::PrepareRequests(Scratch& scratch,
                                            const Batch& batch,
                                            std::uint64_t* quarantined_out) {
  const Request* reqs = batch.requests;
  bool mutated = false;
  if (fault_ != nullptr && fault_->corrupt_every > 0 &&
      batch.submit_index % fault_->corrupt_every == 0) {
    scratch.mutated.assign(reqs, reqs + batch.n);
    // Per-batch seeding: the same (plan seed, client, submit index)
    // always flips the same bits, so corruption replays bit-identically
    // no matter how drains interleave.
    Fnv1a mix;
    mix.MixScalar(fault_->seed);
    mix.MixScalar(batch.client);
    mix.MixScalar(batch.submit_index);
    Rng rng(mix.value());
    for (std::uint32_t f = 0; f < fault_->corrupt_flips; ++f) {
      Request& victim = scratch.mutated[rng.Below(batch.n)];
      victim.hint_set ^= 1u << rng.Below(32);
    }
    reqs = scratch.mutated.data();
    mutated = true;
  }
  std::uint64_t bad = 0;
  if (hint_bound_ > 0) {
    for (std::size_t i = 0; i < batch.n; ++i) {
      bad += reqs[i].hint_set >= hint_bound_ ? 1 : 0;
    }
    if (bad > 0) {
      if (!mutated) {
        scratch.mutated.assign(reqs, reqs + batch.n);
        reqs = scratch.mutated.data();
        mutated = true;
      }
      for (std::size_t i = 0; i < batch.n; ++i) {
        if (scratch.mutated[i].hint_set >= hint_bound_) {
          // Quarantine: the reserved untrusted bucket, one past every
          // legitimate id. The policy sees a well-formed hint set whose
          // priority reflects the untrusted traffic's own behaviour;
          // within its rank bucket, eviction order is LRU.
          scratch.mutated[i].hint_set = hint_bound_;
        }
      }
    }
  }
  *quarantined_out = bad;
  return reqs;
}

void CacheServer::ApplyBatch(std::size_t consumer_index, Batch& batch) {
  Scratch& scratch = scratch_[consumer_index];
  std::uint64_t quarantined = 0;
  const Request* requests = PrepareRequests(scratch, batch, &quarantined);
  // The hit buffer is (re)sized outside any shard lock; AccessBatch
  // itself never allocates.
  if (scratch.hits.size() < batch.n) scratch.hits.resize(batch.n);
  std::uint8_t* const hits = scratch.hits.data();
  const bool count_quarantine = quarantined > 0;

  auto apply_range = [this, hits, count_quarantine](
                         Shard& shard, std::size_t shard_index,
                         const Request* reqs, std::size_t count) {
    std::lock_guard<std::mutex> lock(shard.mu);
#ifndef NDEBUG
    assert(!shard.entered && "two consumers inside one shard's policy");
    shard.entered = true;
#endif
    const std::int64_t drain_start_ns = NowNs();
    // Published before any injected stall so the watchdog sees the full
    // in-flight time of a wedged drain.
    shard.busy_since_ns.store(drain_start_ns, std::memory_order_relaxed);
    if (fault_ != nullptr && fault_->HasStalls()) {
      StallIfPlanned(shard, shard_index);
    }
    // One virtual dispatch per drained run — the whole reason the drain
    // loop gathers contiguous per-shard request spans.
    shard.policy->AccessBatch(reqs, shard.seq, count, hits);
    shard.seq += count;
    for (std::size_t i = 0; i < count; ++i) {
      const Request& r = reqs[i];
      if (r.client >= shard.client_stats.size()) {
        shard.client_stats.resize(static_cast<std::size_t>(r.client) + 1);
      }
      shard.client_stats[r.client].Record(r, hits[i] != 0);
    }
    if (count_quarantine) {
      // Only remapped requests carry the reserved id, so this recovers
      // the per-shard quarantine attribution without a second pass on
      // the trusted fast path.
      for (std::size_t i = 0; i < count; ++i) {
        shard.quarantined += reqs[i].hint_set == hint_bound_ ? 1 : 0;
      }
    }
    shard.requests += count;
    ++shard.drains;
    if (record_drain_latency_) {
      shard.drain_us.push_back(static_cast<double>(NowNs() - drain_start_ns) /
                               1e3);
    }
    shard.busy_since_ns.store(0, std::memory_order_relaxed);
#ifndef NDEBUG
    shard.entered = false;
#endif
  };

  if (shards_.size() == 1) {
    apply_range(*shards_[0], 0, requests, batch.n);
  } else {
    auto& buckets = scratch.buckets;
    for (auto& b : buckets) b.clear();
    for (std::size_t i = 0; i < batch.n; ++i) {
      buckets[ShardOf(requests[i].page, shards_.size())].push_back(
          requests[i]);
    }
    for (std::size_t s = 0; s < buckets.size(); ++s) {
      if (buckets[s].empty()) continue;
      apply_range(*shards_[s], s, buckets[s].data(), buckets[s].size());
    }
  }
  batches_applied_.fetch_add(1, std::memory_order_relaxed);
}

void CacheServer::ConsumeRoundRobin(std::size_t consumer_index) {
  const std::size_t workers = scratch_.size();
  Scratch& scratch = scratch_[consumer_index];
  std::vector<std::size_t> mine;
  for (std::size_t c = consumer_index; c < queues_.size(); c += workers) {
    mine.push_back(c);
  }
  std::vector<bool> drained(mine.size(), false);
  std::size_t remaining = mine.size();
  while (remaining > 0 && !stop_.load(std::memory_order_relaxed)) {
    bool progress = false;
    for (std::size_t i = 0; i < mine.size(); ++i) {
      if (drained[i]) continue;
      ClientQueue& q = *queues_[mine[i]];
      Batch* batch = nullptr;
      {
        std::lock_guard<std::mutex> lock(q.mu);
        if (!q.pending.empty()) {
          batch = q.pending.front();
          q.pending.pop_front();
        } else if (q.eos) {
          drained[i] = true;
          --remaining;
          continue;
        }
      }
      if (batch != nullptr) {
        q.space.notify_one();  // one queue slot freed at pop time
        if (fault_ != nullptr && fault_->HasPauses()) {
          PauseIfPlanned(consumer_index, scratch);
        }
        SubmitResult outcome = SubmitResult::kApplied;
        if (batch->deadline != Clock::time_point{} &&
            Clock::now() > batch->deadline) {
          outcome = SubmitResult::kExpired;  // stale: drop, don't serve
        } else {
          ApplyBatch(consumer_index, *batch);
        }
        ++scratch.batches_processed;
        CompleteBatch(q, batch, outcome);
        progress = true;
      }
    }
    if (!progress && remaining > 0) {
      // All live queues momentarily empty: nap on the first one. The
      // timeout keeps this a polling loop across *several* queues while
      // still reacting within a millisecond to a quiet period ending.
      for (std::size_t i = 0; i < mine.size(); ++i) {
        if (drained[i]) continue;
        ClientQueue& q = *queues_[mine[i]];
        std::unique_lock<std::mutex> lock(q.mu);
        q.arrival.wait_for(lock, std::chrono::milliseconds(1), [this, &q] {
          return !q.pending.empty() || q.eos ||
                 stop_.load(std::memory_order_relaxed);
        });
        break;
      }
    }
  }
  if (stop_.load(std::memory_order_relaxed)) {
    // Discard everything still queued for my clients, with exact
    // accounting; producers blocked on done_cv wake with kStopped.
    for (std::size_t c : mine) AbortPending(*queues_[c]);
  }
}

void CacheServer::ConsumeInClientOrder() {
  // Strict client order: the per-shard request sequence is then the
  // shard-filtered concatenation of client streams, which is what the
  // determinism guarantee (see header) promises.
  Scratch& scratch = scratch_[0];
  bool stopping = false;
  for (std::size_t c = 0; c < queues_.size() && !stopping; ++c) {
    ClientQueue& q = *queues_[c];
    for (;;) {
      Batch* batch = nullptr;
      {
        std::unique_lock<std::mutex> lock(q.mu);
        q.arrival.wait(lock, [this, &q] {
          return !q.pending.empty() || q.eos ||
                 stop_.load(std::memory_order_relaxed);
        });
        if (stop_.load(std::memory_order_relaxed)) {
          stopping = true;
          break;
        }
        if (!q.pending.empty()) {
          batch = q.pending.front();
          q.pending.pop_front();
        } else {
          break;  // eos and empty: this client's stream is complete
        }
      }
      q.space.notify_one();
      if (fault_ != nullptr && fault_->HasPauses()) {
        PauseIfPlanned(0, scratch);
      }
      SubmitResult outcome = SubmitResult::kApplied;
      if (batch->deadline != Clock::time_point{} &&
          Clock::now() > batch->deadline) {
        outcome = SubmitResult::kExpired;
      } else {
        ApplyBatch(0, *batch);
      }
      ++scratch.batches_processed;
      CompleteBatch(q, batch, outcome);
    }
  }
  if (stopping) {
    for (auto& qp : queues_) AbortPending(*qp);
  }
}

CacheStats CacheServer::TotalStats() const {
  CacheStats total;
  for (const auto& shard : shards_) {
    for (const CacheStats& c : shard->client_stats) total += c;
  }
  return total;
}

std::map<ClientId, CacheStats> CacheServer::PerClientStats() const {
  std::map<ClientId, CacheStats> merged;
  for (const auto& shard : shards_) {
    for (std::size_t c = 0; c < shard->client_stats.size(); ++c) {
      const CacheStats& stats = shard->client_stats[c];
      if (stats.reads + stats.writes == 0) continue;
      merged[static_cast<ClientId>(c)] += stats;
    }
  }
  return merged;
}

std::vector<CacheStats> CacheServer::PerShardStats() const {
  std::vector<CacheStats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    CacheStats total;
    for (const CacheStats& c : shard->client_stats) total += c;
    out.push_back(total);
  }
  return out;
}

std::uint64_t CacheServer::requests_applied() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->requests;
  return total;
}

std::uint64_t CacheServer::batches_applied() const {
  return batches_applied_.load(std::memory_order_relaxed);
}

std::uint64_t CacheServer::shard_drains() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->drains;
  return total;
}

AdmissionStats CacheServer::TotalAdmission() const {
  AdmissionStats total;
  for (const auto& qp : queues_) {
    std::lock_guard<std::mutex> lock(qp->mu);
    total += qp->adm;
  }
  return total;
}

std::vector<AdmissionStats> CacheServer::PerClientAdmission() const {
  std::vector<AdmissionStats> out;
  out.reserve(queues_.size());
  for (const auto& qp : queues_) {
    std::lock_guard<std::mutex> lock(qp->mu);
    out.push_back(qp->adm);
  }
  return out;
}

std::uint64_t CacheServer::quarantined() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->quarantined;
  return total;
}

std::uint64_t CacheServer::watchdog_sheds() const {
  return watchdog_sheds_.load(std::memory_order_relaxed);
}

std::vector<double> CacheServer::DrainLatenciesUs() const {
  std::vector<double> merged;
  for (const auto& shard : shards_) {
    merged.insert(merged.end(), shard->drain_us.begin(),
                  shard->drain_us.end());
  }
  std::sort(merged.begin(), merged.end());
  return merged;
}

namespace {

double PercentileUs(const std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  const std::size_t rank = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(sorted_us.size() - 1),
                       q * static_cast<double>(sorted_us.size() - 1)));
  return sorted_us[rank];
}

}  // namespace

ServeResult ServeTrace(const Trace& trace, const ServerOptions& options,
                       const LoadOptions& load) {
  if (load.clients == 0) {
    throw std::invalid_argument("ServeTrace: need at least one client");
  }
  if (load.batch_size == 0) {
    throw std::invalid_argument("ServeTrace: batch_size must be >= 1");
  }
  if (options.deterministic && load.duration_seconds > 0.0) {
    throw std::invalid_argument(
        "ServeTrace: duration mode replays chunks in wall-clock order and "
        "cannot be deterministic");
  }
  std::uint64_t n = trace.size();
  if (load.request_budget > 0) n = std::min<std::uint64_t>(n, load.request_budget);

  CacheServer server(options, load.clients);
  const std::size_t clients = load.clients;
  std::vector<std::vector<double>> latencies_us(clients);
  std::vector<ClientLoadStats> driver_stats(clients);

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> drivers;
  drivers.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    drivers.emplace_back([&, c] {
      // Contiguous chunk so client streams concatenate to the capped
      // trace (the determinism rule depends on this layout).
      const std::uint64_t begin = n * c / clients;
      const std::uint64_t end = n * (c + 1) / clients;
      std::vector<double>& lat = latencies_us[c];
      ClientLoadStats& stats = driver_stats[c];
      const bool timed = load.duration_seconds > 0.0;
      bool first_pass = true;
      bool out_of_time = false;
      bool stopped = false;
      do {
        for (std::uint64_t pos = begin; pos < end; pos += load.batch_size) {
          // The first pass always completes — every request is applied
          // at least once — so the deadline only cuts later passes.
          if (out_of_time && !first_pass) break;
          const std::size_t count = static_cast<std::size_t>(
              std::min<std::uint64_t>(load.batch_size, end - pos));
          const auto t0 = std::chrono::steady_clock::now();
          const SubmitResult outcome =
              server.Submit(c, trace.requests.data() + pos, count);
          const std::chrono::duration<double, std::micro> took =
              std::chrono::steady_clock::now() - t0;
          stats.requests += count;
          ++stats.batches;
          switch (outcome) {
            case SubmitResult::kApplied:
              lat.push_back(took.count());
              break;
            case SubmitResult::kShed:
              ++stats.shed_batches;
              break;
            case SubmitResult::kTimedOut:
              ++stats.timed_out_batches;
              break;
            case SubmitResult::kExpired:
              ++stats.expired_batches;
              break;
            case SubmitResult::kStopped:
              stopped = true;
              break;
            case SubmitResult::kEnqueued:
              break;  // unreachable for closed-loop Submit
          }
          if (stopped) break;
          if (timed) {
            const std::chrono::duration<double> elapsed =
                std::chrono::steady_clock::now() - wall_start;
            out_of_time = elapsed.count() >= load.duration_seconds;
          }
        }
        first_pass = false;
      } while (timed && !out_of_time && !stopped && begin < end);
      server.Finish(c);
    });
  }
  for (std::thread& t : drivers) t.join();
  server.Shutdown();
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;

  ServeResult result;
  result.total = server.TotalStats();
  result.per_client = server.PerClientStats();
  result.per_shard = server.PerShardStats();
  result.requests = server.requests_applied();
  result.batches = server.batches_applied();
  result.shard_drains = server.shard_drains();
  result.avg_drained_batch =
      result.shard_drains > 0
          ? static_cast<double>(result.requests) /
                static_cast<double>(result.shard_drains)
          : 0.0;
  result.admission = server.TotalAdmission();
  result.quarantined = server.quarantined();
  result.watchdog_sheds = server.watchdog_sheds();
  if (options.record_drain_latency) {
    const std::vector<double> drain_us = server.DrainLatenciesUs();
    result.drain_p50_us = PercentileUs(drain_us, 0.50);
    result.drain_p99_us = PercentileUs(drain_us, 0.99);
  }
  result.wall_seconds = wall.count();
  result.throughput_rps =
      wall.count() > 0 ? static_cast<double>(result.requests) / wall.count()
                       : 0.0;
  std::vector<double> all_us;
  for (std::size_t c = 0; c < clients; ++c) {
    std::vector<double>& lat = latencies_us[c];
    std::sort(lat.begin(), lat.end());
    driver_stats[c].p50_us = PercentileUs(lat, 0.50);
    driver_stats[c].p99_us = PercentileUs(lat, 0.99);
    all_us.insert(all_us.end(), lat.begin(), lat.end());
  }
  std::sort(all_us.begin(), all_us.end());
  result.p50_us = PercentileUs(all_us, 0.50);
  result.p99_us = PercentileUs(all_us, 0.99);
  result.per_driver = std::move(driver_stats);
  return result;
}

}  // namespace clic::server
