#include "server/cache_server.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <mutex>
#include <stdexcept>

#include "common/fnv1a.h"
#include "common/rng.h"

namespace clic::server {

std::size_t ShardOf(PageId page, std::size_t shards) {
  if (shards <= 1) return 0;
  Fnv1a h;
  h.MixScalar(page);
  return static_cast<std::size_t>(h.value() % shards);
}

std::size_t ShardCachePages(std::size_t total_pages, std::size_t shards) {
  return std::max<std::size_t>(1, total_pages / std::max<std::size_t>(1, shards));
}

std::vector<Trace> PartitionByShard(const Trace& trace, std::size_t shards) {
  std::vector<Trace> parts(std::max<std::size_t>(1, shards));
  for (std::size_t s = 0; s < parts.size(); ++s) {
    parts[s].name = trace.name + "#shard" + std::to_string(s);
    parts[s].hints = std::make_shared<HintRegistry>(*trace.hints);
    parts[s].client_bound = trace.client_bound;  // valid upper bound
  }
  for (const Request& r : trace.requests) {
    parts[ShardOf(r.page, parts.size())].requests.push_back(r);
  }
  return parts;
}

SimResult PartitionedSimulate(const Trace& trace, const ServerOptions& options,
                              std::uint64_t request_budget) {
  Trace capped;
  capped.name = trace.name;
  // Read-only below (PartitionByShard deep-copies per part), so the
  // alias never shares mutable interning state with a writer.
  capped.hints = trace.hints;
  capped.client_bound = trace.client_bound;  // valid upper bound
  const std::uint64_t n =
      request_budget > 0 ? std::min<std::uint64_t>(trace.size(), request_budget)
                         : trace.size();
  capped.requests.assign(trace.requests.begin(),
                         trace.requests.begin() + static_cast<long>(n));
  const std::vector<Trace> parts = PartitionByShard(capped, options.shards);
  const std::size_t pages =
      ShardCachePages(options.cache_pages, options.shards);
  SimResult merged;
  for (const Trace& part : parts) {
    const auto policy =
        MakePolicy(options.policy, pages, /*trace=*/nullptr, options.clic);
    const SimResult shard = Simulate(part, *policy);
    merged.total += shard.total;
    for (const auto& [client, stats] : shard.per_client) {
      merged.per_client[client] += stats;
    }
  }
  return merged;
}

Trace FilterShedBatches(const Trace& trace, const LoadOptions& load,
                        const fault::FaultPlan* plan,
                        std::uint64_t request_budget) {
  Trace out;
  out.name = trace.name;
  out.hints = trace.hints;  // read-only alias, like PartitionedSimulate
  out.client_bound = trace.client_bound;
  const std::uint64_t n =
      request_budget > 0 ? std::min<std::uint64_t>(trace.size(), request_budget)
                         : trace.size();
  const std::uint64_t every = plan != nullptr ? plan->shed_every : 0;
  out.requests.reserve(static_cast<std::size_t>(n));
  const std::uint64_t clients = std::max<std::size_t>(1, load.clients);
  const std::uint64_t batch = std::max<std::size_t>(1, load.batch_size);
  // Mirrors ServeTrace's driver loop exactly: contiguous per-client
  // chunks, fixed batch grid, 1-based per-client submit index.
  for (std::uint64_t c = 0; c < clients; ++c) {
    const std::uint64_t begin = n * c / clients;
    const std::uint64_t end = n * (c + 1) / clients;
    std::uint64_t index = 0;
    for (std::uint64_t pos = begin; pos < end; pos += batch) {
      ++index;
      if (every > 0 && index % every == 0) continue;
      const std::uint64_t count = std::min<std::uint64_t>(batch, end - pos);
      out.requests.insert(
          out.requests.end(), trace.requests.begin() + static_cast<long>(pos),
          trace.requests.begin() + static_cast<long>(pos + count));
    }
  }
  return out;
}

const char* SubmitResultName(SubmitResult r) {
  switch (r) {
    case SubmitResult::kApplied: return "applied";
    case SubmitResult::kEnqueued: return "enqueued";
    case SubmitResult::kShed: return "shed";
    case SubmitResult::kTimedOut: return "timed_out";
    case SubmitResult::kExpired: return "expired";
    case SubmitResult::kStopped: return "stopped";
  }
  return "unknown";
}

const char* AdmissionPolicyName(AdmissionPolicy p) {
  switch (p) {
    case AdmissionPolicy::kBlock: return "block";
    case AdmissionPolicy::kBlockWithDeadline: return "deadline";
    case AdmissionPolicy::kShed: return "shed";
  }
  return "unknown";
}

std::optional<AdmissionPolicy> ParseAdmissionPolicy(const std::string& name) {
  if (name == "block") return AdmissionPolicy::kBlock;
  if (name == "deadline") return AdmissionPolicy::kBlockWithDeadline;
  if (name == "shed") return AdmissionPolicy::kShed;
  return std::nullopt;
}

const char* ShardAssignmentName(ShardAssignment a) {
  switch (a) {
    case ShardAssignment::kStripe: return "stripe";
    case ShardAssignment::kBlock: return "block";
  }
  return "unknown";
}

std::optional<ShardAssignment> ParseShardAssignment(const std::string& name) {
  if (name == "stripe") return ShardAssignment::kStripe;
  if (name == "block") return ShardAssignment::kBlock;
  return std::nullopt;
}

namespace {

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

CacheServer::CacheServer(const ServerOptions& options, std::size_t num_clients)
    : pages_per_shard_(ShardCachePages(options.cache_pages, options.shards)),
      deterministic_(options.deterministic),
      ring_capacity_(options.ring_capacity),
      queue_cap_(options.queue_cap),
      admission_(options.admission),
      submit_timeout_ms_(options.submit_timeout_ms),
      batch_deadline_ms_(options.batch_deadline_ms),
      watchdog_ms_(options.watchdog_ms),
      hint_bound_(options.hint_bound),
      record_drain_latency_(options.record_drain_latency),
      fault_(options.fault) {
  if (options.shards == 0) {
    throw std::invalid_argument("CacheServer: shards must be >= 1");
  }
  if (num_clients == 0) {
    throw std::invalid_argument("CacheServer: need at least one client");
  }
  if (options.policy == PolicyKind::kOpt) {
    throw std::invalid_argument(
        "CacheServer: OPT is clairvoyant and cannot serve an online "
        "request stream");
  }
  if (options.consumers > options.shards) {
    throw std::invalid_argument(
        "CacheServer: consumers=" + std::to_string(options.consumers) +
        " exceeds shards=" + std::to_string(options.shards) +
        " — a consumer owning zero shards would idle forever");
  }
  if (deterministic_ && options.consumers > 1) {
    throw std::invalid_argument(
        "CacheServer: deterministic mode runs exactly one consumer, got "
        "consumers=" + std::to_string(options.consumers));
  }
  if (ring_capacity_ < 2 ||
      (ring_capacity_ & (ring_capacity_ - 1)) != 0) {
    throw std::invalid_argument(
        "CacheServer: ring_capacity must be a power of two >= 2, got " +
        std::to_string(ring_capacity_));
  }
  if (queue_cap_ > 0 && admission_ == AdmissionPolicy::kBlockWithDeadline &&
      submit_timeout_ms_ <= 0.0) {
    throw std::invalid_argument(
        "CacheServer: admission=deadline needs submit_timeout_ms > 0");
  }
  if (fault_ != nullptr) {
    if (fault_->HasCorruption() && hint_bound_ == 0) {
      throw std::invalid_argument(
          "CacheServer: hint corruption injection requires the hint-sanity "
          "guard (hint_bound > 0) — an unguarded corrupted hint id could "
          "force a gigantic per-hint allocation");
    }
    for (const fault::ShardStall& s : fault_->stalls) {
      if (s.shard >= options.shards) {
        throw std::invalid_argument(
            "CacheServer: fault plan stalls shard " +
            std::to_string(s.shard) + " but the server has only " +
            std::to_string(options.shards) + " shard(s)");
      }
    }
  }
  shards_.reserve(options.shards);
  for (std::size_t s = 0; s < options.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    // No consumer thread exists yet; the constructing thread is the
    // owner of every shard it builds.
    shard->ownership.AssertHeld();
    shard->policy = MakePolicy(options.policy, pages_per_shard_,
                               /*trace=*/nullptr, options.clic);
    shards_.push_back(std::move(shard));
  }
  // Ownership topology: a static disjoint partition of shards over
  // consumers, fixed for the server's lifetime — the serialization the
  // shard mutex used to provide.
  unsigned workers = 1;
  if (deterministic_) {
    workers = 1;
  } else if (options.consumers > 0) {
    workers = options.consumers;
  } else {
    const unsigned cap = options.max_consumers > 0
                             ? options.max_consumers
                             : std::max(1u, std::thread::hardware_concurrency());
    workers = static_cast<unsigned>(
        std::min<std::size_t>(shards_.size(), std::max(1u, cap)));
  }
  owner_of_.resize(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    owner_of_[s] =
        options.assignment == ShardAssignment::kStripe
            ? static_cast<std::uint32_t>(s % workers)
            // Balanced contiguous blocks; floor(s*W/S) hits every
            // consumer at least once when W <= S.
            : static_cast<std::uint32_t>(s * workers / shards_.size());
  }
  consumers_.reserve(workers);
  for (unsigned k = 0; k < workers; ++k) {
    consumers_.push_back(std::make_unique<Consumer>());
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    consumers_[owner_of_[s]]->owned.push_back(s);
  }
  ports_.reserve(num_clients);
  for (std::size_t c = 0; c < num_clients; ++c) {
    auto port = std::make_unique<ClientPort>();
    port->rings.reserve(workers);
    for (unsigned k = 0; k < workers; ++k) {
      port->rings.push_back(
          std::make_unique<SpscRing<Batch*>>(ring_capacity_));
    }
    ports_.push_back(std::move(port));
  }
  // Everything above must be in place before the first consumer runs.
  threads_.reserve(workers);
  for (unsigned k = 0; k < workers; ++k) {
    if (deterministic_) {
      threads_.emplace_back([this] { ConsumeInClientOrder(); });
    } else {
      threads_.emplace_back([this, k] { ConsumeOwned(k); });
    }
  }
}

CacheServer::~CacheServer() { Shutdown(); }

void CacheServer::RouteBatch(ClientPort& port, Batch* batch,
                             const Request* requests, std::size_t n) {
  const std::size_t S = shards_.size();
  const Request* src = requests;
  bool mutated = false;
  // Corruption injection, applied over the ORIGINAL batch order with a
  // per-batch (plan seed, client, submit index) RNG, so the same flips
  // land on the same requests no matter how drains interleave — replay
  // stays bit-identical. Flips touch hint_set only, never the page, so
  // shard routing below is unaffected.
  if (fault_ != nullptr && fault_->corrupt_every > 0 &&
      batch->submit_index % fault_->corrupt_every == 0) {
    port.staging.assign(requests, requests + n);
    Fnv1a mix;
    mix.MixScalar(fault_->seed);
    mix.MixScalar(batch->client);
    mix.MixScalar(batch->submit_index);
    Rng rng(mix.value());
    for (std::uint32_t f = 0; f < fault_->corrupt_flips; ++f) {
      Request& victim = port.staging[rng.Below(n)];
      victim.hint_set ^= 1u << rng.Below(32);
    }
    src = port.staging.data();
    mutated = true;
  }
  // Hint-sanity quarantine: remap out-of-range hint ids to the reserved
  // untrusted bucket before the batch reaches any policy. The policy
  // sees a well-formed hint set whose priority reflects the untrusted
  // traffic's own behaviour; within its rank bucket eviction is LRU.
  batch->has_quarantine = false;
  if (hint_bound_ > 0) {
    std::size_t bad = 0;
    for (std::size_t i = 0; i < n; ++i) {
      bad += src[i].hint_set >= hint_bound_ ? 1 : 0;
    }
    if (bad > 0) {
      if (!mutated) {
        port.staging.assign(src, src + n);
        src = port.staging.data();
        mutated = true;
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (port.staging[i].hint_set >= hint_bound_) {
          port.staging[i].hint_set = hint_bound_;
        }
      }
      batch->has_quarantine = true;
    }
  }
  batch->runs.clear();
  if (S == 1) {
    if (mutated || batch->async) {
      batch->routed.assign(src, src + n);
      batch->reqs = batch->routed.data();
    } else {
      // Closed-loop fast path: the caller's buffer outlives Submit, so
      // a single-shard unmutated batch is served zero-copy.
      batch->reqs = src;
    }
    batch->runs.push_back({0, 0, static_cast<std::uint32_t>(n)});
    return;
  }
  // Stable counting sort into shard-ascending runs: ShardOf exactly
  // once per request, here and nowhere else on the serving path.
  auto& ids = port.shard_ids;
  auto& off = port.run_offset;
  ids.resize(n);
  off.assign(S, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t s =
        static_cast<std::uint32_t>(ShardOf(src[i].page, S));
    ids[i] = s;
    ++off[s];
  }
  batch->routed.resize(n);
  std::uint32_t total = 0;
  for (std::size_t s = 0; s < S; ++s) {
    const std::uint32_t count = off[s];
    off[s] = total;
    if (count > 0) {
      batch->runs.push_back({static_cast<std::uint32_t>(s), total, count});
    }
    total += count;
  }
  for (std::size_t i = 0; i < n; ++i) {
    batch->routed[off[ids[i]]++] = src[i];
  }
  batch->reqs = batch->routed.data();
}

bool CacheServer::TouchesStalledShard(const Batch& batch,
                                      std::int64_t now_ns) const {
  const std::int64_t limit_ns = static_cast<std::int64_t>(watchdog_ms_ * 1e6);
  // O(runs), using the shard ids computed at routing — no page rescan.
  for (const ShardRun& run : batch.runs) {
    const std::int64_t busy =
        shards_[run.shard]->busy_since_ns.load(std::memory_order_relaxed);
    if (busy != 0 && now_ns - busy > limit_ns) return true;
  }
  return false;
}

SubmitResult CacheServer::Admit(ClientPort& port, Batch* batch,
                                const Request* requests, std::size_t n) {
  port.adm.submitted_batches += 1;
  port.adm.submitted_requests += n;
  batch->n = n;
  batch->submit_index = ++port.submit_counter;
  if (stop_.load(std::memory_order_acquire)) {
    port.adm.stopped_batches += 1;
    port.adm.stopped_requests += n;
    return SubmitResult::kStopped;
  }
  // Deterministic overload injection: a pure function of (client,
  // submit index), so a verify run can reconstruct the shed set.
  if (fault_ != nullptr && fault_->shed_every > 0 &&
      batch->submit_index % fault_->shed_every == 0) {
    port.adm.shed_batches += 1;
    port.adm.shed_requests += n;
    return SubmitResult::kShed;
  }
  RouteBatch(port, batch, requests, n);
  // Watchdog: shed traffic aimed at a shard whose in-flight drain has
  // been running past the threshold.
  if (watchdog_ms_ > 0.0 && TouchesStalledShard(*batch, NowNs())) {
    port.adm.shed_batches += 1;
    port.adm.shed_requests += n;
    watchdog_sheds_.fetch_add(1, std::memory_order_relaxed);
    return SubmitResult::kShed;
  }
  // The batch's slices go to the consumers owning its runs' shards.
  port.targets.clear();
  for (const ShardRun& run : batch->runs) {
    const std::size_t owner = owner_of_[run.shard];
    bool seen = false;
    for (std::size_t t : port.targets) {
      if (t == owner) { seen = true; break; }
    }
    if (!seen) port.targets.push_back(owner);
  }
  // All-or-nothing space reservation: the depth cap plus a free slot in
  // EVERY target ring. Both are monotone from this producer's view
  // (only this thread adds load for this client; consumers only free),
  // so once true it stays true through the pushes below.
  const auto space_ok = [this, &port] {
    if (queue_cap_ > 0 &&
        port.queued.load(std::memory_order_seq_cst) >= queue_cap_) {
      return false;
    }
    for (std::size_t t : port.targets) {
      if (port.rings[t]->FreeSlots() == 0) return false;
    }
    return true;
  };
  if (!space_ok()) {
    const bool cap_full =
        queue_cap_ > 0 &&
        port.queued.load(std::memory_order_seq_cst) >= queue_cap_;
    if (admission_ == AdmissionPolicy::kShed && cap_full) {
      port.adm.shed_batches += 1;
      port.adm.shed_requests += n;
      return SubmitResult::kShed;
    }
    // Slow control path: park on the space CV. The space_waiter flag +
    // seq_cst fence pair with the consumer's post-free fence/load so a
    // wakeup can never be missed (see NoteSlicePopped).
    // clic-lint: begin-allow(no-mutex-data-path) reason=full-queue admission wait; reached only when space_ok() already failed
    {
      std::unique_lock<std::mutex> lock(port.mu.native());
      port.space_waiter.store(true, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      bool satisfied = true;
      const auto pred = [this, &space_ok] {
        return space_ok() || stop_.load(std::memory_order_acquire);
      };
      if (admission_ == AdmissionPolicy::kBlockWithDeadline &&
          queue_cap_ > 0) {
        satisfied = port.space_cv.wait_for(
            lock,
            std::chrono::duration<double, std::milli>(submit_timeout_ms_),
            pred);
      } else {
        port.space_cv.wait(lock, pred);
      }
      port.space_waiter.store(false, std::memory_order_relaxed);
      if (!satisfied && !stop_.load(std::memory_order_acquire)) {
        port.adm.timed_out_batches += 1;
        port.adm.timed_out_requests += n;
        return SubmitResult::kTimedOut;
      }
    }
    // clic-lint: end-allow(no-mutex-data-path)
    if (stop_.load(std::memory_order_acquire)) {
      port.adm.stopped_batches += 1;
      port.adm.stopped_requests += n;
      return SubmitResult::kStopped;
    }
  }
  batch->deadline = Clock::time_point{};
  if (batch_deadline_ms_ > 0.0) {
    batch->deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               batch_deadline_ms_));
  }
  const auto slices = static_cast<std::uint32_t>(port.targets.size());
  batch->unpopped.store(slices, std::memory_order_relaxed);
  batch->pending.store(slices, std::memory_order_relaxed);
  batch->fail_bits.store(0, std::memory_order_relaxed);
  batch->done.store(false, std::memory_order_relaxed);
  batch->waiting.store(false, std::memory_order_relaxed);
  batch->result = SubmitResult::kApplied;
  // Push phase, guarded by the submitting flag: Stop()'s final drain
  // spins this flag out after raising stop_, so either we observe stop_
  // here (and nothing is pushed) or every push below lands before the
  // drain pass runs.
  port.submitting.store(true, std::memory_order_seq_cst);
  if (stop_.load(std::memory_order_seq_cst)) {
    port.submitting.store(false, std::memory_order_release);
    port.adm.stopped_batches += 1;
    port.adm.stopped_requests += n;
    return SubmitResult::kStopped;
  }
  port.adm.enqueued_batches += 1;
  port.adm.enqueued_requests += n;
  port.queued.fetch_add(1, std::memory_order_seq_cst);
  for (std::size_t t : port.targets) {
    const bool pushed = port.rings[t]->TryPush(batch);
    // space_ok reserved a slot in every target ring and only this
    // thread pushes to them, so this cannot fail.
    assert(pushed);
    if (!pushed) std::abort();
  }
  port.submitting.store(false, std::memory_order_release);
  for (std::size_t t : port.targets) WakeConsumer(t);
  return SubmitResult::kEnqueued;
}

SubmitResult CacheServer::WaitDone(ClientPort& port, Batch& batch) {
  // Spin briefly (with yields so a 1-core box schedules the consumer),
  // then park on the control path.
  for (int spin = 0; spin < 1024; ++spin) {
    if (batch.done.load(std::memory_order_acquire)) return batch.result;
    if (spin >= 64) std::this_thread::yield();
  }
  // clic-lint: begin-allow(no-mutex-data-path) reason=post-spin completion parking; reached only after the 1024-iteration spin failed
  std::unique_lock<std::mutex> lock(port.mu.native());
  // clic-lint: end-allow(no-mutex-data-path)
  batch.waiting.store(true, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  port.done_cv.wait(lock, [&batch] {
    return batch.done.load(std::memory_order_acquire);
  });
  batch.waiting.store(false, std::memory_order_relaxed);
  return batch.result;
}

SubmitResult CacheServer::Submit(std::size_t client, const Request* requests,
                                 std::size_t n) {
  if (n == 0) return SubmitResult::kApplied;
  ClientPort& port = *ports_.at(client);
  Batch& batch = port.sync_batch;
  batch.client = static_cast<ClientId>(client);
  batch.async = false;
  // By the threading contract this thread IS the client's one producer.
  port.producer.Acquire();
  const SubmitResult admitted = Admit(port, &batch, requests, n);
  port.producer.Release();
  if (admitted != SubmitResult::kEnqueued) return admitted;
  return WaitDone(port, batch);
}

SubmitResult CacheServer::SubmitAsync(std::size_t client,
                                      const Request* requests, std::size_t n) {
  if (n == 0) return SubmitResult::kEnqueued;
  ClientPort& port = *ports_.at(client);
  auto* batch = new Batch;
  batch->client = static_cast<ClientId>(client);
  batch->async = true;
  port.producer.Acquire();
  const SubmitResult admitted = Admit(port, batch, requests, n);
  port.producer.Release();
  if (admitted != SubmitResult::kEnqueued) delete batch;
  return admitted;
}

void CacheServer::Finish(std::size_t client) {
  ClientPort& port = *ports_.at(client);
  port.eos.store(true, std::memory_order_release);
  for (std::size_t k = 0; k < consumers_.size(); ++k) WakeConsumer(k);
}

void CacheServer::Shutdown() {
  if (joined_) return;
  joined_ = true;
  for (std::thread& t : threads_) t.join();
}

void CacheServer::Stop() {
  stop_.store(true, std::memory_order_seq_cst);
  // clic-lint: begin-allow(no-mutex-data-path) reason=Stop() abort path; not reachable from steady-state serving
  for (auto& pp : ports_) {
    // Empty critical section: any waiter that re-checks its predicate
    // after this point holds the mutex and therefore observes stop_.
    { MutexLock lock(pp->mu); }
    pp->space_cv.notify_all();
    pp->done_cv.notify_all();
  }
  for (auto& cp : consumers_) {
    { MutexLock lock(cp->mu); }
    cp->cv.notify_all();
  }
  // clic-lint: end-allow(no-mutex-data-path)
  Shutdown();
  // Final drain: with consumers joined, every admitted-but-unfinished
  // slice sits in exactly one ring. Quiesce any producer mid-push first
  // (the submitting flag; such a producer saw stop_ false and will
  // complete its pushes promptly), then pop and finish everything as
  // stopped, with exact accounting.
  for (auto& pp : ports_) {
    ClientPort& port = *pp;
    while (port.submitting.load(std::memory_order_seq_cst)) {
      std::this_thread::yield();
    }
    for (auto& ring : port.rings) {
      Batch* batch = nullptr;
      while (ring->TryPop(&batch)) {
        NoteSlicePopped(port, batch);
        FinishSlice(port, batch, kStoppedBit);
      }
    }
  }
}

void CacheServer::NoteSlicePopped(ClientPort& port, Batch* batch) {
  if (batch->unpopped.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  // Last slice popped: the batch no longer counts against the client's
  // depth cap (matching the old queue-depth semantics: cap batches
  // queued plus one in flight per consumer).
  port.queued.fetch_sub(1, std::memory_order_seq_cst);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (port.space_waiter.load(std::memory_order_relaxed)) {
    // clic-lint: begin-allow(no-mutex-data-path) reason=wakes a producer that already parked on the admission CV; skipped entirely unless space_waiter is set
    { MutexLock lock(port.mu); }
    port.space_cv.notify_all();
    // clic-lint: end-allow(no-mutex-data-path)
  }
}

void CacheServer::FinishSlice(ClientPort& port, Batch* batch,
                              std::uint8_t bits) {
  if (bits != 0) batch->fail_bits.fetch_or(bits, std::memory_order_relaxed);
  if (batch->pending.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  // Last finisher resolves the one batch outcome.
  const std::uint8_t fb = batch->fail_bits.load(std::memory_order_relaxed);
  const SubmitResult outcome = (fb & kStoppedBit) != 0
                                   ? SubmitResult::kStopped
                                   : (fb & kExpiredBit) != 0
                                         ? SubmitResult::kExpired
                                         : SubmitResult::kApplied;
  const std::size_t n = batch->n;
  const bool async = batch->async;
  switch (outcome) {
    case SubmitResult::kApplied:
      port.applied_batches.fetch_add(1, std::memory_order_relaxed);
      port.applied_requests.fetch_add(n, std::memory_order_relaxed);
      batches_applied_.fetch_add(1, std::memory_order_relaxed);
      break;
    case SubmitResult::kExpired:
      port.expired_batches.fetch_add(1, std::memory_order_relaxed);
      port.expired_requests.fetch_add(n, std::memory_order_relaxed);
      break;
    default:
      port.stopped_batches.fetch_add(1, std::memory_order_relaxed);
      port.stopped_requests.fetch_add(n, std::memory_order_relaxed);
      break;
  }
  batch->result = outcome;
  if (async) {
    delete batch;
    return;
  }
  batch->done.store(true, std::memory_order_release);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (batch->waiting.load(std::memory_order_relaxed)) {
    // clic-lint: begin-allow(no-mutex-data-path) reason=wakes a producer that already parked after its completion spin; skipped entirely unless waiting is set
    { MutexLock lock(port.mu); }
    port.done_cv.notify_all();
    // clic-lint: end-allow(no-mutex-data-path)
  }
}

void CacheServer::StallIfPlanned(Shard& shard, std::size_t shard_index) {
  for (const fault::ShardStall& s : fault_->stalls) {
    if (s.shard != shard_index) continue;
    if (shard.drains < s.after_drain ||
        shard.drains >= s.after_drain + s.drains) {
      continue;
    }
    // Sleep in 1ms slices so Stop() never waits out a long stall.
    double remaining_ms = s.ms;
    while (remaining_ms > 0.0 && !stop_.load(std::memory_order_relaxed)) {
      const double slice = std::min(remaining_ms, 1.0);
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(slice));
      remaining_ms -= slice;
    }
  }
}

void CacheServer::PauseIfPlanned(std::size_t consumer_index,
                                 std::uint64_t processed) {
  for (const fault::ConsumerPause& p : fault_->pauses) {
    if (p.consumer != consumer_index) continue;
    if (processed < p.after_batch || processed >= p.after_batch + p.batches) {
      continue;
    }
    double remaining_ms = p.ms;
    while (remaining_ms > 0.0 && !stop_.load(std::memory_order_relaxed)) {
      const double slice = std::min(remaining_ms, 1.0);
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(slice));
      remaining_ms -= slice;
    }
  }
}

void CacheServer::ApplySlice(std::size_t k, Consumer& me, Batch& batch) {
  // The hit buffer is (re)sized before touching any shard; AccessBatch
  // itself never allocates.
  if (me.hits.size() < batch.n) me.hits.resize(batch.n);
  std::uint8_t* const hits = me.hits.data();
  const Request* const reqs = batch.reqs;
  for (const ShardRun& run : batch.runs) {
    if (owner_of_[run.shard] != k) continue;
    Shard& shard = *shards_[run.shard];
    // This consumer owns the shard (checked one line up), so it may
    // take the ownership capability for the duration of the run.
    shard.ownership.Acquire();
#ifndef NDEBUG
    // The static ownership partition IS the serialization; this flag
    // would catch a topology bug routing one shard to two consumers.
    // acq_rel: the failing exchange must also observe the other
    // consumer's shard writes, so the assert's diagnosis is coherent.
    const bool reentered =
        shard.entered.exchange(true, std::memory_order_acq_rel);
    assert(!reentered && "two consumers inside one shard's policy");
#endif
    const std::int64_t drain_start_ns = NowNs();
    // Published before any injected stall so the watchdog sees the full
    // in-flight time of a wedged drain.
    shard.busy_since_ns.store(drain_start_ns, std::memory_order_relaxed);
    if (fault_ != nullptr && fault_->HasStalls()) {
      StallIfPlanned(shard, run.shard);
    }
    const Request* const span = reqs + run.offset;
    // One virtual dispatch per drained run — the whole reason routing
    // gathers contiguous per-shard request spans.
    shard.policy->AccessBatch(span, shard.seq, run.count, hits);
    shard.seq += run.count;
    for (std::size_t i = 0; i < run.count; ++i) {
      const Request& r = span[i];
      if (r.client >= shard.client_stats.size()) {
        shard.client_stats.resize(static_cast<std::size_t>(r.client) + 1);
      }
      shard.client_stats[r.client].Record(r, hits[i] != 0);
    }
    if (batch.has_quarantine) {
      // Only remapped requests carry the reserved id, so this recovers
      // the per-shard quarantine attribution without a second pass on
      // the trusted fast path.
      for (std::size_t i = 0; i < run.count; ++i) {
        shard.quarantined += span[i].hint_set == hint_bound_ ? 1 : 0;
      }
    }
    shard.requests += run.count;
    ++shard.drains;
    if (record_drain_latency_) {
      shard.drain_us.push_back(static_cast<double>(NowNs() - drain_start_ns) /
                               1e3);
    }
    shard.busy_since_ns.store(0, std::memory_order_relaxed);
#ifndef NDEBUG
    // release: publishes this run's shard writes to whichever consumer
    // a (buggy) topology would let in next, keeping the assert honest.
    shard.entered.store(false, std::memory_order_release);
#endif
    shard.ownership.Release();
    me.requests += run.count;
  }
}

bool CacheServer::PopAndProcess(std::size_t k, Consumer& me, std::size_t c) {
  ClientPort& port = *ports_[c];
  Batch* batch = nullptr;
  if (!port.rings[k]->TryPop(&batch)) return false;
  NoteSlicePopped(port, batch);
  if (fault_ != nullptr && fault_->HasPauses()) {
    PauseIfPlanned(k, me.batches_processed);
  }
  std::uint8_t bits = 0;
  if (batch->deadline != Clock::time_point{} &&
      Clock::now() > batch->deadline) {
    bits = kExpiredBit;  // stale: drop this slice, don't serve it
  } else {
    ApplySlice(k, me, *batch);
  }
  ++me.batches_processed;
  FinishSlice(port, batch, bits);
  return true;
}

void CacheServer::WakeConsumer(std::size_t k) {
  // Pairs with NapConsumer: the pushes above are visible to any
  // consumer that decides to nap after this fence, and if it napped
  // before, we see its napping flag and pay the one slow-path notify.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  Consumer& me = *consumers_[k];
  if (me.napping.load(std::memory_order_relaxed)) {
    // clic-lint: begin-allow(no-mutex-data-path) reason=wakes a napping consumer; skipped entirely unless napping is set
    { MutexLock lock(me.mu); }
    me.cv.notify_all();
    // clic-lint: end-allow(no-mutex-data-path)
  }
}

void CacheServer::NapConsumer(std::size_t k, Consumer& me) {
  me.napping.store(true, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  bool work = stop_.load(std::memory_order_acquire);
  if (!work) {
    for (std::size_t c = 0; c < ports_.size() && !work; ++c) {
      if (me.done_client[c]) continue;
      ClientPort& port = *ports_[c];
      work = !port.rings[k]->Empty() ||
             port.eos.load(std::memory_order_acquire);
    }
  }
  if (!work) {
    // 1ms backstop: even a lost wakeup only costs one poll interval.
    // clic-lint: begin-allow(no-mutex-data-path) reason=idle-consumer nap; reached only after the spin found every owned ring empty
    std::unique_lock<std::mutex> lock(me.mu.native());
    // clic-lint: end-allow(no-mutex-data-path)
    me.cv.wait_for(lock, std::chrono::milliseconds(1));
  }
  me.napping.store(false, std::memory_order_relaxed);
}

void CacheServer::ConsumeOwned(std::size_t k) {
  Consumer& me = *consumers_[k];
  // This thread is consumer k's drain thread for its whole lifetime.
  me.self.Acquire();
  me.done_client.assign(ports_.size(), 0);
  std::size_t remaining = ports_.size();
  unsigned idle = 0;
  while (remaining > 0 && !stop_.load(std::memory_order_acquire)) {
    bool progress = false;
    for (std::size_t c = 0; c < ports_.size(); ++c) {
      if (me.done_client[c]) continue;
      // Re-check stop between pops: batches queued behind a stall that
      // Stop() unwound belong to the final stopped-accounting drain,
      // not to this consumer.
      while (!stop_.load(std::memory_order_acquire) &&
             PopAndProcess(k, me, c)) {
        progress = true;
      }
      ClientPort& port = *ports_[c];
      // eos is published after the client's last push, so acquiring it
      // makes any straggler visible: empty-after-eos is final.
      if (port.eos.load(std::memory_order_acquire) &&
          port.rings[k]->Empty()) {
        me.done_client[c] = 1;
        --remaining;
      }
    }
    if (progress) {
      idle = 0;
    } else if (remaining > 0) {
      // Spin briefly before the nap control path: on a busy server the
      // next push lands within the spin and no mutex is ever touched.
      if (++idle < 64) {
        std::this_thread::yield();
      } else {
        NapConsumer(k, me);
      }
    }
  }
  me.self.Release();
}

void CacheServer::ConsumeInClientOrder() {
  // Strict client order: the per-shard request sequence is then the
  // shard-filtered concatenation of client streams, which is what the
  // determinism guarantee (see header) promises.
  Consumer& me = *consumers_[0];
  // Deterministic mode runs exactly one consumer; this thread is it.
  me.self.Acquire();
  me.done_client.assign(ports_.size(), 0);
  for (std::size_t c = 0; c < ports_.size(); ++c) {
    ClientPort& port = *ports_[c];
    unsigned idle = 0;
    for (;;) {
      if (stop_.load(std::memory_order_acquire)) {
        me.self.Release();
        return;
      }
      if (PopAndProcess(0, me, c)) {
        idle = 0;
        continue;
      }
      if (port.eos.load(std::memory_order_acquire) &&
          port.rings[0]->Empty()) {
        break;
      }
      if (++idle < 64) {
        std::this_thread::yield();
        continue;
      }
      // Targeted nap: strict order means only client c (or stop) can
      // make progress, so don't scan the other rings.
      me.napping.store(true, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      const bool work = stop_.load(std::memory_order_acquire) ||
                        !port.rings[0]->Empty() ||
                        port.eos.load(std::memory_order_acquire);
      if (!work) {
        // clic-lint: begin-allow(no-mutex-data-path) reason=idle nap while the strict-order client's ring is empty
        std::unique_lock<std::mutex> lock(me.mu.native());
        // clic-lint: end-allow(no-mutex-data-path)
        me.cv.wait_for(lock, std::chrono::milliseconds(1));
      }
      me.napping.store(false, std::memory_order_relaxed);
    }
    me.done_client[c] = 1;
  }
  me.self.Release();
}

CacheStats CacheServer::TotalStats() const {
  CacheStats total;
  for (const auto& shard : shards_) {
    // Quiescent read: the contract ("call after Shutdown()/Stop()")
    // means the owning consumer has joined.
    shard->ownership.AssertHeld();
    for (const CacheStats& c : shard->client_stats) total += c;
  }
  return total;
}

std::map<ClientId, CacheStats> CacheServer::PerClientStats() const {
  std::map<ClientId, CacheStats> merged;
  for (const auto& shard : shards_) {
    shard->ownership.AssertHeld();  // quiescent (post-join) read
    for (std::size_t c = 0; c < shard->client_stats.size(); ++c) {
      const CacheStats& stats = shard->client_stats[c];
      if (stats.reads + stats.writes == 0) continue;
      merged[static_cast<ClientId>(c)] += stats;
    }
  }
  return merged;
}

std::vector<CacheStats> CacheServer::PerShardStats() const {
  std::vector<CacheStats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    shard->ownership.AssertHeld();  // quiescent (post-join) read
    CacheStats total;
    for (const CacheStats& c : shard->client_stats) total += c;
    out.push_back(total);
  }
  return out;
}

std::uint64_t CacheServer::requests_applied() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    shard->ownership.AssertHeld();  // quiescent (post-join) read
    total += shard->requests;
  }
  return total;
}

std::uint64_t CacheServer::batches_applied() const {
  return batches_applied_.load(std::memory_order_relaxed);
}

std::uint64_t CacheServer::shard_drains() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    shard->ownership.AssertHeld();  // quiescent (post-join) read
    total += shard->drains;
  }
  return total;
}

std::vector<std::uint64_t> CacheServer::PerConsumerRequests() const {
  std::vector<std::uint64_t> out;
  out.reserve(consumers_.size());
  for (const auto& cp : consumers_) {
    cp->self.AssertHeld();  // quiescent (post-join) read
    out.push_back(cp->requests);
  }
  return out;
}

AdmissionStats CacheServer::SnapshotAdmission(const ClientPort& port) const {
  // Producer-side fields are plain (single producer per client) and the
  // completion counters are atomics; quiescent reads — call after
  // Shutdown()/Stop(), whose joins give the happens-before.
  port.producer.AssertHeld();
  AdmissionStats s = port.adm;
  s.applied_batches = port.applied_batches.load(std::memory_order_relaxed);
  s.applied_requests = port.applied_requests.load(std::memory_order_relaxed);
  s.expired_batches = port.expired_batches.load(std::memory_order_relaxed);
  s.expired_requests = port.expired_requests.load(std::memory_order_relaxed);
  s.stopped_batches += port.stopped_batches.load(std::memory_order_relaxed);
  s.stopped_requests += port.stopped_requests.load(std::memory_order_relaxed);
  return s;
}

AdmissionStats CacheServer::TotalAdmission() const {
  AdmissionStats total;
  for (const auto& pp : ports_) total += SnapshotAdmission(*pp);
  return total;
}

std::vector<AdmissionStats> CacheServer::PerClientAdmission() const {
  std::vector<AdmissionStats> out;
  out.reserve(ports_.size());
  for (const auto& pp : ports_) out.push_back(SnapshotAdmission(*pp));
  return out;
}

std::uint64_t CacheServer::quarantined() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    shard->ownership.AssertHeld();  // quiescent (post-join) read
    total += shard->quarantined;
  }
  return total;
}

std::uint64_t CacheServer::watchdog_sheds() const {
  return watchdog_sheds_.load(std::memory_order_relaxed);
}

std::vector<double> CacheServer::DrainLatenciesUs() const {
  std::vector<double> merged;
  for (const auto& shard : shards_) {
    shard->ownership.AssertHeld();  // quiescent (post-join) read
    merged.insert(merged.end(), shard->drain_us.begin(),
                  shard->drain_us.end());
  }
  std::sort(merged.begin(), merged.end());
  return merged;
}

namespace {

double PercentileUs(const std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  const std::size_t rank = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(sorted_us.size() - 1),
                       q * static_cast<double>(sorted_us.size() - 1)));
  return sorted_us[rank];
}

}  // namespace

ServeResult ServeTrace(const Trace& trace, const ServerOptions& options,
                       const LoadOptions& load) {
  if (load.clients == 0) {
    throw std::invalid_argument("ServeTrace: need at least one client");
  }
  if (load.batch_size == 0) {
    throw std::invalid_argument("ServeTrace: batch_size must be >= 1");
  }
  if (options.deterministic && load.duration_seconds > 0.0) {
    throw std::invalid_argument(
        "ServeTrace: duration mode replays chunks in wall-clock order and "
        "cannot be deterministic");
  }
  std::uint64_t n = trace.size();
  if (load.request_budget > 0) n = std::min<std::uint64_t>(n, load.request_budget);

  CacheServer server(options, load.clients);
  const std::size_t clients = load.clients;
  std::vector<std::vector<double>> latencies_us(clients);
  std::vector<ClientLoadStats> driver_stats(clients);

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> drivers;
  drivers.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    drivers.emplace_back([&, c] {
      // Contiguous chunk so client streams concatenate to the capped
      // trace (the determinism rule depends on this layout).
      const std::uint64_t begin = n * c / clients;
      const std::uint64_t end = n * (c + 1) / clients;
      std::vector<double>& lat = latencies_us[c];
      ClientLoadStats& stats = driver_stats[c];
      const bool timed = load.duration_seconds > 0.0;
      bool first_pass = true;
      bool out_of_time = false;
      bool stopped = false;
      do {
        for (std::uint64_t pos = begin; pos < end; pos += load.batch_size) {
          // The first pass always completes — every request is applied
          // at least once — so the deadline only cuts later passes.
          if (out_of_time && !first_pass) break;
          const std::size_t count = static_cast<std::size_t>(
              std::min<std::uint64_t>(load.batch_size, end - pos));
          const auto t0 = std::chrono::steady_clock::now();
          const SubmitResult outcome =
              server.Submit(c, trace.requests.data() + pos, count);
          const std::chrono::duration<double, std::micro> took =
              std::chrono::steady_clock::now() - t0;
          stats.requests += count;
          ++stats.batches;
          switch (outcome) {
            case SubmitResult::kApplied:
              lat.push_back(took.count());
              break;
            case SubmitResult::kShed:
              ++stats.shed_batches;
              break;
            case SubmitResult::kTimedOut:
              ++stats.timed_out_batches;
              break;
            case SubmitResult::kExpired:
              ++stats.expired_batches;
              break;
            case SubmitResult::kStopped:
              stopped = true;
              break;
            case SubmitResult::kEnqueued:
              break;  // unreachable for closed-loop Submit
          }
          if (stopped) break;
          if (timed) {
            const std::chrono::duration<double> elapsed =
                std::chrono::steady_clock::now() - wall_start;
            out_of_time = elapsed.count() >= load.duration_seconds;
          }
        }
        first_pass = false;
      } while (timed && !out_of_time && !stopped && begin < end);
      server.Finish(c);
    });
  }
  for (std::thread& t : drivers) t.join();
  server.Shutdown();
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;

  ServeResult result;
  result.total = server.TotalStats();
  result.per_client = server.PerClientStats();
  result.per_shard = server.PerShardStats();
  result.requests = server.requests_applied();
  result.batches = server.batches_applied();
  result.shard_drains = server.shard_drains();
  result.avg_drained_batch =
      result.shard_drains > 0
          ? static_cast<double>(result.requests) /
                static_cast<double>(result.shard_drains)
          : 0.0;
  result.consumers = server.consumers();
  result.cores_detected = std::max(1u, std::thread::hardware_concurrency());
  result.per_consumer_requests = server.PerConsumerRequests();
  result.admission = server.TotalAdmission();
  result.quarantined = server.quarantined();
  result.watchdog_sheds = server.watchdog_sheds();
  if (options.record_drain_latency) {
    const std::vector<double> drain_us = server.DrainLatenciesUs();
    result.drain_p50_us = PercentileUs(drain_us, 0.50);
    result.drain_p99_us = PercentileUs(drain_us, 0.99);
  }
  result.wall_seconds = wall.count();
  result.throughput_rps =
      wall.count() > 0 ? static_cast<double>(result.requests) / wall.count()
                       : 0.0;
  std::vector<double> all_us;
  for (std::size_t c = 0; c < clients; ++c) {
    std::vector<double>& lat = latencies_us[c];
    std::sort(lat.begin(), lat.end());
    driver_stats[c].p50_us = PercentileUs(lat, 0.50);
    driver_stats[c].p99_us = PercentileUs(lat, 0.99);
    all_us.insert(all_us.end(), lat.begin(), lat.end());
  }
  std::sort(all_us.begin(), all_us.end());
  result.p50_us = PercentileUs(all_us, 0.50);
  result.p99_us = PercentileUs(all_us, 0.99);
  result.per_driver = std::move(driver_stats);
  return result;
}

}  // namespace clic::server
