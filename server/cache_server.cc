#include "server/cache_server.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "common/fnv1a.h"

namespace clic::server {

std::size_t ShardOf(PageId page, std::size_t shards) {
  if (shards <= 1) return 0;
  Fnv1a h;
  h.MixScalar(page);
  return static_cast<std::size_t>(h.value() % shards);
}

std::size_t ShardCachePages(std::size_t total_pages, std::size_t shards) {
  return std::max<std::size_t>(1, total_pages / std::max<std::size_t>(1, shards));
}

std::vector<Trace> PartitionByShard(const Trace& trace, std::size_t shards) {
  std::vector<Trace> parts(std::max<std::size_t>(1, shards));
  for (std::size_t s = 0; s < parts.size(); ++s) {
    parts[s].name = trace.name + "#shard" + std::to_string(s);
    parts[s].hints = std::make_shared<HintRegistry>(*trace.hints);
    parts[s].client_bound = trace.client_bound;  // valid upper bound
  }
  for (const Request& r : trace.requests) {
    parts[ShardOf(r.page, parts.size())].requests.push_back(r);
  }
  return parts;
}

SimResult PartitionedSimulate(const Trace& trace, const ServerOptions& options,
                              std::uint64_t request_budget) {
  Trace capped;
  capped.name = trace.name;
  // Read-only below (PartitionByShard deep-copies per part), so the
  // alias never shares mutable interning state with a writer.
  capped.hints = trace.hints;
  capped.client_bound = trace.client_bound;  // valid upper bound
  const std::uint64_t n =
      request_budget > 0 ? std::min<std::uint64_t>(trace.size(), request_budget)
                         : trace.size();
  capped.requests.assign(trace.requests.begin(),
                         trace.requests.begin() + static_cast<long>(n));
  const std::vector<Trace> parts = PartitionByShard(capped, options.shards);
  const std::size_t pages =
      ShardCachePages(options.cache_pages, options.shards);
  SimResult merged;
  for (const Trace& part : parts) {
    const auto policy =
        MakePolicy(options.policy, pages, /*trace=*/nullptr, options.clic);
    const SimResult shard = Simulate(part, *policy);
    merged.total += shard.total;
    for (const auto& [client, stats] : shard.per_client) {
      merged.per_client[client] += stats;
    }
  }
  return merged;
}

CacheServer::CacheServer(const ServerOptions& options, std::size_t num_clients)
    : pages_per_shard_(ShardCachePages(options.cache_pages, options.shards)),
      deterministic_(options.deterministic) {
  if (options.shards == 0) {
    throw std::invalid_argument("CacheServer: shards must be >= 1");
  }
  if (num_clients == 0) {
    throw std::invalid_argument("CacheServer: need at least one client");
  }
  if (options.policy == PolicyKind::kOpt) {
    throw std::invalid_argument(
        "CacheServer: OPT is clairvoyant and cannot serve an online "
        "request stream");
  }
  shards_.reserve(options.shards);
  for (std::size_t s = 0; s < options.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->policy = MakePolicy(options.policy, pages_per_shard_,
                               /*trace=*/nullptr, options.clic);
    shards_.push_back(std::move(shard));
  }
  queues_.reserve(num_clients);
  for (std::size_t c = 0; c < num_clients; ++c) {
    queues_.push_back(std::make_unique<ClientQueue>());
  }
  const unsigned workers =
      deterministic_
          ? 1u
          : std::max(1u, std::min<unsigned>(
                             static_cast<unsigned>(num_clients),
                             options.max_consumers > 0
                                 ? options.max_consumers
                                 : std::max(
                                       1u,
                                       std::thread::hardware_concurrency())));
  scratch_.resize(workers);
  for (Scratch& s : scratch_) s.buckets.resize(shards_.size());
  // Everything above must be in place before the first consumer runs.
  consumers_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    if (deterministic_) {
      consumers_.emplace_back([this] { ConsumeInClientOrder(); });
    } else {
      consumers_.emplace_back([this, w] { ConsumeRoundRobin(w); });
    }
  }
}

CacheServer::~CacheServer() { Shutdown(); }

void CacheServer::Submit(std::size_t client, const Request* requests,
                         std::size_t n) {
  if (n == 0) return;
  Batch batch;
  batch.requests = requests;
  batch.n = n;
  ClientQueue& q = *queues_.at(client);
  {
    std::lock_guard<std::mutex> lock(q.mu);
    q.pending.push_back(&batch);
  }
  q.arrival.notify_all();
  std::unique_lock<std::mutex> lock(q.mu);
  q.applied.wait(lock, [&batch] { return batch.applied; });
}

void CacheServer::Finish(std::size_t client) {
  ClientQueue& q = *queues_.at(client);
  {
    std::lock_guard<std::mutex> lock(q.mu);
    q.eos = true;
  }
  q.arrival.notify_all();
}

void CacheServer::Shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  for (std::thread& t : consumers_) t.join();
}

void CacheServer::ApplyBatch(std::size_t consumer_index, const Batch& batch) {
  Scratch& scratch = scratch_[consumer_index];
  // The hit buffer is (re)sized outside any shard lock; AccessBatch
  // itself never allocates.
  if (scratch.hits.size() < batch.n) scratch.hits.resize(batch.n);
  std::uint8_t* const hits = scratch.hits.data();

  auto apply_range = [this, hits](Shard& shard, const Request* reqs,
                                  std::size_t count) {
    std::lock_guard<std::mutex> lock(shard.mu);
#ifndef NDEBUG
    assert(!shard.entered && "two consumers inside one shard's policy");
    shard.entered = true;
#endif
    // One virtual dispatch per drained run — the whole reason the drain
    // loop gathers contiguous per-shard request spans.
    shard.policy->AccessBatch(reqs, shard.seq, count, hits);
    shard.seq += count;
    for (std::size_t i = 0; i < count; ++i) {
      const Request& r = reqs[i];
      if (r.client >= shard.client_stats.size()) {
        shard.client_stats.resize(static_cast<std::size_t>(r.client) + 1);
      }
      shard.client_stats[r.client].Record(r, hits[i] != 0);
    }
    shard.requests += count;
    ++shard.drains;
#ifndef NDEBUG
    shard.entered = false;
#endif
  };

  if (shards_.size() == 1) {
    apply_range(*shards_[0], batch.requests, batch.n);
  } else {
    auto& buckets = scratch.buckets;
    for (auto& b : buckets) b.clear();
    for (std::size_t i = 0; i < batch.n; ++i) {
      buckets[ShardOf(batch.requests[i].page, shards_.size())].push_back(
          batch.requests[i]);
    }
    for (std::size_t s = 0; s < buckets.size(); ++s) {
      if (buckets[s].empty()) continue;
      apply_range(*shards_[s], buckets[s].data(), buckets[s].size());
    }
  }
  batches_applied_.fetch_add(1, std::memory_order_relaxed);
}

void CacheServer::ConsumeRoundRobin(std::size_t consumer_index) {
  const std::size_t workers = scratch_.size();
  std::vector<std::size_t> mine;
  for (std::size_t c = consumer_index; c < queues_.size(); c += workers) {
    mine.push_back(c);
  }
  std::vector<bool> drained(mine.size(), false);
  std::size_t remaining = mine.size();
  while (remaining > 0) {
    bool progress = false;
    for (std::size_t i = 0; i < mine.size(); ++i) {
      if (drained[i]) continue;
      ClientQueue& q = *queues_[mine[i]];
      Batch* batch = nullptr;
      {
        std::lock_guard<std::mutex> lock(q.mu);
        if (!q.pending.empty()) {
          batch = q.pending.front();
          q.pending.pop_front();
        } else if (q.eos) {
          drained[i] = true;
          --remaining;
          continue;
        }
      }
      if (batch != nullptr) {
        ApplyBatch(consumer_index, *batch);
        {
          std::lock_guard<std::mutex> lock(q.mu);
          batch->applied = true;
        }
        q.applied.notify_all();
        progress = true;
      }
    }
    if (!progress && remaining > 0) {
      // All live queues momentarily empty: nap on the first one. The
      // timeout keeps this a polling loop across *several* queues while
      // still reacting within a millisecond to a quiet period ending.
      for (std::size_t i = 0; i < mine.size(); ++i) {
        if (drained[i]) continue;
        ClientQueue& q = *queues_[mine[i]];
        std::unique_lock<std::mutex> lock(q.mu);
        q.arrival.wait_for(lock, std::chrono::milliseconds(1), [&q] {
          return !q.pending.empty() || q.eos;
        });
        break;
      }
    }
  }
}

void CacheServer::ConsumeInClientOrder() {
  // Strict client order: the per-shard request sequence is then the
  // shard-filtered concatenation of client streams, which is what the
  // determinism guarantee (see header) promises.
  for (std::size_t c = 0; c < queues_.size(); ++c) {
    ClientQueue& q = *queues_[c];
    for (;;) {
      Batch* batch = nullptr;
      {
        std::unique_lock<std::mutex> lock(q.mu);
        q.arrival.wait(lock, [&q] { return !q.pending.empty() || q.eos; });
        if (!q.pending.empty()) {
          batch = q.pending.front();
          q.pending.pop_front();
        } else {
          break;  // eos and empty: this client's stream is complete
        }
      }
      ApplyBatch(0, *batch);
      {
        std::lock_guard<std::mutex> lock(q.mu);
        batch->applied = true;
      }
      q.applied.notify_all();
    }
  }
}

CacheStats CacheServer::TotalStats() const {
  CacheStats total;
  for (const auto& shard : shards_) {
    for (const CacheStats& c : shard->client_stats) total += c;
  }
  return total;
}

std::map<ClientId, CacheStats> CacheServer::PerClientStats() const {
  std::map<ClientId, CacheStats> merged;
  for (const auto& shard : shards_) {
    for (std::size_t c = 0; c < shard->client_stats.size(); ++c) {
      const CacheStats& stats = shard->client_stats[c];
      if (stats.reads + stats.writes == 0) continue;
      merged[static_cast<ClientId>(c)] += stats;
    }
  }
  return merged;
}

std::vector<CacheStats> CacheServer::PerShardStats() const {
  std::vector<CacheStats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    CacheStats total;
    for (const CacheStats& c : shard->client_stats) total += c;
    out.push_back(total);
  }
  return out;
}

std::uint64_t CacheServer::requests_applied() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->requests;
  return total;
}

std::uint64_t CacheServer::batches_applied() const {
  return batches_applied_.load(std::memory_order_relaxed);
}

std::uint64_t CacheServer::shard_drains() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->drains;
  return total;
}

namespace {

double PercentileUs(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  const std::size_t rank = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(sorted_us.size() - 1),
                       q * static_cast<double>(sorted_us.size() - 1)));
  return sorted_us[rank];
}

}  // namespace

ServeResult ServeTrace(const Trace& trace, const ServerOptions& options,
                       const LoadOptions& load) {
  if (load.clients == 0) {
    throw std::invalid_argument("ServeTrace: need at least one client");
  }
  if (load.batch_size == 0) {
    throw std::invalid_argument("ServeTrace: batch_size must be >= 1");
  }
  if (options.deterministic && load.duration_seconds > 0.0) {
    throw std::invalid_argument(
        "ServeTrace: duration mode replays chunks in wall-clock order and "
        "cannot be deterministic");
  }
  std::uint64_t n = trace.size();
  if (load.request_budget > 0) n = std::min<std::uint64_t>(n, load.request_budget);

  CacheServer server(options, load.clients);
  const std::size_t clients = load.clients;
  std::vector<std::vector<double>> latencies_us(clients);
  std::vector<ClientLoadStats> driver_stats(clients);

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> drivers;
  drivers.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    drivers.emplace_back([&, c] {
      // Contiguous chunk so client streams concatenate to the capped
      // trace (the determinism rule depends on this layout).
      const std::uint64_t begin = n * c / clients;
      const std::uint64_t end = n * (c + 1) / clients;
      std::vector<double>& lat = latencies_us[c];
      ClientLoadStats& stats = driver_stats[c];
      const bool timed = load.duration_seconds > 0.0;
      bool first_pass = true;
      bool out_of_time = false;
      do {
        for (std::uint64_t pos = begin; pos < end; pos += load.batch_size) {
          // The first pass always completes — every request is applied
          // at least once — so the deadline only cuts later passes.
          if (out_of_time && !first_pass) break;
          const std::size_t count = static_cast<std::size_t>(
              std::min<std::uint64_t>(load.batch_size, end - pos));
          const auto t0 = std::chrono::steady_clock::now();
          server.Submit(c, trace.requests.data() + pos, count);
          const std::chrono::duration<double, std::micro> took =
              std::chrono::steady_clock::now() - t0;
          lat.push_back(took.count());
          stats.requests += count;
          ++stats.batches;
          if (timed) {
            const std::chrono::duration<double> elapsed =
                std::chrono::steady_clock::now() - wall_start;
            out_of_time = elapsed.count() >= load.duration_seconds;
          }
        }
        first_pass = false;
      } while (timed && !out_of_time && begin < end);
      server.Finish(c);
    });
  }
  for (std::thread& t : drivers) t.join();
  server.Shutdown();
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;

  ServeResult result;
  result.total = server.TotalStats();
  result.per_client = server.PerClientStats();
  result.per_shard = server.PerShardStats();
  result.requests = server.requests_applied();
  result.batches = server.batches_applied();
  result.shard_drains = server.shard_drains();
  result.avg_drained_batch =
      result.shard_drains > 0
          ? static_cast<double>(result.requests) /
                static_cast<double>(result.shard_drains)
          : 0.0;
  result.wall_seconds = wall.count();
  result.throughput_rps =
      wall.count() > 0 ? static_cast<double>(result.requests) / wall.count()
                       : 0.0;
  std::vector<double> all_us;
  for (std::size_t c = 0; c < clients; ++c) {
    std::vector<double>& lat = latencies_us[c];
    std::sort(lat.begin(), lat.end());
    driver_stats[c].p50_us = PercentileUs(lat, 0.50);
    driver_stats[c].p99_us = PercentileUs(lat, 0.99);
    all_us.insert(all_us.end(), lat.begin(), lat.end());
  }
  std::sort(all_us.begin(), all_us.end());
  result.p50_us = PercentileUs(all_us, 0.50);
  result.p99_us = PercentileUs(all_us, 0.99);
  result.per_driver = std::move(driver_stats);
  return result;
}

}  // namespace clic::server
