// Deterministic fault injection for the online cache server.
//
// A FaultPlan is a seeded, declarative description of the chaos a run
// should experience: shard stalls (the owning consumer sleeps inside
// the shard's drain, as a seized disk or a page-compression stall
// would — blocking that core's whole shard set, since ownership is the
// only serialization),
// consumer pauses (the drain thread naps between batches, as a noisy
// neighbour or a GC pause would), deterministic admission shedding
// (every k-th batch of every client is rejected, simulating an
// overloaded front end with a reproducible victim set), client burst
// multipliers (drivers submit bursts of batches back to back), and
// hint-corruption byte flips (seeded bit flips in Request::hint_set at
// drain time, feeding the kind of garbage a torn wire message would).
//
// Determinism contract: every fault fires on a *logical* index — a
// shard's drain count, a consumer's processed-batch count, a client's
// 1-based submit index — never on wall-clock time, and corruption draws
// from an RNG seeded by (plan seed, client, submit index). Replaying
// the same plan against the same workload therefore injects the same
// faults at the same points; in deterministic server mode the surviving
// requests' hit/miss decisions are bit-identical run to run.
//
// The server compiles the hooks behind a `fault_ == nullptr` check, so
// a plan-free run pays one predictable branch per drain and nothing
// else (see server/cache_server.cc).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace clic::server::fault {

/// Shard `shard` sleeps `ms` milliseconds at the start of each of its
/// drains [after_drain, after_drain + drains). The sleep happens on the
/// owning consumer thread — there is no shard lock to hold; blocking
/// the owner stalls every shard that consumer owns, which is exactly
/// the blast radius a seized disk has under thread-per-core ownership.
/// The sleep loop checks the server's stop flag every millisecond so
/// Stop() never waits out a long stall.
struct ShardStall {
  std::size_t shard = 0;
  std::uint64_t after_drain = 0;
  std::uint64_t drains = 1;
  double ms = 1.0;
};

/// Consumer thread `consumer` sleeps `ms` milliseconds before each of
/// its processed batches [after_batch, after_batch + batches).
struct ConsumerPause {
  std::size_t consumer = 0;
  std::uint64_t after_batch = 0;
  std::uint64_t batches = 1;
  double ms = 1.0;
};

struct FaultPlan {
  /// Seed for the corruption RNG (mixed with client id and submit
  /// index, so corruption is per-batch deterministic regardless of
  /// drain interleaving).
  std::uint64_t seed = 1;
  std::vector<ShardStall> stalls;
  std::vector<ConsumerPause> pauses;
  /// > 0: admission deterministically sheds every `shed_every`-th batch
  /// of each client (1-based per-client submit index). The shed set is
  /// a pure function of the plan, so a verify run can simulate exactly
  /// the surviving requests.
  std::uint64_t shed_every = 0;
  /// >= 1: load drivers (bench_overload, open-loop tests) submit this
  /// many batches back to back per cycle instead of one.
  std::uint64_t burst = 1;
  /// > 0: every `corrupt_every`-th drained batch of each client gets
  /// `corrupt_flips` seeded single-bit flips in Request::hint_set
  /// fields. Requires the server's hint-sanity guard (hint_bound > 0):
  /// an unguarded corrupted hint id could index policy state out of
  /// range or force a gigantic per-hint allocation.
  std::uint64_t corrupt_every = 0;
  std::uint32_t corrupt_flips = 1;

  // ---- network-edge faults (server/net/, PR 9). All triggered on
  // logical counters — a connection's reply index, its read-event
  // index, the acceptor's accept index — never on wall-clock time, so
  // a chaos run replays deterministically. ----

  /// > 0: the server tears every k-th reply write per connection into
  /// two separate send() calls. TCP reassembles, so served decisions
  /// are unchanged — what this exercises is the *client's* incremental
  /// frame parser.
  std::uint64_t net_torn_write_every = 0;
  /// > 0: every k-th read event per connection drains at most one byte,
  /// forcing the server's parser through its partial-frame path.
  /// Decisions are unchanged; only reassembly is stressed.
  std::uint64_t net_partial_read_every = 0;
  /// > 0: every k-th accepted connection is reset (closed abruptly)
  /// right after its first reply. Deterministic per accept index, but
  /// it truncates that connection's served stream — incompatible with
  /// --verify (see AltersServedRequests).
  std::uint64_t net_reset_every = 0;
  /// > 0: the acceptor sleeps net_accept_stall_ms before every k-th
  /// accept (a seized accept queue; connection attempts back up).
  std::uint64_t net_accept_stall_every = 0;
  double net_accept_stall_ms = 1.0;

  bool HasStalls() const { return !stalls.empty(); }
  bool HasPauses() const { return !pauses.empty(); }
  bool HasCorruption() const { return corrupt_every > 0; }
  bool HasNetFaults() const {
    return net_torn_write_every > 0 || net_partial_read_every > 0 ||
           net_reset_every > 0 || net_accept_stall_every > 0;
  }
  /// True when the plan can alter which requests get served or what
  /// they look like — i.e. when served decisions are NOT comparable to
  /// a fault-free run of the full trace. Stalls, pauses, torn writes,
  /// partial reads and accept stalls only delay or re-chunk bytes; a
  /// reset truncates a connection's stream.
  bool AltersServedRequests() const {
    return shed_every > 0 || corrupt_every > 0 || net_reset_every > 0;
  }
};

/// Parses the textual plan grammar:
///
///   plan    := clause (';' clause)*
///   clause  := 'seed=' N | 'burst=' N
///            | 'stall:'   'shard=' N ',after=' N ',drains=' N ',ms=' F
///            | 'pause:'   'consumer=' N ',after=' N ',batches=' N ',ms=' F
///            | 'shed:'    'every=' N
///            | 'corrupt:' 'every=' N [',flips=' N]
///            | 'net:'     net-key=N (',' net-key=N)*
///   net-key := 'torn-write' | 'partial-read' | 'reset'
///            | 'accept-stall' | 'stall-ms'
///
/// A net: clause needs at least one of torn-write/partial-read/reset/
/// accept-stall with a value >= 1 (stall-ms tunes the accept-stall
/// sleep and requires accept-stall in the same plan).
///
/// Keys within a clause may appear in any order; unlisted keys keep
/// their defaults. Returns false and fills `*error` (naming the
/// offending clause or key and the valid set) on any malformed input.
bool ParseFaultPlan(const std::string& spec, FaultPlan* out,
                    std::string* error);

}  // namespace clic::server::fault
