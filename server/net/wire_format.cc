#include "server/net/wire_format.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace clic::server::net {
namespace {

// Same FNV-1a as sim/trace_io.cc: the checksum discipline the trace
// cache established, applied to wire frames.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t Fnv1a(std::uint64_t h, const std::uint8_t* data,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

void PutU16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

void PutU32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void PutU64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint16_t GetU16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t GetU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t GetU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

void PutHeader(std::uint8_t* h, FrameType type, std::uint16_t count,
               std::uint32_t payload_len, std::uint64_t seq) {
  PutU32(h, kFrameMagic);
  h[4] = kWireVersion;
  h[5] = static_cast<std::uint8_t>(type);
  PutU16(h + 6, count);
  PutU32(h + 8, payload_len);
  PutU64(h + 12, seq);
}

}  // namespace

const char* WireCodeName(std::uint16_t code) {
  switch (code) {
    case kWireApplied: return "applied";
    case kWireShed: return "shed";
    case kWireTimedOut: return "timed_out";
    case kWireExpired: return "expired";
    case kWireStopped: return "stopped";
    case kWireBadMagic: return "bad_magic";
    case kWireBadVersion: return "bad_version";
    case kWireBadType: return "bad_type";
    case kWireBadCount: return "bad_count";
    case kWireBadLength: return "bad_length";
    case kWireBadChecksum: return "bad_checksum";
    case kWireBadPayload: return "bad_payload";
    case kWireServerBusy: return "server_busy";
    case kWireReadTimeout: return "read_timeout";
    default: return "unknown";
  }
}

void AppendBatchFrame(const Request* reqs, std::size_t n, std::uint64_t seq,
                      std::string* out) {
  assert(n >= 1 && n <= kWireMaxBatch);
  const std::uint32_t payload_len =
      static_cast<std::uint32_t>(n * kWireRequestBytes);
  const std::size_t start = out->size();
  out->resize(start + kFrameHeaderBytes + payload_len + kFrameChecksumBytes);
  std::uint8_t* p = reinterpret_cast<std::uint8_t*>(&(*out)[start]);
  PutHeader(p, FrameType::kBatch, static_cast<std::uint16_t>(n), payload_len,
            seq);
  std::uint8_t* rec = p + kFrameHeaderBytes;
  for (std::size_t i = 0; i < n; ++i, rec += kWireRequestBytes) {
    PutU32(rec, reqs[i].page);
    PutU32(rec + 4, reqs[i].hint_set);
    PutU16(rec + 8, reqs[i].client);
    rec[10] = static_cast<std::uint8_t>(reqs[i].op);
    rec[11] = static_cast<std::uint8_t>(reqs[i].write_kind);
  }
  const std::uint64_t sum =
      Fnv1a(kFnvOffset, p, kFrameHeaderBytes + payload_len);
  PutU64(p + kFrameHeaderBytes + payload_len, sum);
}

void AppendReplyFrame(FrameType type, std::uint16_t code, std::uint64_t seq,
                      std::string* out) {
  const std::size_t start = out->size();
  out->resize(start + kFrameHeaderBytes + kFrameChecksumBytes);
  std::uint8_t* p = reinterpret_cast<std::uint8_t*>(&(*out)[start]);
  PutHeader(p, type, code, 0, seq);
  PutU64(p + kFrameHeaderBytes, Fnv1a(kFnvOffset, p, kFrameHeaderBytes));
}

FrameParser::FrameParser(std::size_t max_batch)
    : max_batch_(max_batch == 0 || max_batch > kWireMaxBatch ? kWireMaxBatch
                                                             : max_batch) {}

ParseStatus FrameParser::Poison(std::uint16_t code,
                                const std::string& message) {
  poisoned_ = true;
  error_code_ = code;
  error_ = message;
  return ParseStatus::kError;
}

ParseStatus FrameParser::ValidateHeader() {
  const std::uint32_t magic = GetU32(header_);
  if (magic != kFrameMagic) {
    return Poison(kWireBadMagic, "bad frame magic");
  }
  if (header_[4] != kWireVersion) {
    return Poison(kWireBadVersion,
                  "unsupported frame version " + std::to_string(header_[4]));
  }
  const std::uint8_t type = header_[5];
  if (type < static_cast<std::uint8_t>(FrameType::kBatch) ||
      type > static_cast<std::uint8_t>(FrameType::kError)) {
    return Poison(kWireBadType,
                  "unknown frame type " + std::to_string(type));
  }
  type_ = static_cast<FrameType>(type);
  count_ = GetU16(header_ + 6);
  payload_len_ = GetU32(header_ + 8);
  seq_ = GetU64(header_ + 12);
  if (type_ == FrameType::kBatch) {
    if (count_ == 0 || count_ > max_batch_) {
      return Poison(kWireBadCount,
                    "batch count " + std::to_string(count_) +
                        " outside 1.." + std::to_string(max_batch_));
    }
    // The count/payload_len cross-check rejects a patched length field
    // at header time: the allocation below is bounded by max_batch
    // before it happens.
    if (payload_len_ !=
        static_cast<std::uint32_t>(count_) * kWireRequestBytes) {
      return Poison(kWireBadLength,
                    "payload length " + std::to_string(payload_len_) +
                        " != count*" + std::to_string(kWireRequestBytes));
    }
  } else if (payload_len_ != 0) {
    return Poison(kWireBadLength, "status/error frame with a payload");
  }
  header_done_ = true;
  body_need_ = payload_len_ + kFrameChecksumBytes;
  body_.clear();
  body_.reserve(body_need_);
  return ParseStatus::kNeedMore;
}

ParseStatus FrameParser::FinishFrame(ParsedFrame* out) {
  std::uint64_t sum = Fnv1a(kFnvOffset, header_, kFrameHeaderBytes);
  sum = Fnv1a(sum, body_.data(), payload_len_);
  if (sum != GetU64(body_.data() + payload_len_)) {
    return Poison(kWireBadChecksum, "frame checksum mismatch");
  }
  out->type = type_;
  out->code = count_;
  out->seq = seq_;
  out->requests.clear();
  if (type_ == FrameType::kBatch) {
    out->requests.reserve(count_);
    const std::uint8_t* rec = body_.data();
    for (std::uint16_t i = 0; i < count_; ++i, rec += kWireRequestBytes) {
      Request r;
      r.page = GetU32(rec);
      r.hint_set = GetU32(rec + 4);
      r.client = GetU16(rec + 8);
      if (rec[10] > 1 || rec[11] > 2) {
        return Poison(kWireBadPayload,
                      "request " + std::to_string(i) +
                          " has an out-of-range op/write_kind");
      }
      r.op = static_cast<OpType>(rec[10]);
      r.write_kind = static_cast<WriteKind>(rec[11]);
      out->requests.push_back(r);
    }
  }
  // Reset for the next frame.
  have_ = 0;
  header_done_ = false;
  body_.clear();
  body_need_ = 0;
  ++frames_;
  return ParseStatus::kFrame;
}

ParseStatus FrameParser::Consume(const std::uint8_t** data, std::size_t* len,
                                 ParsedFrame* out) {
  if (poisoned_) return ParseStatus::kError;
  while (*len > 0) {
    if (!header_done_) {
      const std::size_t take =
          std::min(*len, kFrameHeaderBytes - have_);
      std::memcpy(header_ + have_, *data, take);
      have_ += take;
      *data += take;
      *len -= take;
      if (have_ < kFrameHeaderBytes) return ParseStatus::kNeedMore;
      const ParseStatus st = ValidateHeader();
      if (st == ParseStatus::kError) return st;
    }
    const std::size_t missing = body_need_ - body_.size();
    const std::size_t take = std::min(*len, missing);
    body_.insert(body_.end(), *data, *data + take);
    *data += take;
    *len -= take;
    if (body_.size() < body_need_) return ParseStatus::kNeedMore;
    return FinishFrame(out);
  }
  return ParseStatus::kNeedMore;
}

}  // namespace clic::server::net
