#include "server/net/wire_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace clic::server::net {
namespace {

using Clock = std::chrono::steady_clock;

double Percentile(std::vector<double>* sorted, double q) {
  if (sorted->empty()) return 0.0;
  std::sort(sorted->begin(), sorted->end());
  const std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted->size() - 1));
  return (*sorted)[idx];
}

/// One driver's share of the work and its wire-side tallies.
struct DriverState {
  WireLoadResult tally;  // per-driver; merged after join
  std::vector<double> latencies_us;
};

bool WriteAll(int fd, const char* data, std::size_t n, std::string* error) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      *error = std::string("write: ") + std::strerror(errno);
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

bool WireClient::Connect(const std::string& addr, std::uint16_t port) {
  Close();
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  if (inet_pton(AF_INET, addr.c_str(), &sa.sin_addr) != 1) {
    error_ = "unparseable address '" + addr + "'";
    return false;
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
    error_ = std::string("connect ") + addr + ":" + std::to_string(port) +
             ": " + std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  seq_ = 0;
  parser_ = FrameParser(kWireMaxBatch);
  error_.clear();
  return true;
}

void WireClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::uint16_t WireClient::Call(const Request* reqs, std::size_t n) {
  if (fd_ < 0) {
    error_ = "not connected";
    return kWireConnClosed;
  }
  out_.clear();
  ++seq_;
  AppendBatchFrame(reqs, n, seq_, &out_);
  if (!WriteAll(fd_, out_.data(), out_.size(), &error_)) {
    Close();
    return kWireConnClosed;
  }
  // Block for the status reply, reassembling through the incremental
  // parser — a torn server write arrives as two reads and still decodes.
  std::uint8_t buf[4096];
  for (;;) {
    const ssize_t r = ::read(fd_, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      error_ = std::string("read: ") + std::strerror(errno);
      Close();
      return kWireConnClosed;
    }
    if (r == 0) {
      error_ = "connection closed before the reply";
      Close();
      return kWireConnClosed;
    }
    const std::uint8_t* p = buf;
    std::size_t len = static_cast<std::size_t>(r);
    const ParseStatus st = parser_.Consume(&p, &len, &reply_);
    if (st == ParseStatus::kNeedMore) continue;
    if (st == ParseStatus::kError) {
      error_ = "malformed reply frame: " + parser_.error();
      Close();
      return kWireConnClosed;
    }
    if (reply_.type == FrameType::kBatch) {
      error_ = "server sent a batch frame";
      Close();
      return kWireConnClosed;
    }
    // An error frame precedes a server-side close; hand the typed code
    // up and drop the connection now.
    if (reply_.type == FrameType::kError) Close();
    return reply_.code;
  }
}

WireLoadResult RunWireLoad(const Trace& trace,
                           const WireLoadOptions& options) {
  if (options.clients == 0) {
    throw std::invalid_argument("RunWireLoad: need at least one client");
  }
  if (options.batch_size == 0) {
    throw std::invalid_argument("RunWireLoad: batch_size must be >= 1");
  }
  const std::uint64_t total =
      options.request_budget > 0
          ? std::min<std::uint64_t>(options.request_budget,
                                    trace.requests.size())
          : trace.requests.size();
  const std::size_t clients = options.clients;

  auto drive = [&](std::size_t c, DriverState* st) {
    // ServeTrace's chunking rule: concatenating the chunks in client
    // order yields the capped trace.
    const std::uint64_t begin = total * c / clients;
    const std::uint64_t end = total * (c + 1) / clients;
    WireClient client;
    if (!client.Connect(options.addr, options.port)) {
      ++st->tally.failed_connects;
      const std::uint64_t reqs = end - begin;
      st->tally.submitted_requests += reqs;
      st->tally.conn_lost_requests += reqs;
      for (std::uint64_t b = begin; b < end; b += options.batch_size) {
        ++st->tally.submitted_batches;
        ++st->tally.conn_lost_batches;
      }
      return;
    }
    ++st->tally.connections;
    for (std::uint64_t off = begin; off < end; off += options.batch_size) {
      const std::size_t n = static_cast<std::size_t>(
          std::min<std::uint64_t>(options.batch_size, end - off));
      ++st->tally.submitted_batches;
      st->tally.submitted_requests += n;
      const auto t0 = Clock::now();
      std::uint16_t code = client.Call(&trace.requests[off], n);
      if (code == WireClient::kWireConnClosed && !client.connected()) {
        // Transport died (e.g. net:reset): this batch's reply is gone.
        // Reconnect once and move on to the next batch.
        ++st->tally.conn_lost_batches;
        st->tally.conn_lost_requests += n;
        if (client.Connect(options.addr, options.port)) {
          ++st->tally.connections;
          continue;
        }
        ++st->tally.failed_connects;
        for (std::uint64_t rest = off + n; rest < end;
             rest += options.batch_size) {
          const std::size_t m = static_cast<std::size_t>(
              std::min<std::uint64_t>(options.batch_size, end - rest));
          ++st->tally.submitted_batches;
          st->tally.submitted_requests += m;
          ++st->tally.conn_lost_batches;
          st->tally.conn_lost_requests += m;
        }
        return;
      }
      st->latencies_us.push_back(
          std::chrono::duration<double, std::micro>(Clock::now() - t0)
              .count());
      switch (code) {
        case kWireApplied:
          ++st->tally.applied_batches;
          st->tally.applied_requests += n;
          break;
        case kWireShed:
          ++st->tally.shed_batches;
          st->tally.shed_requests += n;
          break;
        case kWireTimedOut:
          ++st->tally.timed_out_batches;
          st->tally.timed_out_requests += n;
          break;
        case kWireExpired:
          ++st->tally.expired_batches;
          st->tally.expired_requests += n;
          break;
        case kWireStopped:
          ++st->tally.stopped_batches;
          st->tally.stopped_requests += n;
          break;
        default:
          // A typed error frame (or server_busy): the batch was not
          // served and the server closed the connection.
          ++st->tally.wire_errors;
          ++st->tally.conn_lost_batches;
          st->tally.conn_lost_requests += n;
          if (!client.connected() &&
              client.Connect(options.addr, options.port)) {
            ++st->tally.connections;
          }
          break;
      }
    }
    client.Close();
  };

  std::vector<DriverState> states(clients);
  const auto t0 = Clock::now();
  if (options.deterministic || clients == 1) {
    // Sequential client order: the wire replay of the strict-client-
    // order stream the deterministic consumer drains.
    for (std::size_t c = 0; c < clients; ++c) drive(c, &states[c]);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] { drive(c, &states[c]); });
    }
    for (auto& t : threads) t.join();
  }
  const double wall =
      std::chrono::duration<double>(Clock::now() - t0).count();

  WireLoadResult out;
  std::vector<double> latencies;
  for (auto& st : states) {
    const WireLoadResult& t = st.tally;
    out.submitted_batches += t.submitted_batches;
    out.submitted_requests += t.submitted_requests;
    out.applied_batches += t.applied_batches;
    out.applied_requests += t.applied_requests;
    out.shed_batches += t.shed_batches;
    out.shed_requests += t.shed_requests;
    out.timed_out_batches += t.timed_out_batches;
    out.timed_out_requests += t.timed_out_requests;
    out.expired_batches += t.expired_batches;
    out.expired_requests += t.expired_requests;
    out.stopped_batches += t.stopped_batches;
    out.stopped_requests += t.stopped_requests;
    out.conn_lost_batches += t.conn_lost_batches;
    out.conn_lost_requests += t.conn_lost_requests;
    out.wire_errors += t.wire_errors;
    out.connections += t.connections;
    out.failed_connects += t.failed_connects;
    latencies.insert(latencies.end(), st.latencies_us.begin(),
                     st.latencies_us.end());
  }
  out.wall_seconds = wall;
  out.throughput_rps =
      wall > 0.0 ? static_cast<double>(out.applied_requests) / wall : 0.0;
  out.p50_us = Percentile(&latencies, 0.50);
  out.p99_us = Percentile(&latencies, 0.99);
  return out;
}

}  // namespace clic::server::net
