// Epoll network front end for the sharded cache server: one acceptor
// thread plus N connection (io) threads parse wire frames
// (server/net/wire_format.h) into request batches and funnel them
// through the existing ClientPort submit path, mapping every admission
// outcome back to a wire status code so backpressure is visible to
// clients instead of silent.
//
// Topology and ownership: each accepted connection claims one
// CacheServer client port (the connection table is bounded by
// conn_limit == the server's port count; a full table sheds at accept
// time with a typed server_busy reply). A connection is owned by
// exactly one io thread — its `io` ThreadRole capability guards all
// per-connection parse/write state, so the data path (read -> parse ->
// Submit -> reply) takes no mutex at all. Mutexes survive only on the
// control path: the acceptor handing a new connection to its io
// thread's inbox, and the free-slot list at accept/close. That honours
// the CacheServer producer contract (at most one producer thread per
// client id): only the owning io thread ever submits on a connection's
// slot, and slot recycling hands the port to the next connection
// through the free-list mutex (a happens-before edge).
//
// Robustness model:
//   * fail-closed parsing — a malformed frame gets a typed error reply
//     and the connection closes; every length is cross-checked and
//     config-bounded before allocation (see wire_format.h);
//   * per-connection deadlines — a partial frame older than
//     read_timeout_ms is slowloris-evicted (typed read_timeout reply,
//     close); replies unflushed past write_timeout_ms evict the
//     connection (a reader too slow to take its own acks);
//   * bounded connection table — accept-time shedding, never unbounded
//     connection state;
//   * graceful drain — Drain() stops accepting, stops the cache server
//     (so every late submit lands in the ledger's `stopped` bucket with
//     exact accounting), flushes frames already received into that
//     bucket via the normal submit path, replies `stopped`, closes.
//
// Deterministic mode (options.server.deterministic): one io thread,
// slots assigned in accept order, and a cleanly closed connection
// Finish()es its port — so sequentially driven connections replay
// exactly the strict-client-order stream the deterministic consumer
// expects, and wire-level serving verifies bit-identical against
// per-shard sequential Simulate() (clic_serve --connect --verify).
//
// Fault injection: the plan's net: clauses (fault_injection.h) fire on
// logical counters — reply index (torn writes), read-event index
// (partial reads), accept index (resets, accept stalls) — never on
// wall-clock time.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "server/cache_server.h"
#include "server/net/wire_format.h"

namespace clic::server::net {

struct NetServerOptions {
  /// IPv4 address to bind (dotted quad). Loopback by default: serving
  /// beyond localhost is an explicit decision.
  std::string listen_addr = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Connection (io) threads; each owns a disjoint set of connections.
  unsigned io_threads = 1;
  /// Max concurrent connections == cache-server client ports. A full
  /// table sheds new connections at accept time (server_busy + close).
  std::size_t conn_limit = 64;
  /// > 0: evict a connection whose partial frame is older than this
  /// (the slowloris timer). 0 = no read deadline.
  double read_timeout_ms = 0.0;
  /// > 0: evict a connection with replies unflushed longer than this.
  double write_timeout_ms = 0.0;
  /// Frame parser bound: max requests per batch frame.
  std::size_t max_batch = 4096;
  /// Embedded cache-server configuration; the fault plan (including
  /// net: clauses) rides on server.fault.
  ServerOptions server;
};

/// Wire-edge accounting, disjoint from (and additive to) the cache
/// server's admission ledger: rejected_* count frames that failed
/// parsing and therefore never reached Submit.
struct NetStats {
  std::uint64_t accepted = 0;
  std::uint64_t accept_shed = 0;        // connections refused: table full
  std::uint64_t frames = 0;             // well-formed batch frames
  std::uint64_t frame_requests = 0;
  std::uint64_t rejected_frames = 0;    // malformed frames (typed error)
  std::uint64_t rejected_requests = 0;  // requests inside them (0 when the
                                        // header itself was unreadable)
  std::uint64_t evicted_read = 0;       // slowloris evictions
  std::uint64_t evicted_write = 0;      // slow-reader evictions
  std::uint64_t drained_frames = 0;     // frames flushed to stopped at drain
  std::uint64_t resets_injected = 0;    // net:reset fault closes
  std::uint64_t torn_writes = 0;        // net:torn-write activations
  std::uint64_t partial_reads = 0;      // net:partial-read activations
  std::uint64_t accept_stalls = 0;      // net:accept-stall activations
};

class NetServer {
 public:
  /// Binds, listens, starts the acceptor and io threads (and the
  /// embedded CacheServer's consumers). Throws std::invalid_argument
  /// for unusable options (zero io threads / conn limit, more than one
  /// io thread in deterministic mode, unparseable listen address) and
  /// std::runtime_error when bind/listen fails.
  explicit NetServer(const NetServerOptions& options);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// The bound port (the ephemeral one when options.port was 0).
  std::uint16_t port() const { return port_; }

  /// Graceful drain (Stop/SIGTERM path): stop accepting, stop the cache
  /// server (late submits -> ledger `stopped`, exact accounting), flush
  /// frames already received into that bucket through the normal submit
  /// path with `stopped` replies, close every connection, join all
  /// threads. Idempotent; called by the destructor if needed.
  void Drain();

  /// The embedded cache server — stats are quiescent after Drain().
  const CacheServer& cache() const { return *server_; }

  /// Wire-edge counters; quiescent after Drain().
  NetStats Stats() const;

 private:
  /// One accepted connection. Owned by exactly one io thread; the `io`
  /// ThreadRole capability is that ownership made compile-checkable —
  /// every function touching the parse/write state declares
  /// CLIC_REQUIRES(conn.io), and only the owning io thread (or the
  /// accept-time setup that runs before the handoff) acquires it.
  struct Connection {
    /// "I am this connection's owning io thread" (or its pre-handoff
    /// acceptor setup / post-join teardown).
    ThreadRole io;
    int fd = -1;
    std::size_t slot = 0;          // cache-server client port
    std::uint64_t accept_index = 0;  // 1-based; drives net:reset/stall
    int epfd = -1;                   // owning thread's epoll fd (set at adoption)
    FrameParser parser CLIC_GUARDED_BY(io);
    ParsedFrame frame CLIC_GUARDED_BY(io);  // decode scratch, reused per frame
    std::string outbuf CLIC_GUARDED_BY(io);         // unflushed replies
    std::uint64_t reads CLIC_GUARDED_BY(io) = 0;    // read events (faults)
    std::uint64_t replies CLIC_GUARDED_BY(io) = 0;  // replies (faults)
    std::int64_t partial_since_ns CLIC_GUARDED_BY(io) = 0;  // slowloris timer
    std::int64_t write_since_ns CLIC_GUARDED_BY(io) = 0;
    bool want_write CLIC_GUARDED_BY(io) = false;  // EPOLLOUT registered
    bool closed CLIC_GUARDED_BY(io) = false;

    Connection(std::size_t max_batch) : parser(max_batch) {}
  };

  /// One io thread: its epoll set, a wake eventfd, the connections it
  /// owns (thread-local — only the io thread itself touches `owned`
  /// after adoption), and the acceptor->io handoff inbox (control
  /// path).
  struct IoThread {
    int epfd = -1;
    int wake_fd = -1;
    std::thread thread;
    std::vector<std::unique_ptr<Connection>> owned;  // io-thread-local
    // clic-lint: begin-allow(no-mutex-data-path) reason=acceptor-to-io-thread connection handoff inbox; touched once per accepted connection, never per frame
    Mutex mu;
    std::vector<std::unique_ptr<Connection>> inbox CLIC_GUARDED_BY(mu);
    // clic-lint: end-allow(no-mutex-data-path)
  };

  void AcceptLoop();
  void IoLoop(std::size_t k);
  void AdoptNewConnections(IoThread& t);
  void HandleReadable(Connection& conn) CLIC_REQUIRES(conn.io);
  void SubmitFrame(Connection& conn) CLIC_REQUIRES(conn.io);
  void SendReply(Connection& conn, FrameType type, std::uint16_t code,
                 std::uint64_t seq) CLIC_REQUIRES(conn.io);
  /// Writes up to `limit` bytes of outbuf (0 = all); leftovers register
  /// EPOLLOUT and start the write-deadline clock.
  void FlushWrites(Connection& conn, std::size_t limit)
      CLIC_REQUIRES(conn.io);
  void CloseConnection(Connection& conn, bool clean)
      CLIC_REQUIRES(conn.io);
  void SweepDeadlines(IoThread& t, std::int64_t now_ns);
  void DrainConnection(Connection& conn) CLIC_REQUIRES(conn.io);

  NetServerOptions options_;
  std::unique_ptr<CacheServer> server_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::vector<std::unique_ptr<IoThread>> io_;
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};
  bool drained_ = false;  // main-thread flag; Drain is not concurrent

  // Bounded connection table: free cache-server port slots. Control
  // path only (accept / close).
  // clic-lint: begin-allow(no-mutex-data-path) reason=free-slot list touched only at accept and connection close, never per frame
  Mutex slots_mu_;
  std::vector<std::size_t> free_slots_ CLIC_GUARDED_BY(slots_mu_);
  // clic-lint: end-allow(no-mutex-data-path)

  // Wire-edge counters (multi-thread writers; relaxed increments,
  // aggregated quiescently in Stats()).
  struct Counters {
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> accept_shed{0};
    std::atomic<std::uint64_t> frames{0};
    std::atomic<std::uint64_t> frame_requests{0};
    std::atomic<std::uint64_t> rejected_frames{0};
    std::atomic<std::uint64_t> rejected_requests{0};
    std::atomic<std::uint64_t> evicted_read{0};
    std::atomic<std::uint64_t> evicted_write{0};
    std::atomic<std::uint64_t> drained_frames{0};
    std::atomic<std::uint64_t> resets_injected{0};
    std::atomic<std::uint64_t> torn_writes{0};
    std::atomic<std::uint64_t> partial_reads{0};
    std::atomic<std::uint64_t> accept_stalls{0};
  };
  Counters counters_;
};

}  // namespace clic::server::net
