#include "server/net/net_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

namespace clic::server::net {
namespace {

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Counter-triggered sleep (accept stalls): wall-clock *duration*, but
/// the trigger is the logical accept index — replaying the plan stalls
/// the same accepts. Slices the nap so a concurrent Drain() never waits
/// out a long stall.
void SlicedSleep(double ms, const std::atomic<bool>& stop) {
  const std::int64_t deadline =
      NowNs() + static_cast<std::int64_t>(ms * 1e6);
  while (NowNs() < deadline && !stop.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

std::uint16_t WireCodeFor(SubmitResult r) {
  switch (r) {
    case SubmitResult::kApplied: return kWireApplied;
    case SubmitResult::kShed: return kWireShed;
    case SubmitResult::kTimedOut: return kWireTimedOut;
    case SubmitResult::kExpired: return kWireExpired;
    case SubmitResult::kStopped: return kWireStopped;
    case SubmitResult::kEnqueued: return kWireApplied;  // unreachable:
        // the net path uses closed-loop Submit only
  }
  return kWireApplied;
}

}  // namespace

NetServer::NetServer(const NetServerOptions& options) : options_(options) {
  if (options_.io_threads == 0) {
    throw std::invalid_argument("NetServer: need at least one io thread");
  }
  if (options_.conn_limit == 0) {
    throw std::invalid_argument(
        "NetServer: need a connection table (conn_limit >= 1)");
  }
  if (options_.server.deterministic && options_.io_threads != 1) {
    throw std::invalid_argument(
        "NetServer: deterministic mode runs exactly one io thread "
        "(strict accept-order slot assignment)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.listen_addr.c_str(), &addr.sin_addr) != 1) {
    throw std::invalid_argument("NetServer: unparseable listen address '" +
                                options_.listen_addr +
                                "' (want a dotted quad like 127.0.0.1)");
  }

  server_ = std::make_unique<CacheServer>(options_.server,
                                          options_.conn_limit);
  {
    // clic-lint: begin-allow(no-mutex-data-path) reason=constructor-time slot-table setup, no traffic yet
    MutexLock lock(slots_mu_);
    // clic-lint: end-allow(no-mutex-data-path)
    free_slots_.reserve(options_.conn_limit);
    // Reverse order so pop_back hands out slot 0 first: deterministic
    // mode assigns ports in accept order.
    for (std::size_t s = options_.conn_limit; s > 0; --s) {
      free_slots_.push_back(s - 1);
    }
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("NetServer: socket: ") +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 128) < 0) {
    const std::string what = std::string("NetServer: cannot listen on ") +
                             options_.listen_addr + ":" +
                             std::to_string(options_.port) + ": " +
                             std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(what);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  io_.reserve(options_.io_threads);
  for (unsigned k = 0; k < options_.io_threads; ++k) {
    auto t = std::make_unique<IoThread>();
    t->epfd = ::epoll_create1(EPOLL_CLOEXEC);
    t->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = nullptr;  // nullptr marks the wake eventfd
    ::epoll_ctl(t->epfd, EPOLL_CTL_ADD, t->wake_fd, &ev);
    io_.push_back(std::move(t));
  }
  for (unsigned k = 0; k < options_.io_threads; ++k) {
    io_[k]->thread = std::thread([this, k] { IoLoop(k); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
}

NetServer::~NetServer() {
  Drain();
  for (auto& t : io_) {
    if (t->epfd >= 0) ::close(t->epfd);
    if (t->wake_fd >= 0) ::close(t->wake_fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void NetServer::AcceptLoop() {
  const fault::FaultPlan* plan = options_.server.fault;
  const int aepfd = ::epoll_create1(EPOLL_CLOEXEC);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(aepfd, EPOLL_CTL_ADD, listen_fd_, &ev);
  std::uint64_t accept_count = 0;
  while (!stopping_.load(std::memory_order_acquire)) {
    epoll_event out{};
    const int n = ::epoll_wait(aepfd, &out, 1, 50);
    if (n <= 0) continue;
    for (;;) {
      const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) break;  // EAGAIN, or a transient accept error
      ++accept_count;
      if (plan != nullptr && plan->net_accept_stall_every > 0 &&
          accept_count % plan->net_accept_stall_every == 0) {
        counters_.accept_stalls.fetch_add(1, std::memory_order_relaxed);
        SlicedSleep(plan->net_accept_stall_ms, stopping_);
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      bool have_slot = false;
      std::size_t slot = 0;
      {
        // clic-lint: begin-allow(no-mutex-data-path) reason=bounded connection table claim, once per accept
        MutexLock lock(slots_mu_);
        // clic-lint: end-allow(no-mutex-data-path)
        if (!free_slots_.empty()) {
          slot = free_slots_.back();
          free_slots_.pop_back();
          have_slot = true;
        }
      }
      if (!have_slot) {
        // Accept-time shedding: the table is bounded; tell the client
        // why before closing instead of leaving it to guess.
        counters_.accept_shed.fetch_add(1, std::memory_order_relaxed);
        std::string busy;
        AppendReplyFrame(FrameType::kError, kWireServerBusy, 0, &busy);
        (void)!::write(fd, busy.data(), busy.size());
        ::close(fd);
        continue;
      }
      counters_.accepted.fetch_add(1, std::memory_order_relaxed);
      auto conn = std::make_unique<Connection>(options_.max_batch);
      conn->fd = fd;
      conn->slot = slot;
      conn->accept_index = accept_count;
      IoThread& t = *io_[(accept_count - 1) % io_.size()];
      {
        // clic-lint: begin-allow(no-mutex-data-path) reason=acceptor-to-io-thread handoff, once per accept
        MutexLock lock(t.mu);
        // clic-lint: end-allow(no-mutex-data-path)
        t.inbox.push_back(std::move(conn));
      }
      const std::uint64_t wake = 1;
      (void)!::write(t.wake_fd, &wake, sizeof(wake));
    }
  }
  ::close(aepfd);
}

void NetServer::AdoptNewConnections(IoThread& t) {
  std::vector<std::unique_ptr<Connection>> fresh;
  {
    // clic-lint: begin-allow(no-mutex-data-path) reason=inbox adoption, once per accepted connection
    MutexLock lock(t.mu);
    // clic-lint: end-allow(no-mutex-data-path)
    fresh.swap(t.inbox);
  }
  for (auto& conn : fresh) {
    conn->io.Acquire();
    conn->epfd = t.epfd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = conn.get();
    ::epoll_ctl(t.epfd, EPOLL_CTL_ADD, conn->fd, &ev);
    conn->io.Release();
    t.owned.push_back(std::move(conn));
  }
}

void NetServer::IoLoop(std::size_t k) {
  IoThread& t = *io_[k];
  const bool has_deadlines =
      options_.read_timeout_ms > 0.0 || options_.write_timeout_ms > 0.0;
  int tick_ms = 100;
  if (has_deadlines) {
    double shortest = 1e9;
    if (options_.read_timeout_ms > 0.0) {
      shortest = std::min(shortest, options_.read_timeout_ms);
    }
    if (options_.write_timeout_ms > 0.0) {
      shortest = std::min(shortest, options_.write_timeout_ms);
    }
    tick_ms = std::max(1, static_cast<int>(shortest / 4.0));
  }
  epoll_event events[64];
  for (;;) {
    AdoptNewConnections(t);
    if (stopping_.load(std::memory_order_acquire)) break;
    const int n = ::epoll_wait(t.epfd, events, 64, tick_ms);
    for (int i = 0; i < n; ++i) {
      Connection* conn = static_cast<Connection*>(events[i].data.ptr);
      if (conn == nullptr) {
        std::uint64_t drainv = 0;
        (void)!::read(t.wake_fd, &drainv, sizeof(drainv));
        continue;
      }
      conn->io.Acquire();
      if (!conn->closed) {
        if (events[i].events & EPOLLIN) HandleReadable(*conn);
        if (!conn->closed && (events[i].events & EPOLLOUT)) {
          FlushWrites(*conn, 0);
        }
        if (!conn->closed &&
            (events[i].events & (EPOLLERR | EPOLLHUP)) &&
            !(events[i].events & EPOLLIN)) {
          CloseConnection(*conn, false);
        }
      }
      conn->io.Release();
    }
    if (has_deadlines) SweepDeadlines(t, NowNs());
    // Deferred removal: a closed connection's pointer may still sit in
    // this iteration's event array, so destruction waits for the end of
    // the loop body.
    for (std::size_t i = t.owned.size(); i > 0; --i) {
      Connection& conn = *t.owned[i - 1];
      conn.io.Acquire();
      const bool gone = conn.closed;
      conn.io.Release();
      if (gone) t.owned.erase(t.owned.begin() + (i - 1));
    }
  }
  // Drain path: flush what each connection already sent into the
  // stopped bucket (the cache server is stopped by now, so every
  // submit lands there with exact accounting), reply, close.
  AdoptNewConnections(t);
  for (auto& conn : t.owned) {
    conn->io.Acquire();
    if (!conn->closed) DrainConnection(*conn);
    conn->io.Release();
  }
  t.owned.clear();
}

void NetServer::HandleReadable(Connection& conn) {
  const fault::FaultPlan* plan = options_.server.fault;
  std::uint8_t buf[16384];
  for (;;) {
    std::size_t want = sizeof(buf);
    ++conn.reads;
    if (plan != nullptr && plan->net_partial_read_every > 0 &&
        conn.reads % plan->net_partial_read_every == 0) {
      // Deterministically exercise the partial-frame path: this read
      // event drains a single byte; level-triggered epoll re-arms for
      // the rest.
      counters_.partial_reads.fetch_add(1, std::memory_order_relaxed);
      want = 1;
    }
    const ssize_t r = ::read(conn.fd, buf, want);
    if (r == 0) {
      // EOF. A stream cut mid-frame is malformed input — count it as a
      // rejected frame even though no error reply can reach the peer.
      if (conn.parser.HasPartial()) {
        counters_.rejected_frames.fetch_add(1, std::memory_order_relaxed);
        CloseConnection(conn, false);
      } else {
        CloseConnection(conn, true);
      }
      return;
    }
    if (r < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      CloseConnection(conn, false);
      return;
    }
    const std::uint8_t* p = buf;
    std::size_t len = static_cast<std::size_t>(r);
    for (;;) {
      const ParseStatus st = conn.parser.Consume(&p, &len, &conn.frame);
      if (st == ParseStatus::kNeedMore) break;
      if (st == ParseStatus::kError) {
        // Fail closed: typed error reply, then the connection dies.
        counters_.rejected_frames.fetch_add(1, std::memory_order_relaxed);
        counters_.rejected_requests.fetch_add(
            conn.parser.rejected_batch_count(), std::memory_order_relaxed);
        SendReply(conn, FrameType::kError, conn.parser.error_code(),
                  conn.parser.frames() + 1);
        CloseConnection(conn, false);
        return;
      }
      if (conn.frame.type != FrameType::kBatch) {
        // Status/error frames flow server -> client only; a client
        // sending one is a protocol violation.
        counters_.rejected_frames.fetch_add(1, std::memory_order_relaxed);
        SendReply(conn, FrameType::kError, kWireBadType, conn.frame.seq);
        CloseConnection(conn, false);
        return;
      }
      counters_.frames.fetch_add(1, std::memory_order_relaxed);
      counters_.frame_requests.fetch_add(conn.frame.requests.size(),
                                         std::memory_order_relaxed);
      SubmitFrame(conn);
      if (conn.closed) return;
      if (plan != nullptr && plan->net_reset_every > 0 &&
          conn.accept_index % plan->net_reset_every == 0 &&
          conn.parser.frames() == 1) {
        // net:reset — tear this connection down right after its first
        // reply, RST instead of FIN.
        counters_.resets_injected.fetch_add(1, std::memory_order_relaxed);
        const linger rst{1, 0};
        ::setsockopt(conn.fd, SOL_SOCKET, SO_LINGER, &rst, sizeof(rst));
        CloseConnection(conn, false);
        return;
      }
    }
    // Partial-frame timer for the slowloris sweep.
    if (conn.parser.HasPartial()) {
      if (conn.partial_since_ns == 0) conn.partial_since_ns = NowNs();
    } else {
      conn.partial_since_ns = 0;
    }
  }
}

void NetServer::SubmitFrame(Connection& conn) {
  const SubmitResult res =
      server_->Submit(conn.slot, conn.frame.requests.data(),
                      conn.frame.requests.size());
  SendReply(conn, FrameType::kStatus, WireCodeFor(res), conn.frame.seq);
}

void NetServer::SendReply(Connection& conn, FrameType type,
                          std::uint16_t code, std::uint64_t seq) {
  AppendReplyFrame(type, code, seq, &conn.outbuf);
  ++conn.replies;
  const fault::FaultPlan* plan = options_.server.fault;
  if (plan != nullptr && plan->net_torn_write_every > 0 &&
      conn.replies % plan->net_torn_write_every == 0) {
    // net:torn-write — split this reply across two send() calls; the
    // client parser must reassemble.
    counters_.torn_writes.fetch_add(1, std::memory_order_relaxed);
    FlushWrites(conn, conn.outbuf.size() / 2);
  }
  FlushWrites(conn, 0);
}

void NetServer::FlushWrites(Connection& conn, std::size_t limit) {
  if (conn.closed) return;
  std::size_t budget = limit == 0 ? conn.outbuf.size() : limit;
  std::size_t written = 0;
  while (written < budget && written < conn.outbuf.size()) {
    const ssize_t w = ::write(conn.fd, conn.outbuf.data() + written,
                              std::min(budget, conn.outbuf.size()) - written);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConnection(conn, false);
      return;
    }
    written += static_cast<std::size_t>(w);
  }
  if (written > 0) conn.outbuf.erase(0, written);
  const bool pending = !conn.outbuf.empty();
  if (pending && conn.write_since_ns == 0) conn.write_since_ns = NowNs();
  if (!pending) conn.write_since_ns = 0;
  if (pending != conn.want_write && conn.epfd >= 0) {
    epoll_event ev{};
    ev.events = pending ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
    ev.data.ptr = &conn;
    ::epoll_ctl(conn.epfd, EPOLL_CTL_MOD, conn.fd, &ev);
    conn.want_write = pending;
  }
}

void NetServer::CloseConnection(Connection& conn, bool clean) {
  if (conn.closed) return;
  conn.closed = true;
  if (conn.epfd >= 0) ::epoll_ctl(conn.epfd, EPOLL_CTL_DEL, conn.fd, nullptr);
  ::close(conn.fd);
  conn.fd = -1;
  if (options_.server.deterministic) {
    // Deterministic mode: a closed connection ends its port's stream —
    // the single consumer's strict-client-order drain advances past it.
    // Slots are never recycled (accept order == port order).
    server_->Finish(conn.slot);
  } else {
    // clic-lint: begin-allow(no-mutex-data-path) reason=bounded connection table release, once per close
    MutexLock lock(slots_mu_);
    // clic-lint: end-allow(no-mutex-data-path)
    free_slots_.push_back(conn.slot);
  }
  (void)clean;
}

void NetServer::SweepDeadlines(IoThread& t, std::int64_t now_ns) {
  const std::int64_t read_limit =
      static_cast<std::int64_t>(options_.read_timeout_ms * 1e6);
  const std::int64_t write_limit =
      static_cast<std::int64_t>(options_.write_timeout_ms * 1e6);
  for (auto& conn_ptr : t.owned) {
    Connection& conn = *conn_ptr;
    conn.io.Acquire();
    if (!conn.closed) {
      if (read_limit > 0 && conn.partial_since_ns != 0 &&
          now_ns - conn.partial_since_ns > read_limit) {
        // Slowloris eviction: a partial frame has been dangling past
        // the read deadline. Best-effort typed reply, then close.
        counters_.evicted_read.fetch_add(1, std::memory_order_relaxed);
        SendReply(conn, FrameType::kError, kWireReadTimeout, 0);
        if (!conn.closed) CloseConnection(conn, false);
      } else if (write_limit > 0 && conn.write_since_ns != 0 &&
                 now_ns - conn.write_since_ns > write_limit) {
        // The peer will not take its own replies; drop it.
        counters_.evicted_write.fetch_add(1, std::memory_order_relaxed);
        CloseConnection(conn, false);
      }
    }
    conn.io.Release();
  }
}

void NetServer::DrainConnection(Connection& conn) {
  // One final non-blocking read pass: frames the client already sent
  // are flushed through the normal submit path — the stopped cache
  // server counts each as submitted + stopped, keeping the ledger
  // exact — and answered with a `stopped` reply.
  std::uint8_t buf[16384];
  for (;;) {
    const ssize_t r = ::read(conn.fd, buf, sizeof(buf));
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) break;
    const std::uint8_t* p = buf;
    std::size_t len = static_cast<std::size_t>(r);
    for (;;) {
      const ParseStatus st = conn.parser.Consume(&p, &len, &conn.frame);
      if (st == ParseStatus::kNeedMore) break;
      if (st == ParseStatus::kError) {
        counters_.rejected_frames.fetch_add(1, std::memory_order_relaxed);
        SendReply(conn, FrameType::kError, conn.parser.error_code(),
                  conn.parser.frames() + 1);
        CloseConnection(conn, false);
        return;
      }
      if (conn.frame.type == FrameType::kBatch) {
        counters_.frames.fetch_add(1, std::memory_order_relaxed);
        counters_.frame_requests.fetch_add(conn.frame.requests.size(),
                                           std::memory_order_relaxed);
        counters_.drained_frames.fetch_add(1, std::memory_order_relaxed);
        SubmitFrame(conn);
        if (conn.closed) return;
      }
    }
  }
  FlushWrites(conn, 0);
  if (!conn.closed) CloseConnection(conn, true);
}

void NetServer::Drain() {
  if (drained_) return;
  drained_ = true;
  stopping_.store(true, std::memory_order_release);
  if (acceptor_.joinable()) acceptor_.join();
  // Stop the cache server first: every submit from here on lands in the
  // ledger's `stopped` bucket, so the io threads' drain pass can flush
  // in-flight frames with exact accounting.
  server_->Stop();
  for (auto& t : io_) {
    const std::uint64_t wake = 1;
    (void)!::write(t->wake_fd, &wake, sizeof(wake));
  }
  for (auto& t : io_) {
    if (t->thread.joinable()) t->thread.join();
  }
}

NetStats NetServer::Stats() const {
  NetStats s;
  s.accepted = counters_.accepted.load(std::memory_order_relaxed);
  s.accept_shed = counters_.accept_shed.load(std::memory_order_relaxed);
  s.frames = counters_.frames.load(std::memory_order_relaxed);
  s.frame_requests =
      counters_.frame_requests.load(std::memory_order_relaxed);
  s.rejected_frames =
      counters_.rejected_frames.load(std::memory_order_relaxed);
  s.rejected_requests =
      counters_.rejected_requests.load(std::memory_order_relaxed);
  s.evicted_read = counters_.evicted_read.load(std::memory_order_relaxed);
  s.evicted_write = counters_.evicted_write.load(std::memory_order_relaxed);
  s.drained_frames =
      counters_.drained_frames.load(std::memory_order_relaxed);
  s.resets_injected =
      counters_.resets_injected.load(std::memory_order_relaxed);
  s.torn_writes = counters_.torn_writes.load(std::memory_order_relaxed);
  s.partial_reads = counters_.partial_reads.load(std::memory_order_relaxed);
  s.accept_stalls = counters_.accept_stalls.load(std::memory_order_relaxed);
  return s;
}

}  // namespace clic::server::net
