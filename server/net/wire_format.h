// Wire frame format for the network front end: a compact
// length-prefixed binary protocol carrying batches of the same packed
// 12-byte request records the trace cache stores (sim/trace_io.cc),
// with the same fail-closed discipline — magic, version, every length
// cross-checked against the header AND bounded by configuration before
// a single payload byte is buffered, and a running FNV-1a checksum over
// the whole frame compared last.
//
//   Request/batch frame (client -> server), little-endian:
//     u32 magic        0x434C4946 ("CLIF")
//     u8  version      1
//     u8  type         1 = batch
//     u16 count        requests in the batch, 1 .. max_batch
//     u32 payload_len  must equal count * 12 (redundant on purpose:
//                      a bit flip in either field breaks the cross
//                      check at header time, before any allocation)
//     u64 seq          1-based frame sequence within the connection
//     payload          count packed records:
//                        u32 page, u32 hint_set, u16 client,
//                        u8 op (<= 1), u8 write_kind (<= 2)
//     u64 checksum     FNV-1a over header + payload
//
//   Status / error frame (server -> client): same header with type 2
//   (status) or 3 (error), `count` carrying a WireCode, payload_len 0,
//   and seq echoing the request frame it answers (errors echo the
//   frame counter at the point of failure). 28 bytes total.
//
// The parser is incremental (sockets deliver arbitrary byte chunks —
// torn writes and partial reads are the normal case, not the
// exception) and fail-closed: the first malformed header or checksum
// mismatch poisons the parser with a typed error; the connection must
// send the error frame and close. Hint-id sanity is deliberately NOT
// checked here: the server's hint-sanity guard quarantines out-of-
// bound hint ids with exact accounting (server/cache_server.h), which
// degrades service instead of dropping the connection.
//
// This header depends only on core/trace.h so the client side links
// without the server.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/trace.h"

namespace clic::server::net {

inline constexpr std::uint32_t kFrameMagic = 0x434C4946u;  // "CLIF"
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 20;
inline constexpr std::size_t kFrameChecksumBytes = 8;
inline constexpr std::size_t kWireRequestBytes = 12;
/// Hard ceiling on requests per frame (u16 count field); the parser's
/// configured max_batch may only lower it.
inline constexpr std::size_t kWireMaxBatch = 0xFFFF;

enum class FrameType : std::uint8_t {
  kBatch = 1,   // client -> server: a batch of requests
  kStatus = 2,  // server -> client: admission outcome for one batch
  kError = 3,   // server -> client: typed parse/served error, then close
};

/// Status codes carried in the `count` field of status/error frames.
/// 0..15 map admission outcomes (SubmitResult) so backpressure is
/// visible on the wire; 16+ are frame-level errors that precede (and
/// explain) a connection close.
enum WireCode : std::uint16_t {
  kWireApplied = 0,
  kWireShed = 1,
  kWireTimedOut = 2,
  kWireExpired = 3,
  kWireStopped = 4,
  kWireBadMagic = 16,
  kWireBadVersion = 17,
  kWireBadType = 18,
  kWireBadCount = 19,
  kWireBadLength = 20,
  kWireBadChecksum = 21,
  kWireBadPayload = 22,
  kWireServerBusy = 23,   // accept-time shed: connection table full
  kWireReadTimeout = 24,  // slowloris eviction: partial frame too old
};
const char* WireCodeName(std::uint16_t code);

/// One decoded frame. For kBatch, `code` is the request count and
/// `requests` holds the records; for kStatus/kError, `code` is the
/// WireCode and `requests` is empty.
struct ParsedFrame {
  FrameType type = FrameType::kBatch;
  std::uint16_t code = 0;
  std::uint64_t seq = 0;
  std::vector<Request> requests;
};

/// Appends one batch frame for requests [reqs, reqs + n) to `out`.
/// n must be 1 .. kWireMaxBatch (asserted).
void AppendBatchFrame(const Request* reqs, std::size_t n, std::uint64_t seq,
                      std::string* out);

/// Appends one 28-byte status/error frame.
void AppendReplyFrame(FrameType type, std::uint16_t code, std::uint64_t seq,
                      std::string* out);

enum class ParseStatus : std::uint8_t {
  kNeedMore,  // no complete frame in the bytes consumed so far
  kFrame,     // *out holds one decoded frame; call again for more
  kError,     // malformed input; parser poisoned, connection must close
};

/// Incremental fail-closed frame parser. Feed socket bytes through
/// Consume(); it buffers at most one partial frame (header fixed-size,
/// payload reserved only after the header's cross-checked, config-
/// bounded lengths validate — a patched giant length field is rejected
/// while still 20 bytes in). After kError the parser stays poisoned:
/// error_code()/error() describe the first failure.
class FrameParser {
 public:
  /// `max_batch` bounds `count` (and with it the payload allocation) in
  /// accepted batch frames; clamped to kWireMaxBatch.
  explicit FrameParser(std::size_t max_batch);

  /// Consumes bytes from *data/*len (advancing both) until one frame
  /// completes, the input runs dry, or a malformed byte poisons the
  /// parser. Call in a loop while it returns kFrame.
  ParseStatus Consume(const std::uint8_t** data, std::size_t* len,
                      ParsedFrame* out);

  /// Typed error (a WireCode >= 16) after kError.
  std::uint16_t error_code() const { return error_code_; }
  const std::string& error() const { return error_; }

  /// True when a partial frame is buffered — the slowloris signal the
  /// per-connection read deadline watches.
  bool HasPartial() const { return have_ > 0 || body_.size() > 0; }

  /// Completed (fully validated) frames so far.
  std::uint64_t frames() const { return frames_; }

  /// After kError: the request count of the rejected batch frame, when
  /// the header itself had validated (checksum/payload failures) — 0
  /// when the header was already unreadable, since any count field in
  /// garbage bytes is meaningless.
  std::uint16_t rejected_batch_count() const {
    return poisoned_ && header_done_ && type_ == FrameType::kBatch ? count_
                                                                   : 0;
  }

 private:
  ParseStatus Poison(std::uint16_t code, const std::string& message);
  ParseStatus ValidateHeader();
  ParseStatus FinishFrame(ParsedFrame* out);

  std::size_t max_batch_;
  // Fixed-size header accumulator; the payload+checksum accumulator is
  // reserved to the validated frame size only after ValidateHeader.
  std::uint8_t header_[kFrameHeaderBytes] = {};
  std::size_t have_ = 0;
  bool header_done_ = false;
  std::vector<std::uint8_t> body_;  // payload + trailing checksum
  std::size_t body_need_ = 0;
  // Parsed header fields (valid once header_done_).
  FrameType type_ = FrameType::kBatch;
  std::uint16_t count_ = 0;
  std::uint32_t payload_len_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t frames_ = 0;
  bool poisoned_ = false;
  std::uint16_t error_code_ = 0;
  std::string error_;
};

}  // namespace clic::server::net
