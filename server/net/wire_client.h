// Blocking wire client for the network front end: connects to a
// NetServer (or anything speaking server/net/wire_format.h), sends
// batch frames, and reassembles status replies through the same
// incremental FrameParser the server uses — so torn writes and partial
// reads on either side are handled by construction, not by luck.
//
// RunWireLoad() is the wire twin of server::ServeTrace: the same
// client-chunking rule (client c replays [n*c/C, n*(c+1)/C) of the
// budget-capped trace, batched on the same fixed grid), driven either
// sequentially in client order (deterministic mode — the wire replay of
// the strict-client-order stream the deterministic consumer expects) or
// from one thread per client. Every reply code is tallied into a
// wire-side ledger mirroring AdmissionStats, and per-call wire
// latencies (send-to-status) feed p50/p99.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/trace.h"
#include "server/net/wire_format.h"

namespace clic::server::net {

/// One blocking connection. Not thread-safe: each connection belongs to
/// one driver thread, mirroring the server's one-producer-per-port
/// contract.
class WireClient {
 public:
  WireClient() : parser_(kWireMaxBatch) {}
  ~WireClient() { Close(); }

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Connects to addr:port (dotted-quad IPv4). Returns false and fills
  /// error() on failure.
  bool Connect(const std::string& addr, std::uint16_t port);

  /// Sends one batch frame and blocks for its status reply. Returns the
  /// wire code (kWireApplied..kWireStopped, or an error code >= 16 from
  /// an error frame). Returns kWireConnClosed on transport failure —
  /// connection reset, EOF mid-reply, or a malformed reply frame; in
  /// all those cases the connection is closed and error() explains.
  std::uint16_t Call(const Request* reqs, std::size_t n);

  void Close();
  bool connected() const { return fd_ >= 0; }
  const std::string& error() const { return error_; }

  /// Sentinel for "the transport died" (distinct from every WireCode
  /// a frame can carry).
  static constexpr std::uint16_t kWireConnClosed = 0xFFFF;

 private:
  int fd_ = -1;
  std::uint64_t seq_ = 0;  // 1-based frame sequence on this connection
  std::string out_;        // encode scratch, reused per call
  FrameParser parser_;
  ParsedFrame reply_;
  std::string error_;
};

struct WireLoadOptions {
  std::string addr = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t clients = 1;
  std::size_t batch_size = 64;
  /// Caps how much of the trace is replayed (0 = all), with ServeTrace's
  /// chunking rule — concatenating the chunks in client order yields the
  /// capped trace.
  std::uint64_t request_budget = 0;
  /// Drive client connections one after another in client id order
  /// (required for a bit-identical verify against PartitionedSimulate).
  bool deterministic = false;
};

/// Wire-side ledger: what the status replies said happened. With a
/// healthy server, submitted == applied + shed + timed_out + expired +
/// stopped + conn_lost (conn_lost counts batches whose reply never
/// arrived because the transport died — e.g. under net:reset).
struct WireLoadResult {
  std::uint64_t submitted_batches = 0, submitted_requests = 0;
  std::uint64_t applied_batches = 0, applied_requests = 0;
  std::uint64_t shed_batches = 0, shed_requests = 0;
  std::uint64_t timed_out_batches = 0, timed_out_requests = 0;
  std::uint64_t expired_batches = 0, expired_requests = 0;
  std::uint64_t stopped_batches = 0, stopped_requests = 0;
  std::uint64_t conn_lost_batches = 0, conn_lost_requests = 0;
  /// Typed error frames received (connection then closed by server).
  std::uint64_t wire_errors = 0;
  /// Connections opened (reconnects after a transport loss included).
  std::uint64_t connections = 0;
  std::uint64_t failed_connects = 0;
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;  // applied requests / wall
  double p50_us = 0.0;          // per-batch send-to-status wire latency
  double p99_us = 0.0;
};

/// Replays `trace` over the wire against addr:port. Drivers reconnect
/// once after a transport loss (counting the unanswered batch as
/// conn_lost) and skip rejected batches exactly as ServeTrace's drivers
/// do. Throws std::invalid_argument for zero clients/batch_size.
WireLoadResult RunWireLoad(const Trace& trace, const WireLoadOptions& options);

}  // namespace clic::server::net
