#include "server/fault_injection.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace clic::server::fault {
namespace {

constexpr char kValidClauses[] =
    "valid clauses: seed=N, burst=N, "
    "stall:shard=N,after=N,drains=N,ms=F, "
    "pause:consumer=N,after=N,batches=N,ms=F, "
    "shed:every=N, corrupt:every=N,flips=N, "
    "net:torn-write=N,partial-read=N,reset=N,accept-stall=N,stall-ms=F";

bool Fail(std::string* error, const std::string& message) {
  *error = message + " (" + kValidClauses + ")";
  return false;
}

bool ParseCount(const std::string& clause, const std::string& key,
                const std::string& value, std::uint64_t* out,
                std::string* error) {
  errno = 0;
  char* end = nullptr;
  const std::uint64_t parsed = std::strtoull(value.c_str(), &end, 10);
  if (value.empty() || value[0] == '-' || value[0] == '+' || errno != 0 ||
      end == value.c_str() || *end != '\0') {
    return Fail(error, "fault plan clause '" + clause + "': " + key + "='" +
                           value + "' is not a non-negative integer");
  }
  *out = parsed;
  return true;
}

bool ParseMs(const std::string& clause, const std::string& key,
             const std::string& value, double* out, std::string* error) {
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (value.empty() || errno != 0 || end == value.c_str() || *end != '\0' ||
      !std::isfinite(parsed) || parsed < 0.0) {
    return Fail(error, "fault plan clause '" + clause + "': " + key + "='" +
                           value + "' is not a finite non-negative number");
  }
  *out = parsed;
  return true;
}

/// Splits "k1=v1,k2=v2" into pairs; malformed pairs fail with the
/// clause named.
bool SplitPairs(const std::string& clause, const std::string& body,
                std::vector<std::pair<std::string, std::string>>* out,
                std::string* error) {
  std::size_t start = 0;
  while (start <= body.size()) {
    const std::size_t comma = body.find(',', start);
    const std::size_t end = comma == std::string::npos ? body.size() : comma;
    const std::string pair = body.substr(start, end - start);
    const std::size_t eq = pair.find('=');
    if (pair.empty() || eq == std::string::npos || eq == 0) {
      return Fail(error, "fault plan clause '" + clause +
                             "': malformed key=value pair '" + pair + "'");
    }
    out->emplace_back(pair.substr(0, eq), pair.substr(eq + 1));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return true;
}

}  // namespace

bool ParseFaultPlan(const std::string& spec, FaultPlan* out,
                    std::string* error) {
  FaultPlan plan;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t semi = spec.find(';', start);
    const std::size_t end = semi == std::string::npos ? spec.size() : semi;
    const std::string clause = spec.substr(start, end - start);
    if (clause.empty()) {
      return Fail(error, "fault plan contains an empty clause");
    }
    const std::size_t colon = clause.find(':');
    if (colon == std::string::npos) {
      // Top-level key=value: seed or burst.
      const std::size_t eq = clause.find('=');
      if (eq == std::string::npos) {
        return Fail(error, "fault plan clause '" + clause +
                               "' is neither key=value nor kind:...");
      }
      const std::string key = clause.substr(0, eq);
      const std::string value = clause.substr(eq + 1);
      if (key == "seed") {
        if (!ParseCount(clause, key, value, &plan.seed, error)) return false;
      } else if (key == "burst") {
        if (!ParseCount(clause, key, value, &plan.burst, error)) return false;
        if (plan.burst == 0) {
          return Fail(error, "fault plan clause '" + clause +
                                 "': burst must be >= 1");
        }
      } else {
        return Fail(error,
                    "fault plan: unknown top-level key '" + key + "'");
      }
    } else {
      const std::string kind = clause.substr(0, colon);
      std::vector<std::pair<std::string, std::string>> pairs;
      if (!SplitPairs(clause, clause.substr(colon + 1), &pairs, error)) {
        return false;
      }
      if (kind == "stall") {
        ShardStall s;
        std::uint64_t shard = 0;
        for (const auto& [key, value] : pairs) {
          if (key == "shard") {
            if (!ParseCount(clause, key, value, &shard, error)) return false;
            s.shard = static_cast<std::size_t>(shard);
          } else if (key == "after") {
            if (!ParseCount(clause, key, value, &s.after_drain, error)) {
              return false;
            }
          } else if (key == "drains") {
            if (!ParseCount(clause, key, value, &s.drains, error)) {
              return false;
            }
          } else if (key == "ms") {
            if (!ParseMs(clause, key, value, &s.ms, error)) return false;
          } else {
            return Fail(error, "fault plan clause '" + clause +
                                   "': unknown stall key '" + key + "'");
          }
        }
        plan.stalls.push_back(s);
      } else if (kind == "pause") {
        ConsumerPause p;
        std::uint64_t consumer = 0;
        for (const auto& [key, value] : pairs) {
          if (key == "consumer") {
            if (!ParseCount(clause, key, value, &consumer, error)) {
              return false;
            }
            p.consumer = static_cast<std::size_t>(consumer);
          } else if (key == "after") {
            if (!ParseCount(clause, key, value, &p.after_batch, error)) {
              return false;
            }
          } else if (key == "batches") {
            if (!ParseCount(clause, key, value, &p.batches, error)) {
              return false;
            }
          } else if (key == "ms") {
            if (!ParseMs(clause, key, value, &p.ms, error)) return false;
          } else {
            return Fail(error, "fault plan clause '" + clause +
                                   "': unknown pause key '" + key + "'");
          }
        }
        plan.pauses.push_back(p);
      } else if (kind == "shed") {
        for (const auto& [key, value] : pairs) {
          if (key == "every") {
            if (!ParseCount(clause, key, value, &plan.shed_every, error)) {
              return false;
            }
          } else {
            return Fail(error, "fault plan clause '" + clause +
                                   "': unknown shed key '" + key + "'");
          }
        }
        if (plan.shed_every == 0) {
          return Fail(error, "fault plan clause '" + clause +
                                 "': shed needs every=N with N >= 1");
        }
      } else if (kind == "corrupt") {
        std::uint64_t flips = 1;
        for (const auto& [key, value] : pairs) {
          if (key == "every") {
            if (!ParseCount(clause, key, value, &plan.corrupt_every, error)) {
              return false;
            }
          } else if (key == "flips") {
            if (!ParseCount(clause, key, value, &flips, error)) return false;
            plan.corrupt_flips = static_cast<std::uint32_t>(flips);
          } else {
            return Fail(error, "fault plan clause '" + clause +
                                   "': unknown corrupt key '" + key + "'");
          }
        }
        if (plan.corrupt_every == 0 || plan.corrupt_flips == 0) {
          return Fail(error, "fault plan clause '" + clause +
                                 "': corrupt needs every>=1 and flips>=1");
        }
      } else if (kind == "net") {
        bool has_stall_ms = false;
        for (const auto& [key, value] : pairs) {
          if (key == "torn-write") {
            if (!ParseCount(clause, key, value, &plan.net_torn_write_every,
                            error)) {
              return false;
            }
          } else if (key == "partial-read") {
            if (!ParseCount(clause, key, value, &plan.net_partial_read_every,
                            error)) {
              return false;
            }
          } else if (key == "reset") {
            if (!ParseCount(clause, key, value, &plan.net_reset_every,
                            error)) {
              return false;
            }
          } else if (key == "accept-stall") {
            if (!ParseCount(clause, key, value, &plan.net_accept_stall_every,
                            error)) {
              return false;
            }
          } else if (key == "stall-ms") {
            if (!ParseMs(clause, key, value, &plan.net_accept_stall_ms,
                         error)) {
              return false;
            }
            has_stall_ms = true;
          } else {
            return Fail(error, "fault plan clause '" + clause +
                                   "': unknown net key '" + key + "'");
          }
        }
        if (!plan.HasNetFaults()) {
          return Fail(error,
                      "fault plan clause '" + clause +
                          "': net needs at least one of torn-write, "
                          "partial-read, reset, accept-stall with N >= 1");
        }
        if (has_stall_ms && plan.net_accept_stall_every == 0) {
          return Fail(error, "fault plan clause '" + clause +
                                 "': stall-ms only tunes accept-stall");
        }
      } else {
        return Fail(error, "fault plan: unknown clause kind '" + kind + "'");
      }
    }
    if (semi == std::string::npos) break;
    start = semi + 1;
  }
  *out = plan;
  return true;
}

}  // namespace clic::server::fault
