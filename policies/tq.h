// TQ: write-hint-aware two-queue policy in the spirit of Li, Aboulnaga,
// Salem et al. ("Second-Tier Cache Management Using Write Hints",
// FAST 2005) — the strongest pre-CLIC baseline in the paper's figures.
//
// Pages written back because of client buffer replacement were just
// evicted from the client's pool and are likely to be read again, so
// they are kept in a protected queue; recovery writes (checkpoint / WAL)
// are cached at the evictable end. `write_bonus` sets the protected
// queue's share of the cache: cap = bonus / (1 + bonus) of the pages.
#pragma once

#include "core/policy.h"
#include "policies/common.h"

namespace clic {

class TqPolicy : public Policy {
 public:
  explicit TqPolicy(std::size_t cache_pages, double write_bonus = 1.0);

  bool Access(const Request& r, SeqNum seq) override;
  void AccessBatch(const Request* reqs, SeqNum first_seq, std::size_t n,
                   std::uint8_t* hits_out) override;

 private:
  enum class Where : std::uint8_t { kProtected, kPlain };
  struct Payload {
    Where where = Where::kPlain;
  };

  bool AccessOne(const Request& r);
  void EvictOne();
  void TrimProtected();

  PageTable table_;
  ListArena<Payload> arena_;
  ListHead protected_, plain_;
  std::size_t protected_cap_;
};

}  // namespace clic
