#include "policies/tq.h"

#include <algorithm>

namespace clic {

TqPolicy::TqPolicy(std::size_t cache_pages, double write_bonus)
    : arena_(std::max<std::size_t>(1, cache_pages)) {
  const double bonus = std::max(0.0, write_bonus);
  const double frac = bonus / (1.0 + bonus);
  protected_cap_ = static_cast<std::size_t>(
      frac * static_cast<double>(arena_.capacity()));
}

void TqPolicy::EvictOne() {
  ListHead& from = plain_.empty() ? protected_ : plain_;
  const std::uint32_t victim = arena_.PopBack(from);
  table_.Clear(arena_[victim].page);
  arena_.Free(victim);
}

void TqPolicy::TrimProtected() {
  while (protected_.size > protected_cap_) {
    const std::uint32_t demoted = arena_.PopBack(protected_);
    arena_[demoted].payload.where = Where::kPlain;
    arena_.PushFront(plain_, demoted);
  }
}

// clic-lint: hot-path
inline bool TqPolicy::AccessOne(const Request& r) {
  const bool replacement_write =
      r.op == OpType::kWrite && r.write_kind == WriteKind::kReplacement;
  const std::uint32_t slot = table_.Get(r.page);
  if (slot != kInvalidIndex) {
    Payload& p = arena_[slot].payload;
    if (replacement_write && p.where == Where::kPlain) {
      // The client just evicted this page: promote it.
      arena_.Remove(plain_, slot);
      p.where = Where::kProtected;
      arena_.PushFront(protected_, slot);
      TrimProtected();
    } else if (p.where == Where::kProtected) {
      arena_.MoveToFront(protected_, slot);
    } else {
      arena_.MoveToFront(plain_, slot);
    }
    return true;
  }
  if (arena_.Full()) EvictOne();
  const std::uint32_t node = arena_.Alloc(r.page);
  table_.Set(r.page, node);
  if (replacement_write) {
    arena_[node].payload.where = Where::kProtected;
    arena_.PushFront(protected_, node);
    TrimProtected();
  } else if (r.op == OpType::kWrite &&
             r.write_kind == WriteKind::kRecovery) {
    // Recovery writes are unlikely to be re-read: park at the victim end.
    arena_[node].payload.where = Where::kPlain;
    arena_.PushBack(plain_, node);
  } else {
    arena_[node].payload.where = Where::kPlain;
    arena_.PushFront(plain_, node);
  }
  return false;
}

// clic-lint: hot-path
bool TqPolicy::Access(const Request& r, SeqNum /*seq*/) {
  return AccessOne(r);
}

// clic-lint: hot-path
void TqPolicy::AccessBatch(const Request* reqs, SeqNum /*first_seq*/,
                           std::size_t n, std::uint8_t* hits_out) {
  const std::size_t main =
      n > kBatchPrefetchDistance ? n - kBatchPrefetchDistance : 0;
  std::size_t i = 0;
  for (; i < main; ++i) {
    table_.Prefetch(reqs[i + kBatchPrefetchDistance].page);
    const std::uint32_t ahead = table_.Get(reqs[i + kBatchNodeDistance].page);
    if (ahead != kInvalidIndex) arena_.Prefetch(ahead);
    hits_out[i] = AccessOne(reqs[i]);
  }
  for (; i < n; ++i) {
    hits_out[i] = AccessOne(reqs[i]);
  }
}

}  // namespace clic
