// CLOCK (second-chance): a ring of frames with reference bits, the
// classic low-overhead LRU approximation (related-work baseline).
#pragma once

#include <vector>

#include "core/policy.h"
#include "policies/common.h"

namespace clic {

class ClockPolicy : public Policy {
 public:
  explicit ClockPolicy(std::size_t cache_pages);

  bool Access(const Request& r, SeqNum seq) override;
  void AccessBatch(const Request* reqs, SeqNum first_seq, std::size_t n,
                   std::uint8_t* hits_out) override;

 private:
  bool AccessOne(const Request& r);

  struct Frame {
    PageId page = 0;
    std::uint8_t referenced = 0;
  };

  PageTable table_;
  std::vector<Frame> frames_;
  std::size_t hand_ = 0;
  std::size_t resident_ = 0;
};

}  // namespace clic
