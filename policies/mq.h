// MQ (Zhou, Philbin, Li, USENIX 2001): multi-queue replacement designed
// for second-tier (storage server) caches. Pages climb log2(frequency)
// queues, expire back down after a lifetime without references, and a
// ghost history buffer preserves frequency across evictions.
#pragma once

#include "core/policy.h"
#include "policies/common.h"

namespace clic {

class MqPolicy : public Policy {
 public:
  static constexpr int kNumQueues = 8;

  /// lifetime == 0 picks the default (8 * cache_pages), a static stand-in
  /// for the paper's peak-temporal-distance estimate.
  explicit MqPolicy(std::size_t cache_pages, std::uint64_t lifetime = 0);

  bool Access(const Request& r, SeqNum seq) override;
  void AccessBatch(const Request* reqs, SeqNum first_seq, std::size_t n,
                   std::uint8_t* hits_out) override;

 private:
  bool AccessOne(const Request& r, SeqNum seq);

  struct Payload {
    std::uint32_t freq = 0;
    std::uint64_t expire = 0;
    std::uint8_t ghost = 0;
    std::uint8_t queue = 0;  // actual queue (can lag QueueFor(freq)
                             // after a lifetime demotion)
  };

  static int QueueFor(std::uint32_t freq);
  void Adjust(SeqNum now);
  void EvictOne();

  PageTable table_;
  ListArena<Payload> arena_;
  ListHead queues_[kNumQueues];
  ListHead history_;
  std::size_t cache_pages_;
  std::size_t resident_ = 0;
  std::uint64_t lifetime_;
};

}  // namespace clic
