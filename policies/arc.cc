#include "policies/arc.h"

#include <algorithm>

namespace clic {

ArcPolicy::ArcPolicy(std::size_t cache_pages)
    : arena_(2 * std::max<std::size_t>(1, cache_pages)),
      c_(std::max<std::size_t>(1, cache_pages)) {}

void ArcPolicy::Replace(bool hit_in_b2) {
  if (!t1_.empty() &&
      (t1_.size > p_ || (hit_in_b2 && t1_.size == p_))) {
    const std::uint32_t victim = arena_.PopBack(t1_);
    arena_[victim].payload.where = Where::kB1;
    arena_.PushFront(b1_, victim);
  } else {
    const std::uint32_t victim = arena_.PopBack(t2_);
    arena_[victim].payload.where = Where::kB2;
    arena_.PushFront(b2_, victim);
  }
}

void ArcPolicy::DropGhost(ListHead& list) {
  const std::uint32_t ghost = arena_.PopBack(list);
  table_.Clear(arena_[ghost].page);
  arena_.Free(ghost);
}

// clic-lint: hot-path
inline bool ArcPolicy::AccessOne(const Request& r) {
  const std::uint32_t slot = table_.Get(r.page);
  if (slot != kInvalidIndex) {
    switch (arena_[slot].payload.where) {
      case Where::kT1:
        arena_.Remove(t1_, slot);
        arena_[slot].payload.where = Where::kT2;
        arena_.PushFront(t2_, slot);
        return true;
      case Where::kT2:
        arena_.MoveToFront(t2_, slot);
        return true;
      case Where::kB1: {
        const std::size_t delta =
            std::max<std::size_t>(1, b2_.size / std::max<std::uint32_t>(
                                          1, b1_.size));
        p_ = std::min(c_, p_ + delta);
        Replace(/*hit_in_b2=*/false);
        arena_.Remove(b1_, slot);
        arena_[slot].payload.where = Where::kT2;
        arena_.PushFront(t2_, slot);
        return false;
      }
      case Where::kB2: {
        const std::size_t delta =
            std::max<std::size_t>(1, b1_.size / std::max<std::uint32_t>(
                                          1, b2_.size));
        p_ = p_ > delta ? p_ - delta : 0;
        Replace(/*hit_in_b2=*/true);
        arena_.Remove(b2_, slot);
        arena_[slot].payload.where = Where::kT2;
        arena_.PushFront(t2_, slot);
        return false;
      }
    }
  }
  // Complete miss (case IV of the paper).
  const std::size_t l1 = t1_.size + b1_.size;
  if (l1 == c_) {
    if (t1_.size < c_) {
      DropGhost(b1_);
      Replace(/*hit_in_b2=*/false);
    } else {
      // B1 empty and T1 full: evict the T1 LRU page outright.
      const std::uint32_t victim = arena_.PopBack(t1_);
      table_.Clear(arena_[victim].page);
      arena_.Free(victim);
    }
  } else if (l1 < c_ && l1 + t2_.size + b2_.size >= c_) {
    if (l1 + t2_.size + b2_.size == 2 * c_) DropGhost(b2_);
    Replace(/*hit_in_b2=*/false);
  }
  const std::uint32_t node = arena_.Alloc(r.page);
  arena_[node].payload.where = Where::kT1;
  arena_.PushFront(t1_, node);
  table_.Set(r.page, node);
  return false;
}

// clic-lint: hot-path
bool ArcPolicy::Access(const Request& r, SeqNum /*seq*/) {
  return AccessOne(r);
}

// clic-lint: hot-path
void ArcPolicy::AccessBatch(const Request* reqs, SeqNum /*first_seq*/,
                            std::size_t n, std::uint8_t* hits_out) {
  const std::size_t main =
      n > kBatchPrefetchDistance ? n - kBatchPrefetchDistance : 0;
  std::size_t i = 0;
  for (; i < main; ++i) {
    table_.Prefetch(reqs[i + kBatchPrefetchDistance].page);
    const std::uint32_t ahead = table_.Get(reqs[i + kBatchNodeDistance].page);
    if (ahead != kInvalidIndex) arena_.Prefetch(ahead);
    hits_out[i] = AccessOne(reqs[i]);
  }
  for (; i < n; ++i) {
    hits_out[i] = AccessOne(reqs[i]);
  }
}

}  // namespace clic
