// OPT: Belady's clairvoyant upper bound. Uses a next-use oracle
// precomputed from the trace in one backward pass, plus a lazy-deletion
// max-heap over the cached pages' next references. Relies on Simulate()
// passing seq == request index.
#pragma once

#include <vector>

#include "core/policy.h"
#include "policies/common.h"

namespace clic {

class OptPolicy : public Policy {
 public:
  OptPolicy(std::size_t cache_pages, const Trace& trace);

  bool Access(const Request& r, SeqNum seq) override;
  void AccessBatch(const Request* reqs, SeqNum first_seq, std::size_t n,
                   std::uint8_t* hits_out) override;

 private:
  static constexpr SeqNum kNever = ~SeqNum{0};

  bool AccessOne(const Request& r, SeqNum seq);

  std::size_t cache_pages_;
  std::vector<SeqNum> next_use_;   // per request index
  std::vector<SeqNum> cur_next_;   // per page: its upcoming reference
  std::vector<std::uint8_t> resident_;  // per page
  std::vector<std::pair<SeqNum, PageId>> heap_;  // lazy max-heap
  std::size_t count_ = 0;
};

}  // namespace clic
