#include "policies/lru.h"

#include <algorithm>

namespace clic {

LruPolicy::LruPolicy(std::size_t cache_pages)
    : arena_(std::max<std::size_t>(1, cache_pages)) {}

bool LruPolicy::Access(const Request& r, SeqNum /*seq*/) {
  const std::uint32_t slot = table_.Get(r.page);
  if (slot != kInvalidIndex) {
    arena_.MoveToFront(lru_, slot);
    return true;
  }
  if (arena_.Full()) {
    const std::uint32_t victim = arena_.PopBack(lru_);
    table_.Clear(arena_[victim].page);
    arena_.Free(victim);
  }
  const std::uint32_t node = arena_.Alloc(r.page);
  arena_.PushFront(lru_, node);
  table_.Set(r.page, node);
  return false;
}

}  // namespace clic
