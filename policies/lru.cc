#include "policies/lru.h"

#include <algorithm>

namespace clic {

LruPolicy::LruPolicy(std::size_t cache_pages)
    : arena_(std::max<std::size_t>(1, cache_pages)) {}

// clic-lint: hot-path
inline bool LruPolicy::AccessOne(const Request& r) {
  const std::uint32_t slot = table_.Get(r.page);
  if (slot != kInvalidIndex) {
    arena_.MoveToFront(lru_, slot);
    return true;
  }
  if (arena_.Full()) {
    const std::uint32_t victim = arena_.PopBack(lru_);
    table_.Clear(arena_[victim].page);
    arena_.Free(victim);
  }
  const std::uint32_t node = arena_.Alloc(r.page);
  arena_.PushFront(lru_, node);
  table_.Set(r.page, node);
  return false;
}

// clic-lint: hot-path
bool LruPolicy::Access(const Request& r, SeqNum /*seq*/) {
  return AccessOne(r);
}

// clic-lint: hot-path
void LruPolicy::AccessBatch(const Request* reqs, SeqNum /*first_seq*/,
                            std::size_t n, std::uint8_t* hits_out) {
  // Software-pipelined lookahead (see kBatchPrefetchDistance): the main
  // loop prefetches unconditionally, the short tail runs bare.
  const std::size_t main = n > kBatchPrefetchDistance
                               ? n - kBatchPrefetchDistance
                               : 0;
  std::size_t i = 0;
  for (; i < main; ++i) {
    table_.Prefetch(reqs[i + kBatchPrefetchDistance].page);
    const std::uint32_t ahead = table_.Get(reqs[i + kBatchNodeDistance].page);
    if (ahead != kInvalidIndex) arena_.Prefetch(ahead);
    hits_out[i] = AccessOne(reqs[i]);
  }
  for (; i < n; ++i) {
    hits_out[i] = AccessOne(reqs[i]);
  }
}

}  // namespace clic
