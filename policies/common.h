// Shared building blocks for the replacement policies: the flat
// PageTable (core/page_table.h) plus an intrusive doubly-linked-list
// arena. All list nodes live in one preallocated arena, so a policy
// performs zero heap allocations per request after construction.
#pragma once

#include <cstdint>
#include <vector>

#include "core/page_table.h"
#include "core/trace.h"

namespace clic {

/// Intrusive doubly-linked lists over a fixed arena of nodes. Each node
/// carries the page it caches plus user payload defined by the policy.
/// Lists are identified by ListHead values owned by the policy.
/// The AccessBatch loops software-pipeline their lookups: while
/// processing request i they prefetch the page-table slot of request
/// i + kBatchPrefetchDistance, and — once that slot is warm — read it
/// at i + kBatchNodeDistance to prefetch the arena node / cache slot it
/// points at. The early read is advisory only (a request in between may
/// remap the page; the prefetched line is then merely useless), so
/// decisions are unaffected. Distances: far enough to cover a memory
/// load at a few ns per request, small enough that lines stay resident.
inline constexpr std::size_t kBatchPrefetchDistance = 12;
inline constexpr std::size_t kBatchNodeDistance = 4;

struct ListHead {
  std::uint32_t head = kInvalidIndex;  // front (e.g. MRU)
  std::uint32_t tail = kInvalidIndex;  // back (e.g. LRU victim end)
  std::uint32_t size = 0;

  bool empty() const { return head == kInvalidIndex; }
};

template <typename Payload>
class ListArena {
 public:
  struct Node {
    PageId page = 0;
    std::uint32_t prev = kInvalidIndex;
    std::uint32_t next = kInvalidIndex;
    Payload payload{};
  };

  explicit ListArena(std::size_t capacity) {
    nodes_.resize(capacity);
    free_.reserve(capacity);
    for (std::size_t i = capacity; i-- > 0;) {
      free_.push_back(static_cast<std::uint32_t>(i));
    }
  }

  bool Full() const { return free_.empty(); }
  std::size_t capacity() const { return nodes_.size(); }

  Node& operator[](std::uint32_t i) { return nodes_[i]; }
  const Node& operator[](std::uint32_t i) const { return nodes_[i]; }

  /// Warms the cache line of node `i` (see kBatchNodeDistance).
  void Prefetch(std::uint32_t i) const {
    if (i < nodes_.size()) __builtin_prefetch(&nodes_[i], 0, 1);
  }

  std::uint32_t Alloc(PageId page) {
    const std::uint32_t i = free_.back();
    free_.pop_back();
    nodes_[i].page = page;
    nodes_[i].prev = nodes_[i].next = kInvalidIndex;
    return i;
  }

  void Free(std::uint32_t i) { free_.push_back(i); }

  void PushFront(ListHead& list, std::uint32_t i) {
    nodes_[i].prev = kInvalidIndex;
    nodes_[i].next = list.head;
    if (list.head != kInvalidIndex) nodes_[list.head].prev = i;
    list.head = i;
    if (list.tail == kInvalidIndex) list.tail = i;
    ++list.size;
  }

  void PushBack(ListHead& list, std::uint32_t i) {
    nodes_[i].next = kInvalidIndex;
    nodes_[i].prev = list.tail;
    if (list.tail != kInvalidIndex) nodes_[list.tail].next = i;
    list.tail = i;
    if (list.head == kInvalidIndex) list.head = i;
    ++list.size;
  }

  void Remove(ListHead& list, std::uint32_t i) {
    if (nodes_[i].prev != kInvalidIndex) {
      nodes_[nodes_[i].prev].next = nodes_[i].next;
    } else {
      list.head = nodes_[i].next;
    }
    if (nodes_[i].next != kInvalidIndex) {
      nodes_[nodes_[i].next].prev = nodes_[i].prev;
    } else {
      list.tail = nodes_[i].prev;
    }
    nodes_[i].prev = nodes_[i].next = kInvalidIndex;
    --list.size;
  }

  void MoveToFront(ListHead& list, std::uint32_t i) {
    if (list.head == i) return;
    Remove(list, i);
    PushFront(list, i);
  }

  /// Pops the back (victim end) of the list; list must be non-empty.
  std::uint32_t PopBack(ListHead& list) {
    const std::uint32_t i = list.tail;
    Remove(list, i);
    return i;
  }

 private:
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_;
};

struct NoPayload {};

}  // namespace clic
