// Least-recently-used. The baseline every figure includes, and the
// policy the 10M req/s microbenchmark floor applies to: one flat-vector
// page-table lookup plus one intrusive list splice per access.
#pragma once

#include "core/policy.h"
#include "policies/common.h"

namespace clic {

class LruPolicy : public Policy {
 public:
  explicit LruPolicy(std::size_t cache_pages);

  bool Access(const Request& r, SeqNum seq) override;
  void AccessBatch(const Request* reqs, SeqNum first_seq, std::size_t n,
                   std::uint8_t* hits_out) override;

 private:
  bool AccessOne(const Request& r);

  PageTable table_;
  ListArena<NoPayload> arena_;
  ListHead lru_;
};

}  // namespace clic
