#include "policies/clock.h"

#include <algorithm>

namespace clic {

ClockPolicy::ClockPolicy(std::size_t cache_pages)
    : frames_(std::max<std::size_t>(1, cache_pages)) {}

// clic-lint: hot-path
inline bool ClockPolicy::AccessOne(const Request& r) {
  const std::uint32_t slot = table_.Get(r.page);
  if (slot != kInvalidIndex) {
    frames_[slot].referenced = 1;
    return true;
  }
  std::size_t target;
  if (resident_ < frames_.size()) {
    target = resident_++;
  } else {
    // Sweep the hand until a frame with a clear reference bit turns up.
    while (frames_[hand_].referenced) {
      frames_[hand_].referenced = 0;
      hand_ = hand_ + 1 == frames_.size() ? 0 : hand_ + 1;
    }
    target = hand_;
    hand_ = hand_ + 1 == frames_.size() ? 0 : hand_ + 1;
    table_.Clear(frames_[target].page);
  }
  frames_[target].page = r.page;
  frames_[target].referenced = 1;
  table_.Set(r.page, static_cast<std::uint32_t>(target));
  return false;
}

// clic-lint: hot-path
bool ClockPolicy::Access(const Request& r, SeqNum /*seq*/) {
  return AccessOne(r);
}

// clic-lint: hot-path
void ClockPolicy::AccessBatch(const Request* reqs, SeqNum /*first_seq*/,
                              std::size_t n, std::uint8_t* hits_out) {
  const std::size_t main =
      n > kBatchPrefetchDistance ? n - kBatchPrefetchDistance : 0;
  std::size_t i = 0;
  for (; i < main; ++i) {
    table_.Prefetch(reqs[i + kBatchPrefetchDistance].page);
    const std::uint32_t ahead = table_.Get(reqs[i + kBatchNodeDistance].page);
    if (ahead < frames_.size()) __builtin_prefetch(&frames_[ahead], 1, 1);
    hits_out[i] = AccessOne(reqs[i]);
  }
  for (; i < n; ++i) {
    hits_out[i] = AccessOne(reqs[i]);
  }
}

}  // namespace clic
