// Full 2Q (Johnson & Shasha, VLDB 1994): a short FIFO (A1in) filters
// correlated references, a ghost FIFO (A1out) remembers recently evicted
// pages, and only pages re-referenced out of A1out are promoted into the
// main LRU (Am). Related-work baseline for the policy ablation.
#pragma once

#include "core/policy.h"
#include "policies/common.h"

namespace clic {

class TwoQPolicy : public Policy {
 public:
  explicit TwoQPolicy(std::size_t cache_pages);

  bool Access(const Request& r, SeqNum seq) override;
  void AccessBatch(const Request* reqs, SeqNum first_seq, std::size_t n,
                   std::uint8_t* hits_out) override;

 private:
  enum class Where : std::uint8_t { kAm, kA1in, kA1out };
  struct Payload {
    Where where = Where::kAm;
  };

  bool AccessOne(const Request& r);
  void ReclaimFrame();

  PageTable table_;
  ListArena<Payload> arena_;
  ListHead am_, a1in_, a1out_;
  std::size_t cache_pages_;
  std::size_t kin_;
  std::size_t kout_;
};

}  // namespace clic
