#include "policies/two_q.h"

#include <algorithm>

namespace clic {

TwoQPolicy::TwoQPolicy(std::size_t cache_pages)
    : arena_(std::max<std::size_t>(1, cache_pages) +
             std::max<std::size_t>(1, cache_pages / 2)),
      cache_pages_(std::max<std::size_t>(1, cache_pages)),
      kin_(std::max<std::size_t>(1, cache_pages / 4)),
      kout_(std::max<std::size_t>(1, cache_pages / 2)) {}

void TwoQPolicy::ReclaimFrame() {
  if (a1in_.size > kin_ || am_.empty()) {
    // Evict the A1in tail and remember it in the A1out ghost queue.
    const std::uint32_t victim = arena_.PopBack(a1in_);
    arena_[victim].payload.where = Where::kA1out;
    arena_.PushFront(a1out_, victim);
    if (a1out_.size > kout_) {
      const std::uint32_t ghost = arena_.PopBack(a1out_);
      table_.Clear(arena_[ghost].page);
      arena_.Free(ghost);
    }
  } else {
    // Evict the Am tail outright (2Q does not ghost Am evictions).
    const std::uint32_t victim = arena_.PopBack(am_);
    table_.Clear(arena_[victim].page);
    arena_.Free(victim);
  }
}

// clic-lint: hot-path
inline bool TwoQPolicy::AccessOne(const Request& r) {
  const std::uint32_t slot = table_.Get(r.page);
  if (slot != kInvalidIndex) {
    switch (arena_[slot].payload.where) {
      case Where::kAm:
        arena_.MoveToFront(am_, slot);
        return true;
      case Where::kA1in:
        // 2Q leaves A1in pages in FIFO order on re-reference.
        return true;
      case Where::kA1out:
        // Ghost hit: the page proved its re-reference, promote into Am.
        arena_.Remove(a1out_, slot);
        if (am_.size + a1in_.size >= cache_pages_) ReclaimFrame();
        arena_[slot].payload.where = Where::kAm;
        arena_.PushFront(am_, slot);
        return false;
    }
  }
  if (am_.size + a1in_.size >= cache_pages_) ReclaimFrame();
  const std::uint32_t node = arena_.Alloc(r.page);
  arena_[node].payload.where = Where::kA1in;
  arena_.PushFront(a1in_, node);
  table_.Set(r.page, node);
  return false;
}

// clic-lint: hot-path
bool TwoQPolicy::Access(const Request& r, SeqNum /*seq*/) {
  return AccessOne(r);
}

// clic-lint: hot-path
void TwoQPolicy::AccessBatch(const Request* reqs, SeqNum /*first_seq*/,
                             std::size_t n, std::uint8_t* hits_out) {
  const std::size_t main =
      n > kBatchPrefetchDistance ? n - kBatchPrefetchDistance : 0;
  std::size_t i = 0;
  for (; i < main; ++i) {
    table_.Prefetch(reqs[i + kBatchPrefetchDistance].page);
    const std::uint32_t ahead = table_.Get(reqs[i + kBatchNodeDistance].page);
    if (ahead != kInvalidIndex) arena_.Prefetch(ahead);
    hits_out[i] = AccessOne(reqs[i]);
  }
  for (; i < n; ++i) {
    hits_out[i] = AccessOne(reqs[i]);
  }
}

}  // namespace clic
