#include "policies/mq.h"

#include <algorithm>

namespace clic {

MqPolicy::MqPolicy(std::size_t cache_pages, std::uint64_t lifetime)
    : arena_(2 * std::max<std::size_t>(1, cache_pages)),
      cache_pages_(std::max<std::size_t>(1, cache_pages)),
      lifetime_(lifetime ? lifetime : 8 * std::max<std::size_t>(
                                              1, cache_pages)) {}

int MqPolicy::QueueFor(std::uint32_t freq) {
  int q = 0;
  while (freq > 1 && q < kNumQueues - 1) {
    freq >>= 1;
    ++q;
  }
  return q;
}

void MqPolicy::Adjust(SeqNum now) {
  // Demote at most one expired queue tail per access (the paper's
  // amortized adjustment).
  for (int q = kNumQueues - 1; q > 0; --q) {
    if (queues_[q].empty()) continue;
    const std::uint32_t tail = queues_[q].tail;
    if (arena_[tail].payload.expire < now) {
      arena_.Remove(queues_[q], tail);
      arena_.PushFront(queues_[q - 1], tail);
      arena_[tail].payload.queue = static_cast<std::uint8_t>(q - 1);
      arena_[tail].payload.expire = now + lifetime_;
      return;
    }
  }
}

void MqPolicy::EvictOne() {
  for (int q = 0; q < kNumQueues; ++q) {
    if (queues_[q].empty()) continue;
    const std::uint32_t victim = arena_.PopBack(queues_[q]);
    // Remember the frequency in the ghost history buffer.
    arena_[victim].payload.ghost = 1;
    arena_.PushFront(history_, victim);
    if (history_.size > cache_pages_) {
      const std::uint32_t ghost = arena_.PopBack(history_);
      table_.Clear(arena_[ghost].page);
      arena_.Free(ghost);
    }
    --resident_;
    return;
  }
}

// clic-lint: hot-path
inline bool MqPolicy::AccessOne(const Request& r, SeqNum seq) {
  Adjust(seq);
  const std::uint32_t slot = table_.Get(r.page);
  if (slot != kInvalidIndex && !arena_[slot].payload.ghost) {
    Payload& p = arena_[slot].payload;
    const int old_q = p.queue;
    ++p.freq;
    p.expire = seq + lifetime_;
    const int new_q = QueueFor(p.freq);
    if (new_q == old_q) {
      arena_.MoveToFront(queues_[old_q], slot);
    } else {
      arena_.Remove(queues_[old_q], slot);
      arena_.PushFront(queues_[new_q], slot);
      p.queue = static_cast<std::uint8_t>(new_q);
    }
    return true;
  }
  std::uint32_t freq = 1;
  if (slot != kInvalidIndex) {
    // History hit: resume the remembered frequency.
    freq = arena_[slot].payload.freq + 1;
    arena_.Remove(history_, slot);
    table_.Clear(arena_[slot].page);
    arena_.Free(slot);
  }
  if (resident_ >= cache_pages_) EvictOne();
  const std::uint32_t node = arena_.Alloc(r.page);
  Payload& p = arena_[node].payload;
  p.freq = freq;
  p.expire = seq + lifetime_;
  p.ghost = 0;
  p.queue = static_cast<std::uint8_t>(QueueFor(freq));
  arena_.PushFront(queues_[p.queue], node);
  table_.Set(r.page, node);
  ++resident_;
  return false;
}

// clic-lint: hot-path
bool MqPolicy::Access(const Request& r, SeqNum seq) {
  return AccessOne(r, seq);
}

// clic-lint: hot-path
void MqPolicy::AccessBatch(const Request* reqs, SeqNum first_seq,
                           std::size_t n, std::uint8_t* hits_out) {
  const std::size_t main =
      n > kBatchPrefetchDistance ? n - kBatchPrefetchDistance : 0;
  std::size_t i = 0;
  for (; i < main; ++i) {
    table_.Prefetch(reqs[i + kBatchPrefetchDistance].page);
    const std::uint32_t ahead = table_.Get(reqs[i + kBatchNodeDistance].page);
    if (ahead != kInvalidIndex) arena_.Prefetch(ahead);
    hits_out[i] = AccessOne(reqs[i], first_seq + i);
  }
  for (; i < n; ++i) {
    hits_out[i] = AccessOne(reqs[i], first_seq + i);
  }
}

}  // namespace clic
