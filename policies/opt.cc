#include "policies/opt.h"

#include <algorithm>

namespace clic {

OptPolicy::OptPolicy(std::size_t cache_pages, const Trace& trace)
    : cache_pages_(std::max<std::size_t>(1, cache_pages)) {
  const std::size_t n = trace.requests.size();
  next_use_.resize(n, kNever);
  PageId max_page = 0;
  for (const Request& r : trace.requests) {
    max_page = std::max(max_page, r.page);
  }
  cur_next_.assign(static_cast<std::size_t>(max_page) + 1, kNever);
  resident_.assign(static_cast<std::size_t>(max_page) + 1, 0);
  // Backward pass: next_use_[i] = next index at which requests[i].page
  // recurs. cur_next_ doubles as the "last seen" scratch here and is
  // reset before simulation starts.
  for (std::size_t i = n; i-- > 0;) {
    const PageId page = trace.requests[i].page;
    next_use_[i] = cur_next_[page];
    cur_next_[page] = i;
  }
  std::fill(cur_next_.begin(), cur_next_.end(), kNever);
  heap_.reserve(1 << 16);
}

// clic-lint: hot-path
inline bool OptPolicy::AccessOne(const Request& r, SeqNum seq) {
  const SeqNum nu = seq < next_use_.size() ? next_use_[seq] : kNever;
  if (resident_[r.page]) {
    cur_next_[r.page] = nu;
    heap_.emplace_back(nu, r.page);  // clic-lint: allow(no-alloc-hot-path) reason=OPT is offline/clairvoyant and never serves online; lazy-deletion heap growth is its core algorithm
    std::push_heap(heap_.begin(), heap_.end());
    return true;
  }
  if (count_ >= cache_pages_) {
    // Pop until the top entry reflects a resident page's current next
    // use; stale entries (superseded or evicted) are discarded lazily.
    for (;;) {
      const auto [key, page] = heap_.front();
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.pop_back();
      if (resident_[page] && cur_next_[page] == key) {
        resident_[page] = 0;
        --count_;
        break;
      }
    }
  }
  resident_[r.page] = 1;
  cur_next_[r.page] = nu;
  heap_.emplace_back(nu, r.page);  // clic-lint: allow(no-alloc-hot-path) reason=OPT is offline/clairvoyant and never serves online; lazy-deletion heap growth is its core algorithm
  std::push_heap(heap_.begin(), heap_.end());
  ++count_;
  return false;
}

// clic-lint: hot-path
bool OptPolicy::Access(const Request& r, SeqNum seq) {
  return AccessOne(r, seq);
}

// clic-lint: hot-path
void OptPolicy::AccessBatch(const Request* reqs, SeqNum first_seq,
                            std::size_t n, std::uint8_t* hits_out) {
  // No PageTable here: the per-page state is the resident_ / cur_next_
  // pair, so those are what the lookahead warms.
  const std::size_t main =
      n > kBatchPrefetchDistance ? n - kBatchPrefetchDistance : 0;
  std::size_t i = 0;
  for (; i < main; ++i) {
    const PageId p = reqs[i + kBatchPrefetchDistance].page;
    __builtin_prefetch(&resident_[p], 0, 1);
    __builtin_prefetch(&cur_next_[p], 0, 1);
    hits_out[i] = AccessOne(reqs[i], first_seq + i);
  }
  for (; i < n; ++i) {
    hits_out[i] = AccessOne(reqs[i], first_seq + i);
  }
}

}  // namespace clic
