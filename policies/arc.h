// ARC (Megiddo & Modha, FAST 2003): adaptive replacement cache with two
// resident lists (T1 recency, T2 frequency) and two ghost lists (B1, B2)
// steering the adaptation target p. One of the five policies in every
// figure of the evaluation.
#pragma once

#include "core/policy.h"
#include "policies/common.h"

namespace clic {

class ArcPolicy : public Policy {
 public:
  explicit ArcPolicy(std::size_t cache_pages);

  bool Access(const Request& r, SeqNum seq) override;
  void AccessBatch(const Request* reqs, SeqNum first_seq, std::size_t n,
                   std::uint8_t* hits_out) override;

 private:
  enum class Where : std::uint8_t { kT1, kT2, kB1, kB2 };
  struct Payload {
    Where where = Where::kT1;
  };

  bool AccessOne(const Request& r);
  /// The REPLACE subroutine of the paper: demote from T1 or T2 into the
  /// corresponding ghost list according to the target p.
  void Replace(bool hit_in_b2);
  void DropGhost(ListHead& list);

  PageTable table_;
  ListArena<Payload> arena_;
  ListHead t1_, t2_, b1_, b2_;
  std::size_t c_;
  std::size_t p_ = 0;  // target size of T1
};

}  // namespace clic
