// Lossy Counting (Manku & Motwani, VLDB 2002). Deterministic
// epsilon-approximate frequency summary: the stream is cut into buckets
// of width ceil(1/epsilon); at each bucket boundary, entries whose
// count + delta falls below the current bucket id are pruned.
//
// Guarantees over a stream of N items:
//   * estimated count underestimates by at most epsilon * N,
//   * every item with true frequency >= epsilon * N is present.
// Offer() is amortized O(1) (the prune touches each entry at most once
// per insertion).
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace clic {

template <typename T>
class LossyCounting {
 public:
  struct Entry {
    T item{};
    std::uint64_t count = 0;   // lower bound on the true count
    std::uint64_t delta = 0;   // maximum undercount
  };

  explicit LossyCounting(double epsilon)
      : width_(epsilon > 0.0
                   ? std::max<std::uint64_t>(
                         1, static_cast<std::uint64_t>(1.0 / epsilon))
                   : 1) {}

  void Offer(const T& item) {
    ++n_;
    auto it = counts_.find(item);
    if (it != counts_.end()) {
      ++it->second.count;
    } else {
      counts_.emplace(item, Cell{1, bucket_ - 1});
    }
    if (n_ % width_ == 0) Prune();
  }

  std::uint64_t stream_length() const { return n_; }
  std::size_t size() const { return counts_.size(); }

  bool Contains(const T& item) const { return counts_.count(item) != 0; }

  std::uint64_t Count(const T& item) const {
    auto it = counts_.find(item);
    return it == counts_.end() ? 0 : it->second.count;
  }

  /// Surviving entries, highest estimated count first.
  std::vector<Entry> Items() const {
    std::vector<Entry> out;
    out.reserve(counts_.size());
    for (const auto& [item, cell] : counts_) {
      out.push_back(Entry{item, cell.count, cell.delta});
    }
    std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
      const std::uint64_t ub_a = a.count + a.delta;
      const std::uint64_t ub_b = b.count + b.delta;
      if (ub_a != ub_b) return ub_a > ub_b;
      return a.item < b.item;  // deterministic tie-break
    });
    return out;
  }

  void Clear() {
    counts_.clear();
    n_ = 0;
    bucket_ = 1;
  }

 private:
  struct Cell {
    std::uint64_t count;
    std::uint64_t delta;
  };

  void Prune() {
    for (auto it = counts_.begin(); it != counts_.end();) {
      if (it->second.count + it->second.delta <= bucket_) {
        it = counts_.erase(it);
      } else {
        ++it;
      }
    }
    ++bucket_;
  }

  std::uint64_t width_;
  std::uint64_t n_ = 0;
  std::uint64_t bucket_ = 1;  // current bucket id, 1-based
  std::unordered_map<T, Cell> counts_;
};

}  // namespace clic
