// Space-Saving top-k frequency summary (Metwally, Agrawal, El Abbadi,
// ICDT 2005) on the stream-summary data structure: counter nodes hang off
// count-buckets kept in a sorted doubly-linked list, so Offer() is O(1)
// (plus one expected-O(1) hash lookup) for every case — increment,
// insert, and min-replacement alike.
//
// Guarantees (with k counters over a stream of N items):
//   * every monitored item i satisfies true_count <= Count(i) and
//     Count(i) - Error(i) <= true_count,
//   * any item with true count > N/k is guaranteed to be monitored.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace clic {

template <typename T>
class SpaceSaving {
 public:
  struct Entry {
    T item{};
    std::uint64_t count = 0;
    std::uint64_t error = 0;
  };

  explicit SpaceSaving(std::size_t k) : capacity_(k == 0 ? 1 : k) {
    nodes_.reserve(capacity_);
    buckets_.reserve(capacity_ + 1);
    index_.reserve(capacity_ * 2);
  }

  /// Observes one occurrence of `item`.
  void Offer(const T& item) {
    auto it = index_.find(item);
    if (it != index_.end()) {
      Increment(it->second);
      return;
    }
    if (nodes_.size() < capacity_) {
      const std::uint32_t n = NewNode(item, /*count=*/0, /*error=*/0);
      index_.emplace(item, n);
      Increment(n);
      return;
    }
    // Replace the minimum-count item; its count becomes the error bound
    // of the newcomer.
    const std::uint32_t b = min_bucket_;
    const std::uint32_t n = buckets_[b].head;
    index_.erase(nodes_[n].item);
    nodes_[n].item = item;
    nodes_[n].error = buckets_[b].count;
    index_.emplace(item, n);
    Increment(n);
  }

  std::size_t size() const { return nodes_.size(); }
  std::size_t capacity() const { return capacity_; }

  bool Contains(const T& item) const { return index_.count(item) != 0; }

  /// Estimated count (upper bound on the true count); 0 if unmonitored.
  std::uint64_t Count(const T& item) const {
    auto it = index_.find(item);
    if (it == index_.end()) return 0;
    return buckets_[nodes_[it->second].bucket].count;
  }

  std::uint64_t Error(const T& item) const {
    auto it = index_.find(item);
    if (it == index_.end()) return 0;
    return nodes_[it->second].error;
  }

  /// All monitored entries, highest count first.
  std::vector<Entry> Items() const {
    std::vector<Entry> out;
    out.reserve(nodes_.size());
    // Walk buckets from the max end of the sorted list.
    for (std::uint32_t b = max_bucket_; b != kInvalid; b = buckets_[b].prev) {
      for (std::uint32_t n = buckets_[b].head; n != kInvalid;
           n = nodes_[n].next) {
        out.push_back(Entry{nodes_[n].item, buckets_[b].count,
                            nodes_[n].error});
      }
    }
    return out;
  }

  void Clear() {
    nodes_.clear();
    buckets_.clear();
    free_buckets_.clear();
    index_.clear();
    min_bucket_ = max_bucket_ = kInvalid;
  }

 private:
  static constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;

  struct Node {
    T item;
    std::uint64_t error;
    std::uint32_t bucket;
    std::uint32_t prev, next;  // within the bucket's node list
  };
  struct Bucket {
    std::uint64_t count;
    std::uint32_t head;        // first node
    std::uint32_t prev, next;  // sorted bucket list (ascending count)
  };

  std::uint32_t NewNode(const T& item, std::uint64_t count,
                        std::uint64_t error) {
    nodes_.push_back(Node{item, error, kInvalid, kInvalid, kInvalid});
    const std::uint32_t n = static_cast<std::uint32_t>(nodes_.size() - 1);
    AttachToBucketWithCount(n, count, /*after=*/kInvalid);
    return n;
  }

  /// Moves node n from its current bucket (count c) to a bucket with
  /// count c+1, creating/destroying buckets as needed. O(1).
  void Increment(std::uint32_t n) {
    const std::uint32_t b = nodes_[n].bucket;
    const std::uint64_t target = buckets_[b].count + 1;
    DetachNode(n);
    // The next bucket in ascending order either has the target count (move
    // there) or we splice a fresh bucket right after b — but b itself may
    // have just become empty, in which case it can be reused in place.
    const std::uint32_t nb = buckets_[b].next;
    if (nb != kInvalid && buckets_[nb].count == target) {
      AttachNodeToBucket(n, nb);
      if (buckets_[b].head == kInvalid) RemoveBucket(b);
      return;
    }
    if (buckets_[b].head == kInvalid) {
      buckets_[b].count = target;  // reuse the emptied bucket in place
      AttachNodeToBucket(n, b);
      return;
    }
    AttachToBucketWithCount(n, target, /*after=*/b);
  }

  void AttachToBucketWithCount(std::uint32_t n, std::uint64_t count,
                               std::uint32_t after) {
    // Find or create the bucket holding `count`, located right after
    // `after` (or at the min end when after == kInvalid).
    std::uint32_t pos = (after == kInvalid) ? min_bucket_ : buckets_[after].next;
    if (pos != kInvalid && buckets_[pos].count == count) {
      AttachNodeToBucket(n, pos);
      return;
    }
    const std::uint32_t b = AllocBucket(count);
    // Splice b before `pos` (and after `after`).
    buckets_[b].prev = (pos == kInvalid) ? max_bucket_ : buckets_[pos].prev;
    buckets_[b].next = pos;
    if (buckets_[b].prev != kInvalid) buckets_[buckets_[b].prev].next = b;
    if (pos != kInvalid) buckets_[pos].prev = b;
    if (min_bucket_ == pos) min_bucket_ = b;
    if (pos == kInvalid) max_bucket_ = b;
    if (min_bucket_ == kInvalid) min_bucket_ = b;
    AttachNodeToBucket(n, b);
  }

  void AttachNodeToBucket(std::uint32_t n, std::uint32_t b) {
    nodes_[n].bucket = b;
    nodes_[n].prev = kInvalid;
    nodes_[n].next = buckets_[b].head;
    if (buckets_[b].head != kInvalid) nodes_[buckets_[b].head].prev = n;
    buckets_[b].head = n;
  }

  void DetachNode(std::uint32_t n) {
    const std::uint32_t b = nodes_[n].bucket;
    if (nodes_[n].prev != kInvalid) {
      nodes_[nodes_[n].prev].next = nodes_[n].next;
    } else {
      buckets_[b].head = nodes_[n].next;
    }
    if (nodes_[n].next != kInvalid) nodes_[nodes_[n].next].prev = nodes_[n].prev;
    nodes_[n].prev = nodes_[n].next = kInvalid;
  }

  std::uint32_t AllocBucket(std::uint64_t count) {
    std::uint32_t b;
    if (!free_buckets_.empty()) {
      b = free_buckets_.back();
      free_buckets_.pop_back();
    } else {
      buckets_.push_back(Bucket{});
      b = static_cast<std::uint32_t>(buckets_.size() - 1);
    }
    buckets_[b] = Bucket{count, kInvalid, kInvalid, kInvalid};
    return b;
  }

  void RemoveBucket(std::uint32_t b) {
    if (buckets_[b].prev != kInvalid) {
      buckets_[buckets_[b].prev].next = buckets_[b].next;
    }
    if (buckets_[b].next != kInvalid) {
      buckets_[buckets_[b].next].prev = buckets_[b].prev;
    }
    if (min_bucket_ == b) min_bucket_ = buckets_[b].next;
    if (max_bucket_ == b) max_bucket_ = buckets_[b].prev;
    free_buckets_.push_back(b);
  }

  std::size_t capacity_;
  std::vector<Node> nodes_;
  std::vector<Bucket> buckets_;
  std::vector<std::uint32_t> free_buckets_;
  std::unordered_map<T, std::uint32_t> index_;
  std::uint32_t min_bucket_ = kInvalid;
  std::uint32_t max_bucket_ = kInvalid;
};

}  // namespace clic
