#!/usr/bin/env python3
"""Check that the repo's markdown docs only reference things that exist.

Usage: check_docs_links.py README.md DESIGN.md bench/README.md ...

Three classes of reference are verified, all relative to the repo root
(the parent directory of this script):

1. Markdown links `[text](path)` whose target is not a URL or anchor —
   the path must exist (resolved against the doc's directory first,
   then the repo root).
2. Backticked source paths — tokens ending in .h/.cc/.md/.py/.sh/.yml.
   With a '/' they must exist as given; bare filenames must match some
   file in the tree (so `bench_util.h` works without its directory).
   Runtime artifacts (.json/.csv/.trc logs) are deliberately excluded.
3. Backticked `./binary` invocations — the binary name must be a build
   target: clic_sweep, clic_serve, or a bench_*/test_* source basename.

Exit 1 on any missing reference, 2 on usage errors. Stdlib only; CI
runs this so a README quickstart can never name a file or target that
a fresh checkout does not have.
"""
import os
import re
import sys

SOURCE_EXTS = (".h", ".cc", ".md", ".py", ".sh", ".yml")
# Extensionless dotfiles the docs are allowed to reference by name; they
# fall outside SOURCE_EXTS so each one is opted in explicitly.
DOTFILE_REFS = {".clang-tidy"}
SKIP_DIRS = {".git", "build", "build-asan", "clic_trace_cache", ".claude"}
# `./name` tokens that are runtime artifacts (created by running the
# binaries), not build targets.
RUNTIME_DIRS = {"clic_trace_cache"}


def repo_files(root):
    found = set()
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames
                       if d not in SKIP_DIRS and not d.startswith("build")]
        for name in filenames:
            rel = os.path.relpath(os.path.join(dirpath, name), root)
            found.add(rel.replace(os.sep, "/"))
    return found


def known_targets(files):
    targets = {"clic_sweep", "clic_serve"}
    for path in files:
        base = os.path.basename(path)
        if base.endswith(".cc") and (base.startswith("bench_") or
                                     base.startswith("test_")):
            targets.add(base[:-3])
    return targets


def check_doc(doc, root, files, basenames, targets):
    problems = []
    try:
        with open(os.path.join(root, doc), encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        return [f"{doc}: cannot read: {e}"]
    doc_dir = os.path.dirname(doc)

    # 1. Markdown links.
    for match in re.finditer(r"\[[^\]]+\]\(([^)\s]+)\)", text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "#", "mailto:")):
            continue
        target = target.split("#")[0]
        if not target:
            continue
        rel_to_doc = os.path.normpath(os.path.join(doc_dir, target))
        if rel_to_doc.replace(os.sep, "/") in files or target in files:
            continue
        problems.append(f"{doc}: broken link target '{match.group(1)}'")

    # 2 + 3. Backticked references. Fenced ``` blocks contain no inline
    # backticks, so their command lines are collected separately: every
    # `./word` inside a fence must name a build target (this is what
    # keeps the README quickstart honest).
    fence_tokens = []
    in_fence = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            fence_tokens += [w for w in line.split() if w.startswith("./")]
    for token in fence_tokens:
        binary = token[2:]
        if re.fullmatch(r"[A-Za-z0-9_]+", binary) and \
                binary not in targets and binary not in RUNTIME_DIRS:
            problems.append(
                f"{doc}: unknown binary target '{token}' in code fence")

    for match in re.finditer(r"`([^`\n]+)`", text):
        token = match.group(1).strip()
        # Placeholders, globs, env vars, and flags are not paths.
        if any(c in token for c in "*<>$ {}|="):
            # ... but a `./binary --flags` invocation still names a
            # target in its first word.
            words = token.split()
            if words and words[0].startswith("./"):
                binary = words[0][2:]
                if re.fullmatch(r"[A-Za-z0-9_]+", binary) and \
                        binary not in targets:
                    problems.append(
                        f"{doc}: unknown binary target './{binary}'")
            continue
        if token.startswith("./") and "/" not in token[2:] and \
                "." not in token[2:]:
            if token[2:] not in targets and token[2:] not in RUNTIME_DIRS:
                problems.append(f"{doc}: unknown binary target '{token}'")
            continue
        # `name.h/.cc` is the docs' shorthand for the header/source
        # pair; expand it to both files.
        pair = re.fullmatch(r"([A-Za-z0-9_./-]+)\.h/\.cc", token)
        expanded = [pair.group(1) + ".h", pair.group(1) + ".cc"] if pair \
            else [token]
        for item in expanded:
            if item in DOTFILE_REFS:
                if item not in files:
                    problems.append(f"{doc}: missing source path '{item}'")
                continue
            if not (item.endswith(SOURCE_EXTS) and
                    re.fullmatch(r"[A-Za-z0-9_./-]+", item)):
                continue
            path = item[2:] if item.startswith("./") else item
            if "/" in path:
                if path not in files:
                    problems.append(f"{doc}: missing source path '{item}'")
            elif path not in basenames:
                problems.append(f"{doc}: missing source file '{item}'")
    return problems


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    root = os.path.dirname(os.path.dirname(os.path.abspath(argv[0])))
    files = repo_files(root)
    basenames = {os.path.basename(f) for f in files}
    targets = known_targets(files)
    problems = []
    for doc in argv[1:]:
        problems += check_doc(doc, root, files, basenames, targets)
    for problem in problems:
        print(f"check_docs_links: {problem}", file=sys.stderr)
    checked = len(argv) - 1
    if problems:
        print(f"check_docs_links: {len(problems)} problem(s) across "
              f"{checked} doc(s)", file=sys.stderr)
        return 1
    print(f"check_docs_links: OK ({checked} doc(s), {len(files)} repo files, "
          f"{len(targets)} targets)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
