#!/usr/bin/env python3
"""Repo-specific invariant linter for the CLIC codebase.

Enforces concurrency and determinism rules the compiler cannot express
(DESIGN.md "Static analysis" documents the catalog and rationale):

  no-mutex-data-path
      Mutex/lock/condition-variable tokens are forbidden in server/
      outside explicitly annotated control-path regions, and forbidden
      unconditionally (allow pragmas ignored) in common/spsc_ring.h —
      the lock-free data path must stay lock-free.
  no-wallclock-deterministic
      No wall-clock or ambient-randomness sources (steady_clock,
      system_clock, time(), rand(), random_device, ...) in core/, sim/,
      workload/, policies/, or the fault-injection trigger logic
      (server/fault_injection.*): deterministic replay code must be a
      pure function of the trace and the seed.
  no-bare-atomic-order
      Every atomic load/store/exchange/fetch_*/compare_exchange in
      common/spsc_ring.h and server/ must name an explicit
      std::memory_order — the default seq_cst hides the actual
      ordering contract the code depends on.
  no-alloc-hot-path
      No new/make_unique/container-growth calls lexically inside a
      function marked `// clic-lint: hot-path` (the policies'
      Access/AccessBatch loops and the SPSC ring push/pop).

Pragmas (parsed from comments, so they never collide with code):

  // clic-lint: allow(<rule>) reason=<text>          same-line suppression
  // clic-lint: begin-allow(<rule>) reason=<text>    region start
  // clic-lint: end-allow(<rule>)                    region end
  // clic-lint: hot-path                             marks the next function
  // clic-lint-fixture: <path>    (first line)       pretend repo path,
                                                     used by the test fixtures

Every allow must carry a non-empty reason; a missing reason, an unknown
rule name, or an unclosed region is a usage error (exit 2).

Usage:
  clic_lint.py [--root DIR] [--list-suppressions] [files...]

With no files, scans every .h/.cc under the repo root (skipping build
dirs and tests/lint_fixtures/). Exit codes: 0 clean, 1 violations
found, 2 usage or pragma error.
"""

import argparse
import os
import re
import sys

RULES = (
    "no-mutex-data-path",
    "no-wallclock-deterministic",
    "no-bare-atomic-order",
    "no-alloc-hot-path",
)

# no-mutex-data-path: identifier tokens that mean "a mutex or a lock".
MUTEX_TOKENS = {
    "mutex",
    "Mutex",
    "MutexLock",
    "shared_mutex",
    "recursive_mutex",
    "timed_mutex",
    "lock_guard",
    "unique_lock",
    "shared_lock",
    "scoped_lock",
    "condition_variable",
    "condition_variable_any",
}

# no-wallclock-deterministic: clock types and randomness sources are
# plain identifier tokens; the C functions are only flagged when called.
WALLCLOCK_TOKENS = {
    "steady_clock",
    "system_clock",
    "high_resolution_clock",
    "random_device",
    "gettimeofday",
    "clock_gettime",
}
WALLCLOCK_CALLS = {"time", "rand", "srand", "clock"}

# no-bare-atomic-order: member calls that take a memory_order argument.
ATOMIC_METHODS = (
    "load",
    "store",
    "exchange",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "compare_exchange_weak",
    "compare_exchange_strong",
)
ATOMIC_CALL_RE = re.compile(r"\.(%s)\s*\(" % "|".join(ATOMIC_METHODS))

# no-alloc-hot-path: allocation and container-growth calls.
ALLOC_CALLS = {
    "make_unique",
    "make_shared",
    "push_back",
    "emplace_back",
    "emplace_front",
    "emplace",
    "resize",
    "reserve",
    "insert",
    "assign",
}
NEW_RE = re.compile(r"\bnew\b")

IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
PRAGMA_RE = re.compile(
    r"clic-lint:\s*(allow|begin-allow|end-allow)\(([a-z-]+)\)(.*)")
HOTPATH_RE = re.compile(r"clic-lint:\s*hot-path\s*$")
FIXTURE_RE = re.compile(r"//\s*clic-lint-fixture:\s*(\S+)")
SKIP_DIRS = {".git", "build", "clic_trace_cache", "lint_fixtures"}


class PragmaError(Exception):
    """Malformed clic-lint pragma — a usage error, not a finding."""


def strip_code(lines):
    """Splits each physical line into (code, comment) with string and
    character literals blanked out of the code part. Tracks /* */ blocks
    across lines. Comment text is preserved so pragmas stay parseable.
    """
    out = []
    in_block = False
    for raw in lines:
        code = []
        comment = []
        i = 0
        n = len(raw)
        while i < n:
            if in_block:
                end = raw.find("*/", i)
                if end < 0:
                    comment.append(raw[i:])
                    i = n
                else:
                    comment.append(raw[i:end])
                    in_block = False
                    i = end + 2
                continue
            ch = raw[i]
            nxt = raw[i + 1] if i + 1 < n else ""
            if ch == "/" and nxt == "/":
                comment.append(raw[i + 2:])
                i = n
            elif ch == "/" and nxt == "*":
                in_block = True
                i += 2
            elif ch == '"' or ch == "'":
                quote = ch
                i += 1
                while i < n:
                    if raw[i] == "\\":
                        i += 2
                        continue
                    if raw[i] == quote:
                        i += 1
                        break
                    i += 1
                code.append(" ")  # blank the whole literal
            else:
                code.append(ch)
                i += 1
        out.append(("".join(code), "".join(comment)))
    return out


def parse_pragma(comment, path, lineno):
    """Returns (kind, rule, reason) for an allow pragma in `comment`,
    ('hot-path', None, None) for a hot-path marker, or None."""
    if HOTPATH_RE.search(comment):
        return ("hot-path", None, None)
    m = PRAGMA_RE.search(comment)
    if m is None:
        if "clic-lint:" in comment and "clic-lint-fixture" not in comment:
            raise PragmaError(
                "%s:%d: unparseable clic-lint pragma: %s"
                % (path, lineno, comment.strip()))
        return None
    kind, rule, rest = m.group(1), m.group(2), m.group(3)
    if rule not in RULES:
        raise PragmaError(
            "%s:%d: unknown rule '%s' (known: %s)"
            % (path, lineno, rule, ", ".join(RULES)))
    reason = None
    if kind in ("allow", "begin-allow"):
        rm = re.search(r"reason=(.+)$", rest)
        if rm is None or not rm.group(1).strip():
            raise PragmaError(
                "%s:%d: %s(%s) needs a non-empty reason=..."
                % (path, lineno, kind, rule))
        reason = rm.group(1).strip()
    return (kind, rule, reason)


def hot_path_ranges(stripped, markers):
    """Maps each hot-path marker to the (start, end) line range of the
    function body that follows it: the first '{' at or after the marker
    through its matching '}'."""
    ranges = []
    for marker_line in markers:
        depth = 0
        started = False
        start = None
        for idx in range(marker_line, len(stripped)):
            code = stripped[idx][0]
            for ch in code:
                if ch == "{":
                    if not started:
                        started = True
                        start = idx
                    depth += 1
                elif ch == "}":
                    if started:
                        depth -= 1
            if started and depth == 0:
                ranges.append((start, idx))
                break
        else:
            if started:
                ranges.append((start, len(stripped) - 1))
    return ranges


def atomic_call_has_order(stripped, lineno, col):
    """True when the atomic call opening at (lineno, col) names an
    explicit std::memory_order inside its argument list."""
    depth = 0
    idx = lineno
    pos = col
    text = []
    while idx < len(stripped):
        code = stripped[idx][0]
        while pos < len(code):
            ch = code[pos]
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    return "memory_order" in "".join(text)
            if depth >= 1:
                text.append(ch)
            pos += 1
        idx += 1
        pos = 0
    return "memory_order" in "".join(text)


class FileLinter:
    def __init__(self, path, effective_path, lines):
        self.path = path  # real path, used in messages
        self.scope = effective_path  # rule-scoping path (fixture override)
        self.lines = lines
        self.stripped = strip_code(lines)
        self.violations = []
        self.suppressions = []  # (path, lineno, rule, reason)

    # ---- scoping ----------------------------------------------------------

    def in_server(self):
        return self.scope.startswith("server/")

    def is_ring(self):
        return self.scope == "common/spsc_ring.h"

    def in_deterministic_scope(self):
        for prefix in ("core/", "sim/", "workload/", "policies/"):
            if self.scope.startswith(prefix):
                return True
        return self.scope in ("server/fault_injection.h",
                              "server/fault_injection.cc")

    # ---- driver -----------------------------------------------------------

    def run(self):
        allow_regions = {rule: 0 for rule in RULES}  # open region depth
        line_allows = []  # per-line set of allowed rules
        hot_markers = []
        for idx, (_, comment) in enumerate(self.stripped):
            allowed = set()
            pragma = parse_pragma(comment, self.path, idx + 1)
            if pragma is not None:
                kind, rule, reason = pragma
                if kind == "hot-path":
                    hot_markers.append(idx)
                elif kind == "allow":
                    allowed.add(rule)
                    self.suppressions.append(
                        (self.path, idx + 1, rule, reason))
                elif kind == "begin-allow":
                    allow_regions[rule] += 1
                    self.suppressions.append(
                        (self.path, idx + 1, rule, reason))
                elif kind == "end-allow":
                    if allow_regions[rule] <= 0:
                        raise PragmaError(
                            "%s:%d: end-allow(%s) without a matching "
                            "begin-allow" % (self.path, idx + 1, rule))
                    allow_regions[rule] -= 1
            for rule, depth in allow_regions.items():
                if depth > 0:
                    allowed.add(rule)
            line_allows.append(allowed)
        for rule, depth in allow_regions.items():
            if depth > 0:
                raise PragmaError(
                    "%s: begin-allow(%s) never closed by end-allow"
                    % (self.path, rule))

        self.check_mutex(line_allows)
        self.check_wallclock(line_allows)
        self.check_atomic_order(line_allows)
        self.check_alloc(line_allows, hot_markers)
        return self.violations

    def report(self, lineno, rule, message):
        self.violations.append(
            "%s:%d: [%s] %s" % (self.path, lineno, rule, message))

    # ---- rules ------------------------------------------------------------

    def check_mutex(self, line_allows):
        rule = "no-mutex-data-path"
        hard = self.is_ring()
        if not (hard or (self.in_server()
                         and self.scope.endswith((".h", ".cc")))):
            return
        for idx, (code, _) in enumerate(self.stripped):
            if code.lstrip().startswith("#"):
                continue  # includes may name <mutex> etc.
            # Allow pragmas are honored in server/ but ignored in the
            # ring: its data path must stay lock-free unconditionally.
            if not hard and rule in line_allows[idx]:
                continue
            for token in IDENT_RE.findall(code):
                if token in MUTEX_TOKENS:
                    where = ("forbidden in the lock-free ring"
                             if hard else
                             "outside an annotated control-path region")
                    self.report(idx + 1, rule,
                                "'%s' %s" % (token, where))

    def check_wallclock(self, line_allows):
        rule = "no-wallclock-deterministic"
        if not self.in_deterministic_scope():
            return
        for idx, (code, _) in enumerate(self.stripped):
            if rule in line_allows[idx]:
                continue
            for m in IDENT_RE.finditer(code):
                token = m.group(0)
                if token in WALLCLOCK_TOKENS:
                    self.report(idx + 1, rule,
                                "'%s' in deterministic code" % token)
                elif token in WALLCLOCK_CALLS:
                    rest = code[m.end():].lstrip()
                    if rest.startswith("("):
                        self.report(
                            idx + 1, rule,
                            "call to '%s()' in deterministic code" % token)

    def check_atomic_order(self, line_allows):
        rule = "no-bare-atomic-order"
        if not (self.is_ring() or self.in_server()):
            return
        for idx, (code, _) in enumerate(self.stripped):
            if rule in line_allows[idx]:
                continue
            for m in ATOMIC_CALL_RE.finditer(code):
                open_paren = m.end() - 1
                if not atomic_call_has_order(self.stripped, idx, open_paren):
                    self.report(
                        idx + 1, rule,
                        "atomic .%s() without an explicit std::memory_order"
                        % m.group(1))

    def check_alloc(self, line_allows, hot_markers):
        rule = "no-alloc-hot-path"
        if not hot_markers:
            return
        for start, end in hot_path_ranges(self.stripped, hot_markers):
            for idx in range(start, end + 1):
                if rule in line_allows[idx]:
                    continue
                code = self.stripped[idx][0]
                if NEW_RE.search(code):
                    self.report(idx + 1, rule,
                                "'new' inside a hot-path function")
                for m in IDENT_RE.finditer(code):
                    token = m.group(0)
                    if token in ALLOC_CALLS:
                        rest = code[m.end():].lstrip()
                        if rest.startswith("("):
                            self.report(
                                idx + 1, rule,
                                "'%s(' (allocation/growth) inside a "
                                "hot-path function" % token)


def effective_path(real_path, root, first_line):
    m = FIXTURE_RE.match(first_line.strip())
    if m:
        return m.group(1)
    rel = os.path.relpath(real_path, root)
    return rel.replace(os.sep, "/")


def collect_files(root):
    found = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d for d in dirnames
            if d not in SKIP_DIRS and not d.startswith("build"))
        for name in sorted(filenames):
            if name.endswith((".h", ".cc")):
                found.append(os.path.join(dirpath, name))
    return found


def main(argv):
    parser = argparse.ArgumentParser(
        description="CLIC repo invariant linter (see DESIGN.md)")
    parser.add_argument("files", nargs="*",
                        help="files to lint (default: whole repo)")
    parser.add_argument("--root", default=None,
                        help="repo root for scoping (default: the "
                             "directory containing tools/)")
    parser.add_argument("--list-suppressions", action="store_true",
                        help="print every allow pragma with its reason")
    args = parser.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    files = args.files or collect_files(root)
    if not files:
        print("clic_lint: no files to lint under %s" % root,
              file=sys.stderr)
        return 2

    violations = []
    suppressions = []
    for path in files:
        try:
            with open(path, encoding="utf-8") as fh:
                lines = fh.read().splitlines()
        except OSError as err:
            print("clic_lint: cannot read %s: %s" % (path, err),
                  file=sys.stderr)
            return 2
        scope = effective_path(path, root, lines[0] if lines else "")
        linter = FileLinter(path, scope, lines)
        try:
            violations.extend(linter.run())
        except PragmaError as err:
            print("clic_lint: %s" % err, file=sys.stderr)
            return 2
        suppressions.extend(linter.suppressions)

    for v in violations:
        print(v)
    if args.list_suppressions:
        for path, lineno, rule, reason in suppressions:
            print("suppression %s:%d [%s] %s" % (path, lineno, rule, reason))
    print("clic_lint: %d violation(s), %d suppression(s), %d file(s)"
          % (len(violations), len(suppressions), len(files)))
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
