#!/usr/bin/env python3
"""Gate the micro-throughput floors against a bench JSON-Lines log.

Usage: check_bench_floors.py BENCH_PR4.json [LRU_FLOOR CLIC_FLOOR]

Reads the rows AppendBenchJson (bench/bench_util.h) emitted — one JSON
object per line with at least {"bench": ..., "requests_per_sec": ...} —
and fails (exit 1) when the best observed rate for LRU or CLIC falls
below its floor (defaults: LRU 10M req/s, CLIC 2M req/s, the guardrails
bench/README.md has carried since PR 1). Exit 2 for a missing/empty log
or a policy with no rows at all, so a silently skipped bench can never
pass the gate. Stdlib only; meant for the Release CI job (sanitizer
builds are order-of-magnitude slower and do not gate floors).
"""
import json
import sys


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = argv[1]
    floors = {
        "LRU": float(argv[2]) if len(argv) > 2 else 10e6,
        "CLIC": float(argv[3]) if len(argv) > 3 else 2e6,
    }
    best = {policy: None for policy in floors}
    try:
        lines = open(path).read().splitlines()
    except OSError as e:
        print(f"check_bench_floors: cannot read {path}: {e}", file=sys.stderr)
        return 2
    rows = 0
    for line in lines:
        line = line.strip()
        if not line:
            continue
        row = json.loads(line)
        rows += 1
        name = row.get("bench", "")
        rate = float(row.get("requests_per_sec", 0.0))
        # A row counts toward a policy when its bench name contains the
        # policy as a path component (Micro/requests_per_second/LRU,
        # MicroBatch/CLIC/batch:4096, ...).
        parts = name.split("/")
        for policy in floors:
            if policy in parts:
                if best[policy] is None or rate > best[policy]:
                    best[policy] = rate
    if rows == 0:
        print(f"check_bench_floors: {path} has no rows", file=sys.stderr)
        return 2
    failed = False
    for policy, floor in floors.items():
        rate = best[policy]
        if rate is None:
            print(f"check_bench_floors: no rows for {policy} in {path}",
                  file=sys.stderr)
            return 2
        verdict = "OK" if rate >= floor else "BELOW FLOOR"
        print(f"check_bench_floors: {policy:5s} best {rate/1e6:8.2f} M req/s "
              f"(floor {floor/1e6:.0f}M) {verdict}")
        failed = failed or rate < floor
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
