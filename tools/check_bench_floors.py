#!/usr/bin/env python3
"""Gate the micro-throughput floors against a bench JSON-Lines log.

Usage: check_bench_floors.py BENCH_PR4.json [LRU_FLOOR CLIC_FLOOR]

Reads the rows AppendBenchJson (bench/bench_util.h) emitted — one JSON
object per line with at least {"bench": ..., "requests_per_sec": ...} —
and fails (exit 1) when the best observed rate for LRU or CLIC falls
below its floor (defaults: LRU 10M req/s, CLIC 2M req/s, the guardrails
bench/README.md has carried since PR 1). Exit 2 for a missing/empty log
or a policy with no rows at all, so a silently skipped bench can never
pass the gate. Stdlib only; meant for the Release CI job (sanitizer
builds are order-of-magnitude slower and do not gate floors).

Rows with mode=="overload" (from bench_overload, PR 6) are gated on
correctness instead of speed: the shed-accounting ledger must balance
EXACTLY — submitted == served + shed + timed_out + expired + stopped —
and each run must actually serve something. A request the server
neither served nor accounted for as rejected is a lost write from the
client's point of view, so any imbalance fails the build.

Rows with mode=="net" (from bench_net_serving, PR 9) extend the same
correctness gate to the wire edge: every request that arrived in a
frame whose header parsed — well-formed or poisoned — must be accounted
for exactly once, so submitted == served + shed + timed_out + expired +
stopped + wire_rejected, and each run must actually serve something.
wire_rejected counts requests inside frames the fail-closed parser
refused (bad checksum, bad lengths, garbage); a request that is neither
served, rejected by admission, nor rejected at the wire is a lost write
and fails the build. Rows may also carry healthy_ratio (healthy
connections' throughput under slow-reader + churn antagonists relative
to the fault-free wire baseline); it is printed for the record — the
>= 0.90 expectation is a bench/README.md baseline, not a hard gate,
because CI boxes share cores with the antagonists themselves.

Rows with mode=="scenario" (from bench_scenarios) never feed the
throughput floors — a full policy simulation is not the micro bench.
They instead gate the adaptive-window claim (PR 10): for every
(preset, cache_pages, requests) where both a fixed-window CLIC row
(adaptive=false) and a CLIC-adaptive row (adaptive=true) are present,
the adaptive hit ratio must not be materially worse than fixed (2%
relative slack — on stationary presets the equivalence tests pin them
bit-identical, so any real gap is a spurious-early-close regression),
and on a full-length phase-abrupt run (requests >= 600000, so the
trace actually contains phase changes) adaptive must beat fixed by at
least 0.10 absolute hit ratio — the recovery the adaptive window
exists to buy. Phase-abrupt pairs that only exist at capped lengths
print an explicit skip note instead of demanding a phase change the
trace never contained.

Rows with mode=="server" (from bench_server_scaling, PR 7) gate the
thread-per-core shard-ownership claim: on a machine that actually has
cores to scale across (any row reports cores_detected > 1), the best
multi-consumer rate per policy must be at least as good as the best
single-consumer rate — shard ownership that LOSES throughput when given
more cores means the rings or the routing regressed. On a 1-core box
the server collapses every topology to one consumer, so the gate prints
an explicit skip note instead of demanding scaling the hardware cannot
show. Missing expected rows (a policy with multi-core rows but no
single- or multi-consumer sample) exits 2, same as a missing log.
"""
import json
import sys


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = argv[1]
    floors = {
        "LRU": float(argv[2]) if len(argv) > 2 else 10e6,
        "CLIC": float(argv[3]) if len(argv) > 3 else 2e6,
    }
    best = {policy: None for policy in floors}
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        print(f"check_bench_floors: cannot read {path}: {e}", file=sys.stderr)
        return 2
    rows = 0
    overload_rows = 0
    overload_failures = 0
    net_rows = 0
    net_failures = 0
    net_ratios = []  # (bench name, healthy_ratio) for the record
    # mode=="server" scaling samples: per policy, best rate seen with one
    # consumer and best rate seen with more than one (plus whether any
    # row saw a multi-core machine at all).
    server_single = {policy: None for policy in floors}
    server_multi = {policy: None for policy in floors}
    server_rows = 0
    multicore_seen = False
    # mode=="scenario" samples: hit ratio per (preset, cache, requests,
    # adaptive) — the adaptive-vs-fixed gate pairs them up below.
    scenario_hits = {}
    scenario_rows = 0
    for line in lines:
        line = line.strip()
        if not line:
            continue
        row = json.loads(line)
        rows += 1
        name = row.get("bench", "")
        if row.get("mode") == "server":
            server_rows += 1
            rate = float(row.get("requests_per_sec", 0.0))
            consumers = int(row.get("consumers", 1))
            if int(row.get("cores_detected", 1)) > 1:
                multicore_seen = True
            parts = name.split("/")
            for policy in floors:
                if policy in parts:
                    bucket = server_single if consumers <= 1 else server_multi
                    if bucket[policy] is None or rate > bucket[policy]:
                        bucket[policy] = rate
            continue  # scaling rows are gated below, not by the floors
        if row.get("mode") == "scenario":
            scenario_rows += 1
            # Scenario/<preset>/<policy>/<cache>; only CLIC rows (fixed
            # or adaptive) join the pairing — LRU/ARC rows are context.
            parts = name.split("/")
            if "adaptive" in row and len(parts) >= 4 and \
                    parts[2] in ("CLIC", "CLIC-adaptive"):
                key = (parts[1], int(row.get("cache_pages", 0)),
                       int(row.get("requests", 0)))
                slot = scenario_hits.setdefault(key, {})
                slot[bool(row["adaptive"])] = \
                    float(row.get("read_hit_ratio", 0.0))
            continue  # scenario rows never feed the throughput floors
        if row.get("mode") == "net":
            net_rows += 1
            submitted = int(row.get("submitted", -1))
            parts_sum = sum(int(row.get(k, 0)) for k in
                            ("served", "shed", "timed_out", "expired",
                             "stopped", "wire_rejected"))
            served = int(row.get("served", 0))
            if submitted < 0 or submitted != parts_sum or served <= 0:
                print(f"check_bench_floors: {name}: net ledger broken: "
                      f"submitted={submitted} != served+shed+timed_out+"
                      f"expired+stopped+wire_rejected={parts_sum} "
                      f"(served={served})", file=sys.stderr)
                net_failures += 1
            if "healthy_ratio" in row:
                net_ratios.append((name, float(row["healthy_ratio"])))
            continue  # net rows never feed the throughput floors
        if row.get("mode") == "overload":
            overload_rows += 1
            submitted = int(row.get("submitted", -1))
            parts_sum = sum(int(row.get(k, 0)) for k in
                            ("served", "shed", "timed_out", "expired",
                             "stopped"))
            served = int(row.get("served", 0))
            if submitted < 0 or submitted != parts_sum or served <= 0:
                print(f"check_bench_floors: {name}: overload ledger broken: "
                      f"submitted={submitted} != served+shed+timed_out+"
                      f"expired+stopped={parts_sum} (served={served})",
                      file=sys.stderr)
                overload_failures += 1
            continue  # overload rows never feed the throughput floors
        rate = float(row.get("requests_per_sec", 0.0))
        # A row counts toward a policy when its bench name contains the
        # policy as a path component (Micro/requests_per_second/LRU,
        # MicroBatch/CLIC/batch:4096, ...).
        parts = name.split("/")
        for policy in floors:
            if policy in parts:
                if best[policy] is None or rate > best[policy]:
                    best[policy] = rate
    if rows == 0:
        print(f"check_bench_floors: {path} has no rows", file=sys.stderr)
        return 2
    if overload_rows:
        verdict = "OK" if overload_failures == 0 else "BROKEN"
        print(f"check_bench_floors: overload ledger exact in "
              f"{overload_rows - overload_failures}/{overload_rows} rows "
              f"{verdict}")
    if net_rows:
        verdict = "OK" if net_failures == 0 else "BROKEN"
        print(f"check_bench_floors: net ledger exact in "
              f"{net_rows - net_failures}/{net_rows} rows {verdict}")
        for name, ratio in net_ratios:
            print(f"check_bench_floors: {name}: healthy_ratio = "
                  f"{ratio:.2f} (README baseline: >= 0.90)")
    failed = overload_failures > 0 or net_failures > 0
    if scenario_rows:
        pairs = {k: v for k, v in scenario_hits.items()
                 if False in v and True in v}
        abrupt_full_seen = False
        abrupt_pair_seen = False
        for (preset, cache, requests), v in sorted(pairs.items()):
            fixed, adaptive = v[False], v[True]
            point = f"{preset}@{cache} (n={requests})"
            if adaptive < fixed * 0.98:
                print(f"check_bench_floors: {point}: adaptive hit "
                      f"{adaptive:.4f} materially below fixed {fixed:.4f} "
                      f"REGRESSED", file=sys.stderr)
                failed = True
            if preset == "phase-abrupt":
                abrupt_pair_seen = True
                if requests >= 600000:
                    abrupt_full_seen = True
                    verdict = "OK" if adaptive >= fixed + 0.10 else \
                        "NO RECOVERY"
                    print(f"check_bench_floors: {point}: adaptive "
                          f"{adaptive:.4f} vs fixed {fixed:.4f} "
                          f"(need >= fixed + 0.10) {verdict}")
                    failed = failed or adaptive < fixed + 0.10
        if abrupt_pair_seen and not abrupt_full_seen:
            print("check_bench_floors: adaptive recovery gate SKIPPED "
                  "(phase-abrupt pairs only at capped lengths: the trace "
                  "never reaches a phase change)")
    if server_rows:
        if not multicore_seen:
            print("check_bench_floors: server scaling gate SKIPPED "
                  "(cores_detected=1 everywhere: one consumer is the only "
                  "topology this box can run)")
        else:
            for policy in floors:
                single, multi = server_single[policy], server_multi[policy]
                if single is None or multi is None:
                    print(f"check_bench_floors: {policy}: multi-core server "
                          f"rows present but missing a "
                          f"{'single' if single is None else 'multi'}"
                          f"-consumer sample in {path}", file=sys.stderr)
                    return 2
                ratio = multi / single if single > 0 else 0.0
                verdict = "OK" if multi >= single else "REGRESSED"
                print(f"check_bench_floors: {policy:5s} server scaling "
                      f"multi/single = {multi/1e6:.2f}M/{single/1e6:.2f}M "
                      f"req/s ({ratio:.2f}x) {verdict}")
                failed = failed or multi < single
    for policy, floor in floors.items():
        rate = best[policy]
        if rate is None:
            print(f"check_bench_floors: no rows for {policy} in {path}",
                  file=sys.stderr)
            return 2
        verdict = "OK" if rate >= floor else "BELOW FLOOR"
        print(f"check_bench_floors: {policy:5s} best {rate/1e6:8.2f} M req/s "
              f"(floor {floor/1e6:.0f}M) {verdict}")
        failed = failed or rate < floor
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
