#include "sweep/trace_cache.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

#include <dirent.h>
#include <sys/stat.h>

#include "sim/trace_io.h"
#include "workload/scenario.h"
#include "workload/trace_factory.h"

namespace clic::sweep {

std::uint64_t RequestCapFromEnv() {
  constexpr std::uint64_t kDefault = 2'000'000;  // full suite in minutes
  const char* env = std::getenv("CLIC_BENCH_REQUESTS");
  if (env == nullptr || *env == '\0') return kDefault;
  errno = 0;
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(env, &end, 10);
  if (errno != 0 || end == env || *end != '\0' || value == 0) {
    std::fprintf(stderr,
                 "CLIC_BENCH_REQUESTS='%s' is not a positive integer; "
                 "using default %llu\n",
                 env, static_cast<unsigned long long>(kDefault));
    return kDefault;
  }
  return value;
}

std::string CacheDirFromEnv() {
  if (const char* env = std::getenv("CLIC_TRACE_CACHE_DIR")) return env;
  return "clic_trace_cache";
}

// Collects `.tmp.` orphans left by crashed or killed savers (SaveTrace
// writes to unique `<path>.tmp.<pid>.<n>` names, so nothing overwrites
// them). The age threshold is the whole safety argument: an in-flight
// save from a live concurrent process is seconds old and must never be
// unlinked out from under its writer, so only files strictly older
// than `max_age_seconds` are touched.
std::size_t CollectStaleTempFiles(const std::string& dir,
                                  std::time_t max_age_seconds) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return 0;
  const std::time_t now = std::time(nullptr);
  std::size_t removed = 0;
  while (const dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.find(".tmp.") == std::string::npos) continue;
    const std::string path = dir + "/" + name;
    struct stat st{};
    if (::stat(path.c_str(), &st) == 0 && now - st.st_mtime > max_age_seconds &&
        std::remove(path.c_str()) == 0) {
      ++removed;
    }
  }
  ::closedir(d);
  return removed;
}

TraceCache::TraceCache(std::string dir, std::uint64_t request_cap)
    : dir_(std::move(dir)), request_cap_(request_cap) {}

TraceCache& TraceCache::Global() {
  static TraceCache cache(CacheDirFromEnv(), RequestCapFromEnv());
  return cache;
}

const Trace& TraceCache::Get(const std::string& name) {
  Entry* entry = nullptr;
  {
    MutexLock lock(map_mutex_);
    entry = &entries_[name];
  }
  std::call_once(entry->once, [&] { Fill(name, *entry); });
  return *entry->trace;
}

void TraceCache::Fill(const std::string& name, Entry& entry) {
  std::uint64_t target = 0;
  bool named = false;
  for (const NamedTraceInfo& info : NamedTraces()) {
    if (info.name == name) {
      target = info.target_requests;
      named = true;
    }
  }
  // Not one of the eight paper traces: a scenario preset or inline
  // workload spec (workload/scenario.h). Scenario traces share the same
  // disk cache with their own generator-version suffix.
  std::optional<WorkloadSpec> scenario;
  if (!named) {
    std::string error;
    scenario = ResolveWorkload(name, &error);
    if (!scenario) {
      std::fprintf(stderr,
                   "TraceCache: unknown workload '%s': %s (see "
                   "NamedTraces() and ScenarioPresets())\n",
                   name.c_str(), error.c_str());
      std::exit(1);
    }
    target = scenario->requests;
  }
  target = std::min(target, request_cap_);

  if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "TraceCache: mkdir('%s') failed: %s\n", dir_.c_str(),
                 std::strerror(errno));
    std::exit(1);
  }
  std::call_once(cleanup_once_, [this] { CollectStaleTempFiles(dir_); });
  // Cache key = name + target length + generator version: any of the
  // three changing invalidates the cached file. Scenario files hash
  // unsafe spec characters out of the stem and carry the scenario
  // engine's own version counter.
  const std::string path =
      named ? dir_ + "/" + name + "_" + std::to_string(target) + "_g" +
                  std::to_string(kTraceGeneratorVersion) + ".trc"
            : dir_ + "/" + ScenarioCacheStem(name) + "_" +
                  std::to_string(target) + "_s" +
                  std::to_string(kScenarioGeneratorVersion) + ".trc";
  if (auto loaded = LoadTrace(path, name)) {
    entry.trace = std::make_unique<const Trace>(std::move(*loaded));
    return;
  }
  Trace generated = named ? MakeNamedTrace(name, target)
                          : MakeScenarioTrace(*scenario, target);
  if (!SaveTrace(generated, path)) {
    std::fprintf(stderr,
                 "TraceCache: warning: could not cache trace to %s\n",
                 path.c_str());
  }
  entry.trace = std::make_unique<const Trace>(std::move(generated));
}

}  // namespace clic::sweep
