// Process-wide trace cache with per-trace once-initialization.
//
// The figure benches and the sweep runner both replay the same eight
// named traces; this cache generates (or disk-loads) each trace exactly
// once per process and hands out shared immutable references. Locking
// is per trace: concurrent Get() calls for the *same* name block until
// one generation finishes, calls for *distinct* names generate in
// parallel — a whole-trace generation is a multi-second job, so a
// single global critical section would serialize the sweep thread pool.
#pragma once

#include <cstdint>
#include <ctime>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/thread_annotations.h"
#include "core/trace.h"

namespace clic::sweep {

/// Parses CLIC_BENCH_REQUESTS (cap on generated trace length). Garbage
/// values are rejected loudly and fall back to the 2M default.
std::uint64_t RequestCapFromEnv();

/// CLIC_TRACE_CACHE_DIR, default "clic_trace_cache".
std::string CacheDirFromEnv();

/// Age below which a `*.tmp.<pid>.<counter>` file in the cache dir is
/// presumed to belong to a live racing saver (another bench process
/// mid-SaveTrace) and must never be collected. A healthy save lasts
/// seconds; ten minutes of slack keeps even a heavily loaded machine
/// safe while still reclaiming genuinely orphaned temp files.
inline constexpr std::time_t kStaleTempFileAgeSeconds = 600;

/// Removes `.tmp.` orphans under `dir` whose mtime is strictly older
/// than `max_age_seconds`. Returns the number of files removed.
/// TraceCache runs this once per process on first use; exposed so the
/// age-threshold contract is directly testable.
std::size_t CollectStaleTempFiles(const std::string& dir,
                                  std::time_t max_age_seconds =
                                      kStaleTempFileAgeSeconds);

class TraceCache {
 public:
  /// `dir` is created on first use; `request_cap` bounds every trace's
  /// length (the cap is part of the on-disk cache key).
  TraceCache(std::string dir, std::uint64_t request_cap);

  /// Returns the named workload — one of the eight paper traces, a
  /// scenario preset, or an inline scenario spec (workload/scenario.h)
  /// — generated once and cached on disk across processes. Thread-safe
  /// (per-trace granularity, see file comment). The reference stays
  /// valid for the cache's lifetime. Unknown names and an unusable
  /// cache directory exit(1): silently replaying an empty trace would
  /// report fake hit ratios.
  const Trace& Get(const std::string& name);

  const std::string& dir() const { return dir_; }
  std::uint64_t request_cap() const { return request_cap_; }

  /// The env-configured process-wide instance the benches share.
  static TraceCache& Global();

 private:
  struct Entry {
    std::once_flag once;
    std::unique_ptr<const Trace> trace;
  };

  void Fill(const std::string& name, Entry& entry);

  std::string dir_;
  std::uint64_t request_cap_;
  std::once_flag cleanup_once_;  // stale-temp-file sweep, once per cache
  Mutex map_mutex_;  // guards the map structure only, never held
                     // across generation
  std::map<std::string, Entry> entries_ CLIC_GUARDED_BY(map_mutex_);
  // entries_ is node-based: entry addresses are stable, never erased,
  // so a reference obtained under the lock stays valid after release.
};

}  // namespace clic::sweep
