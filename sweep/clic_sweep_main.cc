// clic_sweep: replay any figure's (trace × policy × cache-size) grid on
// a thread pool and emit one CSV or JSON row per point.
//
//   clic_sweep --figure=6 --threads=8 --format=csv --output=fig6.csv
//   clic_sweep --traces=DB2_C60,MY_H65 --policies=LRU,CLIC
//              --cache-pages=6000,12000 --threads=4 --format=json
//
// Row order is the grid expansion order (traces, then policies, then
// cache sizes) for every thread count, so outputs from different
// --threads values diff clean (wall_seconds column aside).
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/cli_util.h"
#include "sweep/sweep.h"
#include "sweep/trace_cache.h"
#include "workload/scenario.h"
#include "workload/trace_factory.h"

namespace clic::sweep {
namespace {

constexpr char kProg[] = "clic_sweep";

struct CliOptions {
  SweepSpec spec;
  unsigned threads = 0;  // 0 = hardware concurrency
  std::uint64_t requests = 0;  // 0 = CLIC_BENCH_REQUESTS / default
  std::string cache_dir;       // empty = CLIC_TRACE_CACHE_DIR / default
  std::string format = "csv";
  std::string output;  // empty = stdout
};

/// Which CLIC option flags appeared explicitly on the command line. A
/// --figure preset may carry its own CLIC options (the phase-shift grid
/// ships a phase-tracking window/decay); explicit flags must beat the
/// preset no matter where they appear relative to --figure, so the
/// preset's options are merged field-by-field against this record.
struct ClicFlagSet {
  bool window = false;
  bool decay = false;
  bool outqueue = false;
  bool top_k = false;
  bool tracker = false;
  bool charge_metadata = false;
  bool adaptive_window = false;
  bool churn_threshold = false;
  bool min_window = false;
  bool max_window = false;
};

void Usage(std::FILE* out) {
  std::fprintf(
      out,
      "Usage: clic_sweep [flags]\n"
      "\n"
      "Grid selection (a --figure preset, explicit flags, or both —\n"
      "explicit flags override the preset's corresponding field):\n"
      "  --figure=NAME             preset grid, one of: %s\n"
      "                            (6|7|8|ablation are the paper grids;\n"
      "                            the rest are scenario grids)\n"
      "  --traces=A,B              named traces or scenario presets\n"
      "                            (see --list)\n"
      "  --policies=LRU,CLIC       policy names (see --list)\n"
      "  --cache-pages=6000,12000  server cache sizes, in pages\n",
      ::clic::cli::KnownFigureNames().c_str());
  std::fprintf(
      out,
      "\n"
      "Execution:\n"
      "  --threads=N        worker threads (default: hardware concurrency)\n"
      "  --requests=N       cap trace length (overrides CLIC_BENCH_REQUESTS)\n"
      "  --cache-dir=PATH   trace cache dir (overrides "
      "CLIC_TRACE_CACHE_DIR)\n"
      "\n"
      "CLIC options (defaults are the paper's Section 6.1 setup):\n"
      "  --window=W --decay=R --outqueue=N --no-charge-metadata\n"
      "  --tracker=exact|space_saving|lossy_counting --top-k=K\n"
      "  --adaptive-window  churn-triggered early window close (see\n"
      "                     DESIGN.md \"Adaptive windowing\")\n"
      "  --churn-threshold=S  early-close rank-similarity trigger in "
      "[0, 1]\n"
      "  --min-window=N --max-window=N  effective-window bounds\n"
      "                     (defaults: window/16 and window)\n"
      "\n"
      "Output:\n"
      "  --format=csv|json  csv: header + one line per point;\n"
      "                     json: one array of row objects\n"
      "  --output=FILE      default: stdout\n"
      "  --list             print known traces and policies, then exit\n"
      "  --help             this text\n");
}

[[noreturn]] void Die(const std::string& message) {
  cli::Die(kProg, message);
}

std::uint64_t ParseU64(const std::string& flag, const std::string& value) {
  return cli::ParseU64(kProg, flag, value);
}

double ParseDouble(const std::string& flag, const std::string& value) {
  return cli::ParseDouble(kProg, flag, value);
}

void ValidateTraceNames(const std::vector<std::string>& names) {
  for (const std::string& name : names) {
    cli::RequireKnownWorkload(kProg, "--traces", name);
  }
}

void ApplyFigurePreset(const std::string& figure, const ClicFlagSet& flags,
                       SweepSpec* spec) {
  const std::optional<SweepSpec> preset = FigureSpec(figure);
  if (!preset) {
    Die("unknown --figure='" + figure + "' (valid figures: " +
        cli::KnownFigureNames() + ")");
  }
  spec->traces = preset->traces;
  spec->policies = preset->policies;
  spec->cache_sizes = preset->cache_sizes;
  // The preset's CLIC options apply too, but an explicit flag beats
  // them regardless of its position relative to --figure.
  ClicOptions merged = preset->clic;
  if (flags.window) merged.window = spec->clic.window;
  if (flags.decay) merged.decay = spec->clic.decay;
  if (flags.outqueue) merged.outqueue_per_page = spec->clic.outqueue_per_page;
  if (flags.top_k) merged.top_k = spec->clic.top_k;
  if (flags.tracker) merged.tracker = spec->clic.tracker;
  if (flags.charge_metadata) {
    merged.charge_metadata = spec->clic.charge_metadata;
  }
  if (flags.adaptive_window) merged.adaptive_window = spec->clic.adaptive_window;
  if (flags.churn_threshold) merged.churn_threshold = spec->clic.churn_threshold;
  if (flags.min_window) merged.min_window = spec->clic.min_window;
  if (flags.max_window) merged.max_window = spec->clic.max_window;
  spec->clic = merged;
}

void PrintList() {
  std::printf("Traces (name dbms workload db_pages buffer_pages "
              "target_requests):\n");
  for (const NamedTraceInfo& info : NamedTraces()) {
    std::printf("  %-9s %-5s %-4s %8llu %8llu %9llu\n", info.name.c_str(),
                info.dbms.c_str(), info.workload.c_str(),
                static_cast<unsigned long long>(info.db_pages),
                static_cast<unsigned long long>(info.buffer_pages),
                static_cast<unsigned long long>(info.target_requests));
  }
  std::printf("Scenario presets (workload/scenario.h; also usable as "
              "--traces tokens):\n");
  for (const ScenarioPreset& preset : ScenarioPresets()) {
    std::printf("  %-13s %s\n      = %s\n", preset.name, preset.blurb,
                preset.spec);
  }
  std::printf("Figure presets: %s\n",
              ::clic::cli::KnownFigureNames().c_str());
  std::printf("Policies:");
  for (PolicyKind kind : AllPolicies()) {
    std::printf(" %s", PolicyName(kind));
  }
  std::printf("\n");
}

CliOptions Parse(int argc, char** argv) {
  CliOptions cli;
  ClicFlagSet clic_flags;
  std::string figure, traces, policies, cache_pages;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      Usage(stdout);
      std::exit(0);
    }
    if (arg == "--list") {
      PrintList();
      std::exit(0);
    }
    if (arg == "--no-charge-metadata") {
      cli.spec.clic.charge_metadata = false;
      clic_flags.charge_metadata = true;
      continue;
    }
    if (arg == "--adaptive-window") {
      cli.spec.clic.adaptive_window = true;
      clic_flags.adaptive_window = true;
      continue;
    }
    const std::size_t eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      Die("unrecognized argument '" + arg + "'");
    }
    const std::string key = arg.substr(0, eq);
    const std::string value = arg.substr(eq + 1);
    if (key == "--figure") {
      figure = value;
    } else if (key == "--traces") {
      traces = value;
    } else if (key == "--policies") {
      policies = value;
    } else if (key == "--cache-pages") {
      cache_pages = value;
    } else if (key == "--threads") {
      const std::uint64_t threads = ParseU64(key, value);
      if (threads > 4096) Die(key + "='" + value + "' is unreasonably large");
      cli.threads = static_cast<unsigned>(threads);
    } else if (key == "--requests") {
      cli.requests = ParseU64(key, value);
    } else if (key == "--cache-dir") {
      cli.cache_dir = value;
    } else if (key == "--window") {
      cli.spec.clic.window = ParseU64(key, value);
      clic_flags.window = true;
    } else if (key == "--churn-threshold") {
      cli.spec.clic.churn_threshold = ParseDouble(key, value);
      clic_flags.churn_threshold = true;
    } else if (key == "--min-window") {
      cli.spec.clic.min_window = ParseU64(key, value);
      clic_flags.min_window = true;
    } else if (key == "--max-window") {
      cli.spec.clic.max_window = ParseU64(key, value);
      clic_flags.max_window = true;
    } else if (key == "--decay") {
      cli.spec.clic.decay = ParseDouble(key, value);
      clic_flags.decay = true;
    } else if (key == "--outqueue") {
      cli.spec.clic.outqueue_per_page = ParseDouble(key, value);
      clic_flags.outqueue = true;
    } else if (key == "--top-k") {
      cli.spec.clic.top_k = static_cast<std::size_t>(ParseU64(key, value));
      clic_flags.top_k = true;
    } else if (key == "--tracker") {
      if (value == "exact") {
        cli.spec.clic.tracker = TrackerKind::kExact;
      } else if (value == "space_saving") {
        cli.spec.clic.tracker = TrackerKind::kSpaceSaving;
      } else if (value == "lossy_counting") {
        cli.spec.clic.tracker = TrackerKind::kLossyCounting;
      } else {
        Die("unknown --tracker='" + value + "'");
      }
      clic_flags.tracker = true;
    } else if (key == "--format") {
      if (value != "csv" && value != "json") {
        Die("unknown --format='" + value + "' (want csv or json)");
      }
      cli.format = value;
    } else if (key == "--output") {
      cli.output = value;
    } else {
      Die("unrecognized flag '" + key + "'");
    }
  }

  if (!figure.empty()) ApplyFigurePreset(figure, clic_flags, &cli.spec);
  if (!traces.empty()) {
    cli.spec.traces = ::clic::cli::SplitCsvFlag(kProg, "--traces", traces);
  }
  if (!policies.empty()) {
    cli.spec.policies.clear();
    for (const std::string& name :
         ::clic::cli::SplitCsvFlag(kProg, "--policies", policies)) {
      cli.spec.policies.push_back(
          ::clic::cli::RequirePolicy(kProg, "--policies", name));
    }
  }
  if (!cache_pages.empty()) {
    cli.spec.cache_sizes.clear();
    for (const std::string& size :
         ::clic::cli::SplitCsvFlag(kProg, "--cache-pages", cache_pages)) {
      cli.spec.cache_sizes.push_back(
          static_cast<std::size_t>(ParseU64("--cache-pages", size)));
    }
  }
  if (cli.spec.traces.empty() || cli.spec.policies.empty() ||
      cli.spec.cache_sizes.empty()) {
    Die("empty grid: need --figure or all of --traces/--policies/"
        "--cache-pages");
  }
  ValidateTraceNames(cli.spec.traces);
  cli::RequireValidAdaptiveWindow(kProg, cli.spec.clic);
  return cli;
}

int Main(int argc, char** argv) {
  const CliOptions cli = Parse(argc, argv);

  const unsigned threads =
      cli.threads > 0 ? cli.threads
                      : std::max(1u, std::thread::hardware_concurrency());
  const std::string dir =
      cli.cache_dir.empty() ? CacheDirFromEnv() : cli.cache_dir;
  const std::uint64_t cap =
      cli.requests > 0 ? cli.requests : RequestCapFromEnv();
  TraceCache cache(dir, cap);

  SweepRunner runner(
      [&cache](const std::string& name) -> const Trace& {
        return cache.Get(name);
      },
      threads);

  // Open the output before the sweep: a bad --output path must fail in
  // milliseconds, not after minutes of simulation.
  std::FILE* out = stdout;
  if (!cli.output.empty()) {
    out = std::fopen(cli.output.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "clic_sweep: cannot open '%s': %s\n",
                   cli.output.c_str(), std::strerror(errno));
      return 1;
    }
  }

  const std::size_t num_points = ExpandGrid(cli.spec).size();
  std::fprintf(stderr,
               "clic_sweep: %zu points (%zu traces x %zu policies x %zu "
               "cache sizes), %u threads, request cap %llu\n",
               num_points, cli.spec.traces.size(), cli.spec.policies.size(),
               cli.spec.cache_sizes.size(), threads,
               static_cast<unsigned long long>(cap));

  const auto start = std::chrono::steady_clock::now();
  const std::vector<SweepRow> rows = runner.Run(cli.spec);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  if (cli.format == "csv") {
    std::fprintf(out, "%s\n", CsvHeader().c_str());
    for (const SweepRow& row : rows) {
      std::fprintf(out, "%s\n", CsvRow(row).c_str());
    }
  } else {
    std::fprintf(out, "[\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      std::fprintf(out, "  %s%s\n", JsonRow(rows[i]).c_str(),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "]\n");
  }
  // A failed write (e.g. ENOSPC) must not exit 0 with a truncated
  // file; the flush on fclose can be the first call to see the error.
  bool write_ok = std::ferror(out) == 0;
  if (out != stdout) {
    write_ok = std::fclose(out) == 0 && write_ok;
  } else {
    write_ok = std::fflush(out) == 0 && write_ok;
  }
  if (!write_ok) {
    std::fprintf(stderr, "clic_sweep: error writing %s: %s\n",
                 cli.output.empty() ? "stdout" : cli.output.c_str(),
                 std::strerror(errno));
    return 1;
  }

  std::fprintf(stderr, "clic_sweep: done in %.2fs wall\n", elapsed.count());
  return 0;
}

}  // namespace
}  // namespace clic::sweep

int main(int argc, char** argv) { return clic::sweep::Main(argc, argv); }
