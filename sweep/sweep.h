// Parallel sweep engine: expands a declarative (trace × policy ×
// cache-size) grid — the shape of every figure in the paper's
// evaluation — into independent simulation points and executes them on
// a fixed-size thread pool. Traces are resolved once per distinct name
// and shared read-only; every point builds its own policy instance, so
// points share no mutable state and the result of a point is identical
// to running Simulate() sequentially. Result ordering is deterministic
// (grid expansion order) regardless of how the pool schedules work.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/clic.h"
#include "sim/policy_factory.h"
#include "sim/simulator.h"

namespace clic::sweep {

/// Declarative grid. Expansion order is fixed — traces outermost, then
/// policies, then cache sizes, matching the nesting of the figure
/// benches — so a spec always yields the same row order no matter how
/// (or on how many threads) it runs.
struct SweepSpec {
  std::vector<std::string> traces;
  std::vector<PolicyKind> policies;
  std::vector<std::size_t> cache_sizes;
  /// Applied to kClic points; other policies ignore it. Defaults to
  /// the paper's Section 6.1 configuration (W=1e5, r=1, Noutq=5,
  /// metadata charged).
  ClicOptions clic;
};

struct SweepPoint {
  std::size_t index = 0;  // position in ExpandGrid order
  std::string trace;
  PolicyKind policy = PolicyKind::kLru;
  std::size_t cache_pages = 0;
};

struct SweepRow {
  SweepPoint point;
  SimResult result;
  double wall_seconds = 0.0;  // replay only; trace loading is excluded
};

std::vector<SweepPoint> ExpandGrid(const SweepSpec& spec);

/// The preset grid of a paper figure — "6", "7", "8" (Figures 6-8),
/// "ablation" (the Section-7 extended policy comparison) — or of a
/// workload scenario: "zipf-sweep", "scan-pollution", "phase-shift",
/// "tenant-mix" (grids over workload/scenario.h generators). The single
/// source of truth for these grids — the figure bench drivers and the
/// `clic_sweep --figure` presets both call it, and the valid-name list
/// is cli::FigurePresetNames() (common/cli_util.h), pinned equal by
/// tests/test_sweep.cc. Returns nullopt for unknown names.
std::optional<SweepSpec> FigureSpec(const std::string& figure);

class SweepRunner {
 public:
  /// Resolves a trace name to a loaded trace. Must be callable
  /// concurrently (TraceCache::Get qualifies) and the returned
  /// references must outlive Run().
  using TraceProvider = std::function<const Trace&(const std::string&)>;

  /// `threads` is clamped to >= 1; 0 means "one worker".
  SweepRunner(TraceProvider provider, unsigned threads);

  /// Executes every grid point and returns rows in ExpandGrid order.
  std::vector<SweepRow> Run(const SweepSpec& spec) const;

  unsigned threads() const { return threads_; }

 private:
  TraceProvider provider_;
  unsigned threads_;
};

/// Appends `value` as %.17g — the one double format every emitter in
/// the repo uses, so equal doubles always print byte-identically (the
/// CI determinism diffs depend on it).
void AppendDouble(std::string* out, double value);

/// RFC-4180 field quoting: returns `value` unchanged when it contains
/// no comma, double quote, CR or LF; otherwise wraps it in double
/// quotes with embedded quotes doubled. Every CSV emitter in the repo
/// (sweep rows, clic_serve stats) must pass free-form strings — trace
/// and policy names — through this so a hostile name can never corrupt
/// a row.
std::string CsvField(const std::string& value);

/// Minimal JSON string escaping: backslash, double quote, and control
/// characters (as \uXXXX). Same contract as CsvField, for the JSON
/// emitters.
std::string JsonEscaped(const std::string& value);

/// Flattens per-client stats into one CSV-safe column:
/// `client=reads:read_hits:writes:write_hits;...` in client-id order.
std::string PerClientColumn(const SimResult& result);

/// CSV / JSON row emission. Hit ratios are printed with %.17g so equal
/// doubles produce byte-identical text (the N=1 vs N=8 comparison in CI
/// diffs these rows).
std::string CsvHeader();
std::string CsvRow(const SweepRow& row);
/// One self-contained JSON object per row (per_client is a nested map).
std::string JsonRow(const SweepRow& row);

}  // namespace clic::sweep
