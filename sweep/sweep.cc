#include "sweep/sweep.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <thread>
#include <unordered_map>

#include "common/thread_annotations.h"

namespace clic::sweep {
namespace {

/// First exception a pool worker threw, with its annotated guard so the
/// clang thread-safety build checks the error handoff like any other
/// shared state.
struct ErrorSlot {
  Mutex mu;
  std::exception_ptr first CLIC_GUARDED_BY(mu);
};

/// Runs fn(0..n-1) across `threads` workers pulling indices from a
/// shared atomic counter. fn must be safe to call concurrently for
/// distinct indices. An exception thrown by fn stops the pool (workers
/// finish their current item and exit) and is rethrown on the calling
/// thread, so throwing behaves the same at any thread count.
void RunOnPool(unsigned threads, std::size_t n,
               const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::atomic<std::size_t> next{0};
  ErrorSlot error;
  auto drain = [&] {
    for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      try {
        fn(i);
      } catch (...) {
        MutexLock lock(error.mu);
        if (!error.first) error.first = std::current_exception();
        next.store(n, std::memory_order_relaxed);  // stop handing out work
        return;
      }
    }
  };
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(threads, n));
  if (workers <= 1) {
    drain();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    try {
      for (unsigned t = 0; t < workers; ++t) pool.emplace_back(drain);
    } catch (...) {
      // Thread startup failed (e.g. ulimit): stop handing out work and
      // join what started — destroying a joinable std::thread would
      // terminate the process instead of surfacing the error.
      next.store(n, std::memory_order_relaxed);
      for (std::thread& t : pool) t.join();
      throw;
    }
    for (std::thread& t : pool) t.join();
  }
  // Workers are joined (or drain() ran inline), so the lock is
  // uncontended — held anyway to keep the guarded access checkable.
  MutexLock lock(error.mu);
  if (error.first) std::rethrow_exception(error.first);
}

void AppendU64(std::string* out, std::uint64_t value) {
  out->append(std::to_string(value));
}

}  // namespace

void AppendDouble(std::string* out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out->append(buf);
}

std::string CsvField(const std::string& value) {
  if (value.find_first_of(",\"\r\n") == std::string::npos) return value;
  std::string out;
  out.reserve(value.size() + 2);
  out.push_back('"');
  for (char c : value) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string JsonEscaped(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out.append("\\\\");
        break;
      case '"':
        out.append("\\\"");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out.append(buf);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string PerClientColumn(const SimResult& result) {
  std::string out;
  for (const auto& [client, stats] : result.per_client) {
    if (!out.empty()) out.push_back(';');
    out.append(std::to_string(client));
    out.push_back('=');
    out.append(std::to_string(stats.reads));
    out.push_back(':');
    out.append(std::to_string(stats.read_hits));
    out.push_back(':');
    out.append(std::to_string(stats.writes));
    out.push_back(':');
    out.append(std::to_string(stats.write_hits));
  }
  return out;
}

std::vector<SweepPoint> ExpandGrid(const SweepSpec& spec) {
  std::vector<SweepPoint> points;
  points.reserve(spec.traces.size() * spec.policies.size() *
                 spec.cache_sizes.size());
  for (const std::string& trace : spec.traces) {
    for (PolicyKind policy : spec.policies) {
      for (std::size_t cache_pages : spec.cache_sizes) {
        SweepPoint p;
        p.index = points.size();
        p.trace = trace;
        p.policy = policy;
        p.cache_pages = cache_pages;
        points.push_back(std::move(p));
      }
    }
  }
  return points;
}

std::optional<SweepSpec> FigureSpec(const std::string& figure) {
  const std::vector<std::size_t> db2_caches = {6'000, 12'000, 18'000,
                                               24'000, 30'000};
  const std::array<PolicyKind, 5> paper = PaperPolicies();
  // The scenario grids compare the online-servable policies the
  // scenarios stress: LRU (the pollution victim), ARC (scan-resistant
  // without hints), TQ (write hints only), CLIC (full hints).
  const std::vector<PolicyKind> scenario_policies = {
      PolicyKind::kLru, PolicyKind::kArc, PolicyKind::kTq, PolicyKind::kClic};
  SweepSpec spec;  // default clic == the paper's Section 6.1 options
  if (figure == "6") {
    spec.traces = {"DB2_C60", "DB2_C300", "DB2_C540"};
    spec.policies.assign(paper.begin(), paper.end());
    spec.cache_sizes = db2_caches;
  } else if (figure == "7") {
    spec.traces = {"DB2_H80", "DB2_H400", "DB2_H720"};
    spec.policies.assign(paper.begin(), paper.end());
    spec.cache_sizes = db2_caches;
  } else if (figure == "8") {
    spec.traces = {"MY_H65", "MY_H98"};
    spec.policies.assign(paper.begin(), paper.end());
    spec.cache_sizes = {5'000, 7'500, 10'000};
  } else if (figure == "ablation") {
    spec.traces = {"DB2_C300"};
    spec.policies = {PolicyKind::kLru,  PolicyKind::kClock,
                     PolicyKind::kTwoQ, PolicyKind::kMq,
                     PolicyKind::kArc,  PolicyKind::kTq,
                     PolicyKind::kClic};
    spec.cache_sizes = {12'000};
  } else if (figure == "zipf-sweep") {
    // Skew sweep: inline specs so the theta axis is explicit in the
    // trace column of every row.
    spec.traces = {"zipf:theta=0.5", "zipf:theta=0.7", "zipf:theta=0.9",
                   "zipf:theta=0.99"};
    spec.policies = scenario_policies;
    spec.cache_sizes = {6'000, 12'000, 24'000};
  } else if (figure == "scan-pollution") {
    // The headline scenario grid: the same hot set with and without
    // scan pollution, at the paper's cache sizes.
    spec.traces = {"zipf-hot", "scan-pollute"};
    spec.policies = scenario_policies;
    spec.cache_sizes = db2_caches;
  } else if (figure == "phase-shift") {
    spec.traces = {"phase-abrupt", "phase-gradual"};
    spec.policies = scenario_policies;
    spec.cache_sizes = {6'000, 12'000, 18'000};
    // Phase tracking needs the evaluation window well under the phase
    // length and a short priority memory: the paper's W=1e5 with r=1
    // straddles phase boundaries, so CLIC would protect the *previous*
    // working set all trace long (measured: 0.27 vs 0.55 read hit ratio
    // at 12k pages on phase-abrupt). See DESIGN.md "Workload
    // scenarios".
    spec.clic.window = 20'000;
    spec.clic.decay = 0.2;
  } else if (figure == "phase-shift-adaptive") {
    // The same phase grid with the paper's untouched W=1e5/r=1 plus the
    // churn-triggered adaptive window: CLIC recovers from abrupt shifts
    // without the hand-tuned window/decay the fixed preset needs
    // (measured in bench/README.md "Adaptive windowing").
    spec.traces = {"phase-abrupt", "phase-gradual"};
    spec.policies = scenario_policies;
    spec.cache_sizes = {6'000, 12'000, 18'000};
    spec.clic.adaptive_window = true;
  } else if (figure == "tenant-mix") {
    spec.traces = {"tenant-mix4"};
    spec.policies = scenario_policies;
    spec.cache_sizes = {6'000, 12'000, 24'000};
  } else {
    return std::nullopt;
  }
  return spec;
}

SweepRunner::SweepRunner(TraceProvider provider, unsigned threads)
    : provider_(std::move(provider)), threads_(std::max(1u, threads)) {}

std::vector<SweepRow> SweepRunner::Run(const SweepSpec& spec) const {
  const std::vector<SweepPoint> points = ExpandGrid(spec);
  std::vector<SweepRow> rows(points.size());

  // Phase 1: resolve every distinct trace through the provider, on the
  // pool so distinct traces generate/load concurrently. After this the
  // replay phase touches traces read-only and its wall times contain
  // no generation or disk work.
  std::vector<std::string> names;
  for (const SweepPoint& p : points) {
    if (std::find(names.begin(), names.end(), p.trace) == names.end()) {
      names.push_back(p.trace);
    }
  }
  std::vector<const Trace*> resolved(names.size(), nullptr);
  RunOnPool(threads_, names.size(),
            [&](std::size_t i) { resolved[i] = &provider_(names[i]); });
  std::unordered_map<std::string, const Trace*> traces;
  traces.reserve(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    traces.emplace(names[i], resolved[i]);
  }

  // Phase 2: replay the points. Workers write disjoint rows[i] slots,
  // so the output order is the expansion order by construction.
  RunOnPool(threads_, points.size(), [&](std::size_t i) {
    const SweepPoint& p = points[i];
    const Trace& trace = *traces.at(p.trace);
    const auto start = std::chrono::steady_clock::now();
    const auto policy = MakePolicy(p.policy, p.cache_pages, &trace, spec.clic);
    SimResult result = Simulate(trace, *policy);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    rows[i].point = p;
    rows[i].result = std::move(result);
    rows[i].wall_seconds = elapsed.count();
  });
  return rows;
}

std::string CsvHeader() {
  return "trace,policy,cache_pages,requests,reads,writes,read_hits,"
         "write_hits,read_hit_ratio,write_hit_ratio,wall_seconds,per_client";
}

std::string CsvRow(const SweepRow& row) {
  const CacheStats& t = row.result.total;
  std::string out;
  out.append(CsvField(row.point.trace));
  out.push_back(',');
  out.append(CsvField(PolicyName(row.point.policy)));
  out.push_back(',');
  out.append(std::to_string(row.point.cache_pages));
  out.push_back(',');
  AppendU64(&out, t.reads + t.writes);
  out.push_back(',');
  AppendU64(&out, t.reads);
  out.push_back(',');
  AppendU64(&out, t.writes);
  out.push_back(',');
  AppendU64(&out, t.read_hits);
  out.push_back(',');
  AppendU64(&out, t.write_hits);
  out.push_back(',');
  AppendDouble(&out, t.ReadHitRatio());
  out.push_back(',');
  AppendDouble(&out, t.WriteHitRatio());
  out.push_back(',');
  AppendDouble(&out, row.wall_seconds);
  out.push_back(',');
  out.append(PerClientColumn(row.result));
  return out;
}

std::string JsonRow(const SweepRow& row) {
  const CacheStats& t = row.result.total;
  std::string out = "{\"trace\":\"";
  out.append(JsonEscaped(row.point.trace));
  out.append("\",\"policy\":\"");
  out.append(JsonEscaped(PolicyName(row.point.policy)));
  out.append("\",\"cache_pages\":");
  out.append(std::to_string(row.point.cache_pages));
  out.append(",\"requests\":");
  AppendU64(&out, t.reads + t.writes);
  out.append(",\"reads\":");
  AppendU64(&out, t.reads);
  out.append(",\"writes\":");
  AppendU64(&out, t.writes);
  out.append(",\"read_hits\":");
  AppendU64(&out, t.read_hits);
  out.append(",\"write_hits\":");
  AppendU64(&out, t.write_hits);
  out.append(",\"read_hit_ratio\":");
  AppendDouble(&out, t.ReadHitRatio());
  out.append(",\"write_hit_ratio\":");
  AppendDouble(&out, t.WriteHitRatio());
  out.append(",\"wall_seconds\":");
  AppendDouble(&out, row.wall_seconds);
  out.append(",\"per_client\":{");
  bool first = true;
  for (const auto& [client, stats] : row.result.per_client) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out.append(std::to_string(client));
    out.append("\":{\"reads\":");
    AppendU64(&out, stats.reads);
    out.append(",\"read_hits\":");
    AppendU64(&out, stats.read_hits);
    out.append(",\"writes\":");
    AppendU64(&out, stats.writes);
    out.append(",\"write_hits\":");
    AppendU64(&out, stats.write_hits);
    out.append("}");
  }
  out.append("}}");
  return out;
}

}  // namespace clic::sweep
